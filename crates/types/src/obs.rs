//! Static validation of concrete observation sequences against an inferred
//! **observation protocol**.
//!
//! The guide-type inference of [`crate::infer`] derives, for every model
//! procedure, the protocol of the channel it *provides* — for a model with
//! the conventional `provide obs` header, the exact order and carrier of
//! the observations the model will condition on.  The paper's thesis is
//! that protocol information certifies inference soundness *before*
//! anything runs; this module extends that discipline to the data: a query
//! layer can walk the obs protocol against the caller's concrete
//! observation vector and reject mismatches (wrong count, wrong carrier,
//! no feasible branch) up front, instead of failing mid-particle with a
//! runtime `ObservationMismatch`.
//!
//! The walker treats the protocol as a small nondeterministic automaton:
//!
//! * `τ ∧ A` consumes one observation whose value must inhabit the carrier
//!   `τ` (strict supports, matching `ppl_dist`: `preal` means `> 0`,
//!   `ureal` means the open interval `(0, 1)`);
//! * `A ⊕ B` is a *model-driven* branch — the sequence is valid if it is
//!   feasible under **either** arm;
//! * `T[A]` unfolds its operator definition (recursive protocols are
//!   handled with a fuel bound on consecutive unfolds that consume
//!   nothing, so unproductive recursion cannot loop);
//! * `τ ⊃ A` and `A & B` require the (non-existent) *consumer* of the
//!   observation channel to act, which the joint executor does not
//!   support — they are reported as [`ObsViolation::ConsumerDriven`].
//!
//! Validation succeeds when some path through the protocol consumes the
//! observation vector **exactly**.  On failure the walker reports the
//! violation that made the most progress, which names the first offending
//! position — the diagnostic a caller wants.

use crate::guide::{GuideType, TypeDefs};
use ppl_syntax::ast::BaseType;
use std::fmt;

/// A concrete observation value, as supplied by a caller.
///
/// This mirrors the scalar `Sample` enum of `ppl_dist` without taking a
/// dependency on it (the same pattern `ppl-models` uses for its
/// `GuideParam`); the facade crate converts between the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsValue {
    /// A Boolean observation (`bool` carrier).
    Bool(bool),
    /// A real-valued observation (`real`, `preal`, `ureal` carriers).
    Real(f64),
    /// A natural-number observation (`nat`, `nat[n]` carriers).
    Nat(u64),
}

impl ObsValue {
    /// The name of the value's carrier family, for diagnostics.
    pub fn carrier_name(&self) -> &'static str {
        match self {
            ObsValue::Bool(_) => "bool",
            ObsValue::Real(_) => "real",
            ObsValue::Nat(_) => "nat",
        }
    }
}

impl fmt::Display for ObsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsValue::Bool(b) => write!(f, "{b}"),
            ObsValue::Real(r) => write!(f, "{r}"),
            ObsValue::Nat(n) => write!(f, "{n}"),
        }
    }
}

/// Why an observation vector cannot be produced by an obs protocol.
///
/// Every variant names the offending zero-based `position` in the supplied
/// vector, so error messages can point at the exact argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsViolation {
    /// The protocol ended (on every feasible branch) after consuming
    /// `consumed` observations, but more were supplied.
    TooMany {
        /// Observations consumed along the best path.
        consumed: usize,
        /// Observations supplied.
        supplied: usize,
    },
    /// The protocol expects another observation of carrier `expected` at
    /// `position`, but the supplied vector is exhausted.
    TooFew {
        /// Position of the missing observation.
        position: usize,
        /// Observations supplied.
        supplied: usize,
        /// Carrier of the expected observation.
        expected: BaseType,
    },
    /// The observation at `position` does not inhabit the expected carrier
    /// (wrong kind, or outside a strict support such as `preal`/`ureal`).
    Carrier {
        /// Position of the offending observation.
        position: usize,
        /// Carrier the protocol expects there.
        expected: BaseType,
        /// The value actually supplied.
        found: ObsValue,
    },
    /// The protocol requires the observation channel's *consumer* to send
    /// a value or a branch selection (`τ ⊃ A` / `A & B`), which joint
    /// execution does not support for conditioned channels.
    ConsumerDriven {
        /// Position at which the consumer-driven step occurs.
        position: usize,
    },
    /// The protocol references an operator with no definition.
    UndefinedOperator {
        /// The operator name.
        name: String,
        /// Position at which the reference was hit.
        position: usize,
    },
    /// A free protocol variable survived unfolding (malformed protocol).
    UnresolvedVariable {
        /// The variable name.
        name: String,
        /// Position at which it was hit.
        position: usize,
    },
    /// The walker unfolded operators [`UNFOLD_FUEL`] times without
    /// consuming an observation — an unproductive recursive protocol.
    UnproductiveRecursion {
        /// Position at which unfolding diverged.
        position: usize,
    },
}

impl ObsViolation {
    /// The violation's stable machine-readable error code.
    ///
    /// Codes form a dot-separated hierarchy under `obs.` and are part of
    /// the wire format of the serving layer: clients may match on them,
    /// so existing codes never change meaning.  [`fmt::Display`] prefixes
    /// every rendered violation with its code.
    pub fn code(&self) -> &'static str {
        match self {
            ObsViolation::TooMany { .. } => "obs.count.too_many",
            ObsViolation::TooFew { .. } => "obs.count.too_few",
            ObsViolation::Carrier { .. } => "obs.carrier",
            ObsViolation::ConsumerDriven { .. } => "obs.consumer_driven",
            ObsViolation::UndefinedOperator { .. } => "obs.undefined_operator",
            ObsViolation::UnresolvedVariable { .. } => "obs.unresolved_variable",
            ObsViolation::UnproductiveRecursion { .. } => "obs.unproductive_recursion",
        }
    }

    /// The offending position (used to pick the most-progressed
    /// diagnostic among the branches of a nondeterministic protocol).
    pub fn position(&self) -> usize {
        match self {
            ObsViolation::TooMany { consumed, .. } => *consumed,
            ObsViolation::TooFew { position, .. }
            | ObsViolation::Carrier { position, .. }
            | ObsViolation::ConsumerDriven { position }
            | ObsViolation::UndefinedOperator { position, .. }
            | ObsViolation::UnresolvedVariable { position, .. }
            | ObsViolation::UnproductiveRecursion { position } => *position,
        }
    }
}

impl fmt::Display for ObsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.code())?;
        match self {
            ObsViolation::TooMany { consumed, supplied } => write!(
                f,
                "too many observations: the protocol consumes {consumed}, but {supplied} were supplied"
            ),
            ObsViolation::TooFew {
                position,
                supplied,
                expected,
            } => write!(
                f,
                "too few observations: the protocol expects a {expected} observation at position {position}, but only {supplied} were supplied"
            ),
            ObsViolation::Carrier {
                position,
                expected,
                found,
            } => write!(
                f,
                "observation {position} has the wrong carrier: the protocol expects {expected}, found {} value {found}",
                found.carrier_name()
            ),
            ObsViolation::ConsumerDriven { position } => write!(
                f,
                "the protocol requires the observation consumer to act at position {position}, which conditioned execution does not support"
            ),
            ObsViolation::UndefinedOperator { name, position } => write!(
                f,
                "the protocol references the undefined operator '{name}' at position {position}"
            ),
            ObsViolation::UnresolvedVariable { name, position } => write!(
                f,
                "the protocol contains the free variable '{name}' at position {position}"
            ),
            ObsViolation::UnproductiveRecursion { position } => write!(
                f,
                "the protocol recurses without consuming an observation at position {position}"
            ),
        }
    }
}

impl std::error::Error for ObsViolation {}

/// Whether a concrete value inhabits a carrier type, with the same strict
/// conventions as `ppl_dist`'s support checks: carriers are never coerced
/// (a `nat` is not a `real`), and the refined reals are strict
/// (`preal` ⇔ `> 0` and finite, `ureal` ⇔ the open interval `(0, 1)`).
pub fn carrier_admits(carrier: &BaseType, value: &ObsValue) -> bool {
    match (carrier, value) {
        (BaseType::Bool, ObsValue::Bool(_)) => true,
        (BaseType::Real, ObsValue::Real(x)) => x.is_finite(),
        (BaseType::PosReal, ObsValue::Real(x)) => x.is_finite() && *x > 0.0,
        (BaseType::UnitInterval, ObsValue::Real(x)) => *x > 0.0 && *x < 1.0,
        (BaseType::Nat, ObsValue::Nat(_)) => true,
        (BaseType::FinNat(n), ObsValue::Nat(k)) => (*k as usize) < *n,
        _ => false,
    }
}

/// Maximum consecutive operator unfolds between observation consumptions.
///
/// Productive recursive obs protocols consume at least one observation per
/// cycle of unfolds; this bound only cuts off unproductive recursion
/// (`T[X] = T[X]`-shaped definitions), far above any realistic nesting
/// depth of distinct operators.
pub const UNFOLD_FUEL: usize = 64;

/// Checks that `obs` is a possible observation sequence of `protocol`.
///
/// Returns `Ok(())` when some path through the protocol consumes `obs`
/// exactly; otherwise the violation that made the most progress through
/// the vector (earliest failures are reported only if no branch gets
/// further).
///
/// # Errors
///
/// Returns an [`ObsViolation`] naming the offending position.
pub fn validate_observations(
    defs: &TypeDefs,
    protocol: &GuideType,
    obs: &[ObsValue],
) -> Result<(), ObsViolation> {
    let mut best: Option<ObsViolation> = None;
    if walk(defs, protocol, 0, UNFOLD_FUEL, obs, &mut best) {
        return Ok(());
    }
    Err(best.expect("a failed walk always records a violation"))
}

/// Records `violation` if it progressed at least as far as the current
/// best (later recordings win ties, so the *last* deepest branch reports —
/// deterministic either way).
fn record(best: &mut Option<ObsViolation>, violation: ObsViolation) {
    let replace = match best {
        None => true,
        Some(current) => violation.position() >= current.position(),
    };
    if replace {
        *best = Some(violation);
    }
}

/// True if some path through `ty` consumes `obs[pos..]` exactly.
fn walk(
    defs: &TypeDefs,
    ty: &GuideType,
    pos: usize,
    fuel: usize,
    obs: &[ObsValue],
    best: &mut Option<ObsViolation>,
) -> bool {
    match ty {
        GuideType::End => {
            if pos == obs.len() {
                true
            } else {
                record(
                    best,
                    ObsViolation::TooMany {
                        consumed: pos,
                        supplied: obs.len(),
                    },
                );
                false
            }
        }
        GuideType::Var(name) => {
            record(
                best,
                ObsViolation::UnresolvedVariable {
                    name: name.clone(),
                    position: pos,
                },
            );
            false
        }
        GuideType::SendVal(carrier, rest) => match obs.get(pos) {
            None => {
                record(
                    best,
                    ObsViolation::TooFew {
                        position: pos,
                        supplied: obs.len(),
                        expected: carrier.clone(),
                    },
                );
                false
            }
            Some(value) if !carrier_admits(carrier, value) => {
                record(
                    best,
                    ObsViolation::Carrier {
                        position: pos,
                        expected: carrier.clone(),
                        found: *value,
                    },
                );
                false
            }
            // Consuming an observation restores the unfold fuel: the
            // recursion made progress.
            Some(_) => walk(defs, rest, pos + 1, UNFOLD_FUEL, obs, best),
        },
        GuideType::RecvVal(_, _) | GuideType::Accept(_, _) => {
            record(best, ObsViolation::ConsumerDriven { position: pos });
            false
        }
        GuideType::Offer(a, b) => {
            // Model-driven branch: either arm may produce the sequence.
            // Walk both even if the first succeeds not being necessary —
            // short-circuit on success.
            walk(defs, a, pos, fuel, obs, best) || walk(defs, b, pos, fuel, obs, best)
        }
        GuideType::App(op, arg) => {
            if fuel == 0 {
                record(best, ObsViolation::UnproductiveRecursion { position: pos });
                return false;
            }
            match defs.unfold(op, arg) {
                Some(body) => walk(defs, &body, pos, fuel - 1, obs, best),
                None => {
                    record(
                        best,
                        ObsViolation::UndefinedOperator {
                            name: op.clone(),
                            position: pos,
                        },
                    );
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::TypeDef;

    fn real() -> BaseType {
        BaseType::Real
    }
    fn ureal() -> BaseType {
        BaseType::UnitInterval
    }

    /// `real ∧ bool ∧ 1`.
    fn straight() -> GuideType {
        GuideType::send_val(real(), GuideType::send_val(BaseType::Bool, GuideType::End))
    }

    #[test]
    fn straight_line_protocol_accepts_exact_match() {
        let defs = TypeDefs::new();
        let obs = [ObsValue::Real(1.5), ObsValue::Bool(true)];
        assert!(validate_observations(&defs, &straight(), &obs).is_ok());
    }

    #[test]
    fn count_mismatches_name_the_position() {
        let defs = TypeDefs::new();
        let too_few =
            validate_observations(&defs, &straight(), &[ObsValue::Real(0.0)]).unwrap_err();
        assert_eq!(
            too_few,
            ObsViolation::TooFew {
                position: 1,
                supplied: 1,
                expected: BaseType::Bool,
            }
        );
        let too_many = validate_observations(
            &defs,
            &straight(),
            &[
                ObsValue::Real(0.0),
                ObsValue::Bool(false),
                ObsValue::Real(1.0),
            ],
        )
        .unwrap_err();
        assert_eq!(
            too_many,
            ObsViolation::TooMany {
                consumed: 2,
                supplied: 3,
            }
        );
        assert!(too_many.to_string().contains("too many"));
    }

    #[test]
    fn carrier_checks_are_strict() {
        let defs = TypeDefs::new();
        // Wrong kind at position 1.
        let err = validate_observations(
            &defs,
            &straight(),
            &[ObsValue::Real(0.0), ObsValue::Real(1.0)],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ObsViolation::Carrier {
                position: 1,
                expected: BaseType::Bool,
                found: ObsValue::Real(1.0),
            }
        );
        assert!(err.to_string().contains("observation 1"));
        // Refined reals check the value, not just the kind.
        let ureal_proto = GuideType::send_val(ureal(), GuideType::End);
        assert!(validate_observations(&defs, &ureal_proto, &[ObsValue::Real(0.8)]).is_ok());
        assert!(matches!(
            validate_observations(&defs, &ureal_proto, &[ObsValue::Real(1.5)]),
            Err(ObsViolation::Carrier { position: 0, .. })
        ));
        let preal_proto = GuideType::send_val(BaseType::PosReal, GuideType::End);
        assert!(validate_observations(&defs, &preal_proto, &[ObsValue::Real(0.1)]).is_ok());
        assert!(validate_observations(&defs, &preal_proto, &[ObsValue::Real(-0.1)]).is_err());
        assert!(validate_observations(&defs, &preal_proto, &[ObsValue::Real(f64::NAN)]).is_err());
        // Finite naturals check the bound.
        let fin = GuideType::send_val(BaseType::FinNat(3), GuideType::End);
        assert!(validate_observations(&defs, &fin, &[ObsValue::Nat(2)]).is_ok());
        assert!(validate_observations(&defs, &fin, &[ObsValue::Nat(3)]).is_err());
    }

    #[test]
    fn offer_branches_are_feasibility_checked() {
        // (real ∧ 1) ⊕ (real ∧ real ∧ 1): one or two observations.
        let defs = TypeDefs::new();
        let proto = GuideType::offer(
            GuideType::send_val(real(), GuideType::End),
            GuideType::send_val(real(), GuideType::send_val(real(), GuideType::End)),
        );
        assert!(validate_observations(&defs, &proto, &[ObsValue::Real(1.0)]).is_ok());
        assert!(
            validate_observations(&defs, &proto, &[ObsValue::Real(1.0), ObsValue::Real(2.0)])
                .is_ok()
        );
        // Zero and three are infeasible on every branch; the reported
        // violation is the most-progressed one.
        assert!(matches!(
            validate_observations(&defs, &proto, &[]),
            Err(ObsViolation::TooFew { position: 0, .. })
        ));
        let err = validate_observations(
            &defs,
            &proto,
            &[
                ObsValue::Real(1.0),
                ObsValue::Real(2.0),
                ObsValue::Real(3.0),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ObsViolation::TooMany {
                consumed: 2,
                supplied: 3,
            }
        );
    }

    #[test]
    fn recursive_protocols_consume_any_feasible_count() {
        // T[X] = (X ⊕ real ∧ T[X]): zero or more reals (model-driven).
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "T".into(),
            param: "X".into(),
            body: GuideType::offer(
                GuideType::Var("X".into()),
                GuideType::send_val(real(), GuideType::app("T", GuideType::Var("X".into()))),
            ),
        });
        let proto = GuideType::app("T", GuideType::End);
        for n in 0..5 {
            let obs: Vec<ObsValue> = (0..n).map(|i| ObsValue::Real(i as f64)).collect();
            assert!(
                validate_observations(&defs, &proto, &obs).is_ok(),
                "n = {n}"
            );
        }
        // A carrier error deep inside the recursion is still located.
        let obs = [ObsValue::Real(0.0), ObsValue::Bool(true)];
        assert!(matches!(
            validate_observations(&defs, &proto, &obs),
            Err(ObsViolation::Carrier { position: 1, .. })
        ));
    }

    #[test]
    fn unproductive_recursion_is_cut_off() {
        // L[X] = L[X]: never consumes, never ends.
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "L".into(),
            param: "X".into(),
            body: GuideType::app("L", GuideType::Var("X".into())),
        });
        let proto = GuideType::app("L", GuideType::End);
        assert!(matches!(
            validate_observations(&defs, &proto, &[ObsValue::Real(1.0)]),
            Err(ObsViolation::UnproductiveRecursion { position: 0 })
        ));
    }

    #[test]
    fn consumer_driven_and_malformed_protocols_are_rejected() {
        let defs = TypeDefs::new();
        let recv = GuideType::recv_val(real(), GuideType::End);
        assert!(matches!(
            validate_observations(&defs, &recv, &[ObsValue::Real(1.0)]),
            Err(ObsViolation::ConsumerDriven { position: 0 })
        ));
        let accept = GuideType::accept(GuideType::End, GuideType::End);
        assert!(matches!(
            validate_observations(&defs, &accept, &[]),
            Err(ObsViolation::ConsumerDriven { position: 0 })
        ));
        let undefined = GuideType::app("Nope", GuideType::End);
        assert!(matches!(
            validate_observations(&defs, &undefined, &[]),
            Err(ObsViolation::UndefinedOperator { position: 0, .. })
        ));
        let var = GuideType::Var("X".into());
        assert!(matches!(
            validate_observations(&defs, &var, &[]),
            Err(ObsViolation::UnresolvedVariable { position: 0, .. })
        ));
    }

    #[test]
    fn violations_display_helpfully() {
        let v = ObsViolation::Carrier {
            position: 2,
            expected: BaseType::UnitInterval,
            found: ObsValue::Bool(true),
        };
        let shown = v.to_string();
        assert!(shown.contains("ureal"), "{shown}");
        assert!(shown.contains("bool"), "{shown}");
        assert_eq!(v.position(), 2);
        assert_eq!(ObsValue::Nat(3).carrier_name(), "nat");
    }
}
