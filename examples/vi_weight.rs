//! Variational inference on the "unreliable weighing" model: the guide is a
//! parameterised normal whose parameters are fitted by maximising the ELBO.
//! Guide types guarantee the KL divergence in the objective is well-defined
//! (Lemma C.3 of the paper).
//!
//! Run with `cargo run --example vi_weight --release`.

use guide_ppl::inference::{ParamSpec, ViConfig};
use guide_ppl::{Method, Posterior, Session};
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("weight")?;
    println!("latent protocol: {}", session.latent_protocol());

    let method = Method::vi(
        vec![
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ],
        ViConfig {
            iterations: 300,
            samples_per_iteration: 10,
            learning_rate: 0.08,
            fd_epsilon: 1e-4,
            ..ViConfig::default()
        },
    );
    let posterior = session
        .query()
        .observe(vec![Sample::Real(9.0), Sample::Real(9.0)])
        .seed(11)
        .run(&method)?;

    // The fit itself (the ViResult) is still available behind the unified
    // interface...
    let vi = posterior.as_vi().expect("VI posterior");
    println!(
        "learned mu    = {:.3} (analytic posterior mean  ≈ 7.463)",
        vi.fit.param("mu").unwrap()
    );
    println!(
        "learned sigma = {:.3} (analytic posterior stdev ≈ 0.469)",
        vi.fit.param("sigma").unwrap()
    );
    println!("final ELBO    = {:.3}", vi.fit.final_elbo());

    // ...and, like every other engine, the result exposes posterior draws
    // and summary statistics.
    let summary = posterior.summarize_sample(0).expect("draws exist");
    println!(
        "posterior draws: mean {:.3}, stdev {:.3}, 90% interval [{:.3}, {:.3}]",
        summary.mean,
        summary.std_dev(),
        summary.quantiles.q05,
        summary.quantiles.q95
    );
    println!(
        "log evidence   : {:.3}",
        posterior.log_evidence().expect("estimated at the optimum")
    );
    Ok(())
}
