//! Determinism of the zero-copy execution core.
//!
//! Two properties, checked over **every expressible registry benchmark**:
//!
//! 1. *Thread independence*: the parallel particle driver produces
//!    bit-identical latent traces, per-particle log-weights, and engine
//!    outputs (`log_evidence`, `ess`) at `num_threads = 1` and
//!    `num_threads = 4`, because particle `i` always draws from RNG
//!    substream `i` regardless of scheduling.
//! 2. *Goldens*: joint-execution values (`log_guide`, `log_model`, the
//!    latent trace) and importance-sampling outputs under fixed seeds match
//!    fingerprints recorded when the zero-copy core landed, so silent
//!    behaviour drift in the interpreter, the scope-chain environments, the
//!    replay cursors, or the RNG substream scheme fails loudly.
//!
//! If an *intentional* semantic change shifts the goldens, regenerate the
//! table with:
//!
//! ```text
//! PPL_PRINT_GOLDENS=1 cargo test --test determinism_goldens -- --nocapture
//! ```
//!
//! and paste the printed rows over `GOLDENS` below.

use guide_ppl::inference::ImportanceSampler;
use guide_ppl::runtime::{JointExecutor, JointSpec, LatentSource};
use guide_ppl::semantics::{Message, Trace, Value};
use ppl_dist::rng::Pcg32;
use ppl_models::{all_benchmarks, Benchmark};

const SEED: u64 = 0xD0_0DAD;
const PARTICLES: usize = 300;

/// Initial guide arguments for a benchmark's joint spec: VI guides take
/// their variational parameters, the outlier MCMC guide takes the previous
/// `is_outlier` value.
fn guide_args(b: &Benchmark) -> Vec<Value> {
    if b.name == "outlier" {
        return vec![Value::Bool(false)];
    }
    b.initial_guide_args()
        .into_iter()
        .map(Value::Real)
        .collect()
}

fn spec_of(b: &Benchmark) -> JointSpec {
    JointSpec::new(b.model_proc, b.guide_proc).with_guide_args(guide_args(b))
}

fn executor_of(b: &Benchmark) -> JointExecutor {
    let model = b.parsed_model().unwrap().unwrap();
    let guide = b.parsed_guide().unwrap().unwrap();
    JointExecutor::new(&model, &guide, b.observations.clone())
}

/// FNV-1a over a stream of 64-bit words.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    fn trace(&mut self, t: &Trace) {
        for m in t.messages() {
            match m {
                Message::ValP(v) => {
                    self.word(1);
                    self.f64(v.as_f64());
                }
                Message::ValC(v) => {
                    self.word(2);
                    self.f64(v.as_f64());
                }
                Message::DirP(b) => self.word(3 | (*b as u64) << 8),
                Message::DirC(b) => self.word(4 | (*b as u64) << 8),
                Message::Fold => self.word(5),
            }
        }
    }
}

/// One benchmark's golden record: a fingerprint of a single joint
/// execution (latent trace + `log_guide` + `log_model` bits) and a
/// fingerprint of the full importance-sampling run (every particle's latent
/// trace and log-weight, plus `log_evidence` and `ess` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Golden {
    name: &'static str,
    joint_fp: u64,
    is_fp: u64,
}

fn compute_joint_fp(b: &Benchmark) -> u64 {
    let executor = executor_of(b);
    let spec = spec_of(b);
    let mut rng = Pcg32::seed_from_u64(SEED).split(0);
    let joint = executor
        .run(&spec, LatentSource::FromGuide, &mut rng)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let mut fp = Fingerprint::new();
    fp.trace(&joint.latent);
    fp.f64(joint.log_guide);
    fp.f64(joint.log_model);
    // The replay path must reproduce the weights bit-for-bit from the
    // recorded trace alone.
    let replay = executor
        .run(&spec, LatentSource::Replay(&joint.latent), &mut rng)
        .unwrap_or_else(|e| panic!("{}: replay: {e}", b.name));
    assert_eq!(
        replay.log_guide.to_bits(),
        joint.log_guide.to_bits(),
        "{}: replayed log_guide differs",
        b.name
    );
    assert_eq!(
        replay.log_model.to_bits(),
        joint.log_model.to_bits(),
        "{}: replayed log_model differs",
        b.name
    );
    fp.0
}

fn compute_is_fp(b: &Benchmark, num_threads: usize) -> u64 {
    compute_is_fp_block(b, num_threads, guide_ppl::inference::DEFAULT_BLOCK)
}

fn compute_is_fp_block(b: &Benchmark, num_threads: usize, block: usize) -> u64 {
    let executor = executor_of(b);
    let spec = spec_of(b);
    let mut rng = Pcg32::seed_from_u64(SEED);
    let result = ImportanceSampler::new(PARTICLES)
        .with_threads(num_threads)
        .with_block(block)
        .run(&executor, &spec, &mut rng)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let mut fp = Fingerprint::new();
    for p in &result.particles {
        fp.trace(&p.latent);
        fp.f64(p.log_weight);
    }
    fp.f64(result.log_evidence);
    fp.f64(result.ess);
    fp.0
}

fn expressible() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.expressible)
        .collect()
}

#[test]
fn thread_count_never_changes_results() {
    for b in expressible() {
        let executor = executor_of(&b);
        let spec = spec_of(&b);
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let mut rng = Pcg32::seed_from_u64(SEED);
            runs.push(
                ImportanceSampler::new(PARTICLES)
                    .with_threads(threads)
                    .run(&executor, &spec, &mut rng)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name)),
            );
        }
        let (seq, par) = (&runs[0], &runs[1]);
        assert_eq!(
            seq.log_evidence.to_bits(),
            par.log_evidence.to_bits(),
            "{}: log_evidence drifted across thread counts",
            b.name
        );
        assert_eq!(seq.ess.to_bits(), par.ess.to_bits(), "{}", b.name);
        for (i, (a, c)) in seq.particles.iter().zip(&par.particles).enumerate() {
            assert_eq!(
                a.log_weight.to_bits(),
                c.log_weight.to_bits(),
                "{}: particle {i} log-weight drifted",
                b.name
            );
            assert_eq!(a.latent, c.latent, "{}: particle {i} trace drifted", b.name);
        }
    }
}

#[test]
fn block_size_never_changes_results() {
    // The vectorised block executor is a pure performance knob: at every
    // block size × thread count the IS fingerprint (all particle traces,
    // all log-weights, log_evidence, ess) equals the scalar single-thread
    // reference, for every expressible benchmark.
    for b in expressible() {
        let scalar = compute_is_fp_block(&b, 1, 1);
        for block in [7usize, 64, 256] {
            for threads in [1usize, 4] {
                assert_eq!(
                    compute_is_fp_block(&b, threads, block),
                    scalar,
                    "{}: IS fingerprint drifted at block {block}, {threads} threads",
                    b.name
                );
            }
        }
    }
}

#[test]
fn goldens_match() {
    let print_mode = std::env::var_os("PPL_PRINT_GOLDENS").is_some();
    let mut computed = Vec::new();
    for b in expressible() {
        let joint_fp = compute_joint_fp(&b);
        let is_fp_1 = compute_is_fp(&b, 1);
        let is_fp_4 = compute_is_fp(&b, 4);
        assert_eq!(
            is_fp_1, is_fp_4,
            "{}: IS fingerprint drifted across thread counts",
            b.name
        );
        computed.push((b.name, joint_fp, is_fp_1));
    }
    if print_mode {
        println!("const GOLDENS: &[Golden] = &[");
        for (name, joint_fp, is_fp) in &computed {
            println!(
                "    Golden {{ name: \"{name}\", joint_fp: {joint_fp:#018x}, is_fp: {is_fp:#018x} }},"
            );
        }
        println!("];");
        return;
    }
    assert_eq!(
        computed.len(),
        GOLDENS.len(),
        "benchmark registry changed; regenerate the goldens table"
    );
    for ((name, joint_fp, is_fp), golden) in computed.iter().zip(GOLDENS) {
        assert_eq!(*name, golden.name, "registry order changed");
        assert_eq!(
            *joint_fp, golden.joint_fp,
            "{name}: joint-execution golden drifted (latent trace / log_guide / log_model)"
        );
        assert_eq!(
            *is_fp, golden.is_fp,
            "{name}: importance-sampling golden drifted (particles / log_evidence / ess)"
        );
    }
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "lr",
        joint_fp: 0x833e19611633de59,
        is_fp: 0x3c7c069ac00e4a11,
    },
    Golden {
        name: "gmm",
        joint_fp: 0x67339b51830c4018,
        is_fp: 0xccf29afb88481225,
    },
    Golden {
        name: "kalman",
        joint_fp: 0x6635dbbecde53716,
        is_fp: 0x27b04fc3335a9579,
    },
    Golden {
        name: "sprinkler",
        joint_fp: 0x05c872098f5c13f0,
        is_fp: 0xfb0f3522f39c264a,
    },
    Golden {
        name: "hmm",
        joint_fp: 0x0245855268cb8da1,
        is_fp: 0x81fd78d59c925643,
    },
    Golden {
        name: "branching",
        joint_fp: 0x5d61179423faf800,
        is_fp: 0x982473af6720d7be,
    },
    Golden {
        name: "marsaglia",
        joint_fp: 0xcbabf395cfe5e084,
        is_fp: 0x04d3819760256f90,
    },
    Golden {
        name: "ptrace",
        joint_fp: 0x48303aded9c8dd13,
        is_fp: 0x6f46166a4155298f,
    },
    Golden {
        name: "aircraft",
        joint_fp: 0x0e98972ee37e20ae,
        is_fp: 0x901ab52d3df7d968,
    },
    Golden {
        name: "weight",
        joint_fp: 0x99b1a0d5abe0389e,
        is_fp: 0x4786495ec102ab28,
    },
    Golden {
        name: "vae",
        joint_fp: 0xe8d5985937dea92e,
        is_fp: 0x8792491ea856e262,
    },
    Golden {
        name: "ex-1",
        joint_fp: 0x6c42e679fcc21897,
        is_fp: 0xc8fd189de148d92c,
    },
    Golden {
        name: "ex-2",
        joint_fp: 0x1f04c6744f9f51f8,
        is_fp: 0x724757b57550e99a,
    },
    Golden {
        name: "gp-dsl",
        joint_fp: 0x280352ba31055827,
        is_fp: 0xe3dd4d7b347d19e8,
    },
    Golden {
        name: "outlier",
        joint_fp: 0x4f3337da862a0a9d,
        is_fp: 0xecc9d74776329582,
    },
    Golden {
        name: "normal-normal",
        joint_fp: 0xc1d9d01f423937de,
        is_fp: 0x92fe41febb8f119d,
    },
    Golden {
        name: "geometric",
        joint_fp: 0x819be95807b125ba,
        is_fp: 0xfdf0650bbc2c4d4e,
    },
    Golden {
        name: "burglary",
        joint_fp: 0x77f05c4669ba2e07,
        is_fp: 0xdf0ffca307ae9533,
    },
    Golden {
        name: "coin",
        joint_fp: 0xe05e98e6c6ff1e49,
        is_fp: 0x545ca91bd21cc198,
    },
    Golden {
        name: "seasons",
        joint_fp: 0x0f5799a14890ed2a,
        is_fp: 0xceaec502fcc7eff0,
    },
];
