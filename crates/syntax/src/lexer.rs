//! Lexer for the surface syntax of the guide-types PPL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// A natural-number literal.
    Nat(u64),
    /// A real literal (contains a decimal point or exponent).
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `<-`
    LeftArrow,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `=`
    Eq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Nat(n) => write!(f, "{n}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::LeftArrow => write!(f, "<-"),
            Token::Arrow => write!(f, "->"),
            Token::FatArrow => write!(f, "=>"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Eq => write!(f, "="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// A lexical error (unexpected character or malformed number).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises a source string.
///
/// Line comments start with `//` and run to the end of the line.
///
/// # Errors
///
/// Returns a [`LexError`] on unexpected characters or malformed numeric
/// literals.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let err = |message: String, line: usize, col: usize| LexError { message, line, col };

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, col: &mut usize| {
            *i += 1;
            *col += 1;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(&mut i, &mut col),
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Spanned {
                    token: Token::Ident(text),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_real = false;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                if i < chars.len()
                    && chars[i] == '.'
                    && i + 1 < chars.len()
                    && chars[i + 1].is_ascii_digit()
                {
                    is_real = true;
                    i += 1;
                    col += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    is_real = true;
                    i += 1;
                    col += 1;
                    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                        i += 1;
                        col += 1;
                    }
                    if i >= chars.len() || !chars[i].is_ascii_digit() {
                        return Err(err("malformed exponent".into(), tline, tcol));
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let token =
                    if is_real {
                        Token::Real(text.parse::<f64>().map_err(|e| {
                            err(format!("bad real literal {text}: {e}"), tline, tcol)
                        })?)
                    } else {
                        Token::Nat(text.parse::<u64>().map_err(|e| {
                            err(format!("bad integer literal {text}: {e}"), tline, tcol)
                        })?)
                    };
                tokens.push(Spanned {
                    token,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                // Punctuation and operators.
                let two: Option<Token> = if i + 1 < chars.len() {
                    match (c, chars[i + 1]) {
                        ('<', '-') => Some(Token::LeftArrow),
                        ('-', '>') => Some(Token::Arrow),
                        ('=', '>') => Some(Token::FatArrow),
                        ('<', '=') => Some(Token::Le),
                        ('>', '=') => Some(Token::Ge),
                        ('=', '=') => Some(Token::EqEq),
                        ('&', '&') => Some(Token::AndAnd),
                        ('|', '|') => Some(Token::OrOr),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(t) = two {
                    tokens.push(Spanned {
                        token: t,
                        line: tline,
                        col: tcol,
                    });
                    i += 2;
                    col += 2;
                    continue;
                }
                let one = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ',' => Token::Comma,
                    ';' => Token::Semi,
                    ':' => Token::Colon,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '/' => Token::Slash,
                    '<' => Token::Lt,
                    '>' => Token::Gt,
                    '=' => Token::Eq,
                    '!' => Token::Bang,
                    other => {
                        return Err(err(format!("unexpected character '{other}'"), tline, tcol));
                    }
                };
                tokens.push(Spanned {
                    token: one,
                    line: tline,
                    col: tcol,
                });
                i += 1;
                col += 1;
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_identifiers_and_keywords() {
        assert_eq!(
            toks("proc Model latent _x"),
            vec![
                Token::Ident("proc".into()),
                Token::Ident("Model".into()),
                Token::Ident("latent".into()),
                Token::Ident("_x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2"),
            vec![
                Token::Nat(42),
                Token::Real(3.5),
                Token::Real(1000.0),
                Token::Real(0.025),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_operators_and_punctuation() {
        assert_eq!(
            toks("<- -> => <= >= == && || < > = ! ; : , ( ) { } [ ]"),
            vec![
                Token::LeftArrow,
                Token::Arrow,
                Token::FatArrow,
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::AndAnd,
                Token::OrOr,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Bang,
                Token::Semi,
                Token::Colon,
                Token::Comma,
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_comments_and_positions() {
        let tokens = lex("x // comment\n  y").unwrap();
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].token, Token::Ident("y".into()));
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[1].col, 3);
    }

    #[test]
    fn lex_arithmetic_expression() {
        assert_eq!(
            toks("v < 2.0 + x * 3"),
            vec![
                Token::Ident("v".into()),
                Token::Lt,
                Token::Real(2.0),
                Token::Plus,
                Token::Ident("x".into()),
                Token::Star,
                Token::Nat(3),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_error_reports_position() {
        let e = lex("abc\n  #").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 3);
        assert!(e.to_string().contains("unexpected character"));
    }

    #[test]
    fn lex_malformed_exponent() {
        assert!(lex("1e").is_err());
        assert!(lex("1e+").is_err());
    }
}
