//! Handwritten native implementations of the Table 2 benchmarks.
//!
//! These play the role of the paper's handwritten Pyro code (the `HLOC` and
//! `HI` columns): the same model and guide written directly against the
//! distribution library, with no parsing, no coroutines, and no message
//! passing.  The Table 2 harness runs the same inference algorithm with the
//! same hyperparameters on both the compiled/coroutine path and these
//! implementations and compares wall-clock time.

use ppl_dist::rng::Pcg32;
use ppl_dist::Distribution;
use ppl_dist::Sample;

/// A handwritten importance-sampling benchmark: one call draws a latent
/// configuration from the handwritten guide, scores model and guide, and
/// returns `(statistic, log importance weight)`.
pub type IsParticleFn = fn(&mut Pcg32, &[Sample]) -> (f64, f64);

/// A handwritten variational-inference benchmark.
#[derive(Debug, Clone, Copy)]
pub struct HandwrittenVi {
    /// Draws latents from the guide at the given parameters and returns
    /// `(latents, log q)`.
    pub sample_guide: fn(&mut Pcg32, &[f64]) -> (Vec<f64>, f64),
    /// Scores the guide density of given latents at given parameters.
    pub log_guide: fn(&[f64], &[f64]) -> f64,
    /// Scores the model's joint density of latents and observations.
    pub log_joint: fn(&[f64], &[Sample]) -> f64,
    /// Approximate line count of this handwritten implementation (the HLOC
    /// column).
    pub loc: usize,
}

/// A handwritten importance-sampling benchmark bundle.
#[derive(Debug, Clone, Copy)]
pub struct HandwrittenIs {
    /// The particle function.
    pub particle: IsParticleFn,
    /// Approximate line count of this handwritten implementation.
    pub loc: usize,
}

// --------------------------------------------------------------------- ex-1

/// Handwritten Fig. 1 model with the Fig. 3 guide.
pub fn ex1_particle(rng: &mut Pcg32, obs: &[Sample]) -> (f64, f64) {
    let z = obs[0].as_f64();
    let guide_x = Distribution::gamma(1.0, 1.0).expect("params");
    let prior_x = Distribution::gamma(2.0, 1.0).expect("params");
    let x = guide_x.sample(rng);
    let mut log_g = guide_x.log_density_f64(x);
    let mut log_m = prior_x.log_density_f64(x);
    if x < 2.0 {
        log_m += Distribution::normal(-1.0, 1.0)
            .expect("params")
            .log_density_f64(z);
    } else {
        let guide_y = Distribution::uniform();
        let y = guide_y.sample(rng);
        log_g += guide_y.log_density_f64(y);
        log_m += Distribution::beta(3.0, 1.0)
            .expect("params")
            .log_density_f64(y)
            + Distribution::normal(y, 1.0)
                .expect("params")
                .log_density_f64(z);
    }
    (x, log_m - log_g)
}

/// Handwritten `ex-1` bundle.
pub const EX1_HANDWRITTEN: HandwrittenIs = HandwrittenIs {
    particle: ex1_particle,
    loc: 18,
};

// ---------------------------------------------------------------- branching

/// Handwritten `branching` model/guide pair.
pub fn branching_particle(rng: &mut Pcg32, obs: &[Sample]) -> (f64, f64) {
    let y = obs[0].as_f64();
    let guide_count = Distribution::geometric(0.4).expect("params");
    let prior_count = Distribution::geometric(0.5).expect("params");
    let count = guide_count.draw(rng);
    let count_n = count.as_nat().expect("geometric draws naturals");
    let mut log_g = guide_count.log_density(&count);
    let mut log_m = prior_count.log_density(&count);
    let stat = if count_n < 4 {
        log_m += Distribution::normal(count_n as f64, 1.0)
            .expect("params")
            .log_density_f64(y);
        count_n as f64
    } else {
        let guide_extra = Distribution::poisson(5.0).expect("params");
        let prior_extra = Distribution::poisson(4.0).expect("params");
        let extra = guide_extra.draw(rng);
        log_g += guide_extra.log_density(&extra);
        log_m += prior_extra.log_density(&extra);
        let total = count_n + extra.as_nat().expect("poisson draws naturals");
        log_m += Distribution::normal(total as f64, 1.0)
            .expect("params")
            .log_density_f64(y);
        count_n as f64
    };
    (stat, log_m - log_g)
}

/// Handwritten `branching` bundle.
pub const BRANCHING_HANDWRITTEN: HandwrittenIs = HandwrittenIs {
    particle: branching_particle,
    loc: 22,
};

// ---------------------------------------------------------------------- gmm

/// Handwritten `gmm` model/guide pair (two components, four observations).
pub fn gmm_particle(rng: &mut Pcg32, obs: &[Sample]) -> (f64, f64) {
    let guide_mu1 = Distribution::normal(-2.0, 2.0).expect("params");
    let guide_mu2 = Distribution::normal(2.0, 2.0).expect("params");
    let prior_mu1 = Distribution::normal(-2.0, 3.0).expect("params");
    let prior_mu2 = Distribution::normal(2.0, 3.0).expect("params");
    let flip = Distribution::bernoulli(0.5).expect("params");
    let mu1 = guide_mu1.sample(rng);
    let mu2 = guide_mu2.sample(rng);
    let mut log_g = guide_mu1.log_density_f64(mu1) + guide_mu2.log_density_f64(mu2);
    let mut log_m = prior_mu1.log_density_f64(mu1) + prior_mu2.log_density_f64(mu2);
    for o in obs {
        let z = flip.draw(rng);
        log_g += flip.log_density(&z);
        log_m += flip.log_density(&z);
        let mean = if z.as_bool().expect("bernoulli draws booleans") {
            mu1
        } else {
            mu2
        };
        log_m += Distribution::normal(mean, 1.0)
            .expect("params")
            .log_density_f64(o.as_f64());
    }
    (mu1, log_m - log_g)
}

/// Handwritten `gmm` bundle.
pub const GMM_HANDWRITTEN: HandwrittenIs = HandwrittenIs {
    particle: gmm_particle,
    loc: 24,
};

// ------------------------------------------------------------------- weight

fn weight_sample_guide(rng: &mut Pcg32, params: &[f64]) -> (Vec<f64>, f64) {
    let d = Distribution::normal(params[0], params[1].max(1e-6)).expect("params");
    let w = d.sample(rng);
    (vec![w], d.log_density_f64(w))
}

fn weight_log_guide(latents: &[f64], params: &[f64]) -> f64 {
    Distribution::normal(params[0], params[1].max(1e-6))
        .expect("params")
        .log_density_f64(latents[0])
}

fn weight_log_joint(latents: &[f64], obs: &[Sample]) -> f64 {
    let w = latents[0];
    let mut lp = Distribution::normal(2.0, 1.0)
        .expect("params")
        .log_density_f64(w);
    for o in obs {
        lp += Distribution::normal(w, 0.75)
            .expect("params")
            .log_density_f64(o.as_f64());
    }
    lp
}

/// Handwritten `weight` bundle (VI).
pub const WEIGHT_HANDWRITTEN: HandwrittenVi = HandwrittenVi {
    sample_guide: weight_sample_guide,
    log_guide: weight_log_guide,
    log_joint: weight_log_joint,
    loc: 16,
};

// ---------------------------------------------------------------------- vae

const VAE_DECODER: [[f64; 2]; 4] = [[0.9, 0.1], [0.5, -0.5], [0.1, 0.9], [0.4, 0.3]];

fn vae_sample_guide(rng: &mut Pcg32, params: &[f64]) -> (Vec<f64>, f64) {
    let d1 = Distribution::normal(params[0], params[1].max(1e-6)).expect("params");
    let d2 = Distribution::normal(params[2], params[3].max(1e-6)).expect("params");
    let z1 = d1.sample(rng);
    let z2 = d2.sample(rng);
    (
        vec![z1, z2],
        d1.log_density_f64(z1) + d2.log_density_f64(z2),
    )
}

fn vae_log_guide(latents: &[f64], params: &[f64]) -> f64 {
    Distribution::normal(params[0], params[1].max(1e-6))
        .expect("params")
        .log_density_f64(latents[0])
        + Distribution::normal(params[2], params[3].max(1e-6))
            .expect("params")
            .log_density_f64(latents[1])
}

fn vae_log_joint(latents: &[f64], obs: &[Sample]) -> f64 {
    let (z1, z2) = (latents[0], latents[1]);
    let std_normal = Distribution::normal(0.0, 1.0).expect("params");
    let mut lp = std_normal.log_density_f64(z1) + std_normal.log_density_f64(z2);
    for (row, o) in VAE_DECODER.iter().zip(obs) {
        let mean = row[0] * z1 + row[1] * z2;
        lp += Distribution::normal(mean, 0.5)
            .expect("params")
            .log_density_f64(o.as_f64());
    }
    lp
}

/// Handwritten `vae` bundle (VI).
pub const VAE_HANDWRITTEN: HandwrittenVi = HandwrittenVi {
    sample_guide: vae_sample_guide,
    log_guide: vae_log_guide,
    log_joint: vae_log_joint,
    loc: 26,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handwritten_is_particles_are_finite() {
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..500 {
            let (x, lw) = ex1_particle(&mut rng, &[Sample::Real(0.8)]);
            assert!(x > 0.0);
            assert!(lw.is_finite());
            let (c, lw) = branching_particle(&mut rng, &[Sample::Real(3.0)]);
            assert!(c >= 0.0);
            assert!(lw.is_finite());
            let (_mu, lw) = gmm_particle(
                &mut rng,
                &[
                    Sample::Real(-2.0),
                    Sample::Real(-1.5),
                    Sample::Real(2.0),
                    Sample::Real(2.5),
                ],
            );
            assert!(lw.is_finite());
        }
    }

    #[test]
    fn handwritten_vi_pieces_are_consistent() {
        let mut rng = Pcg32::seed_from_u64(2);
        let params = [7.0, 0.5];
        let (latents, lq) = weight_sample_guide(&mut rng, &params);
        assert!((lq - weight_log_guide(&latents, &params)).abs() < 1e-12);
        let obs = [Sample::Real(9.0), Sample::Real(9.0)];
        assert!(weight_log_joint(&latents, &obs).is_finite());

        let vparams = [0.0, 1.0, 0.0, 1.0];
        let (z, lq) = vae_sample_guide(&mut rng, &vparams);
        assert!((lq - vae_log_guide(&z, &vparams)).abs() < 1e-12);
        let vobs = [
            Sample::Real(1.0),
            Sample::Real(0.0),
            Sample::Real(-0.5),
            Sample::Real(0.3),
        ];
        assert!(vae_log_joint(&z, &vobs).is_finite());
    }

    #[test]
    fn handwritten_ex1_matches_analytic_weights() {
        // For a fixed draw in the then-branch the importance weight equals
        // p(x) p(z|then) / q(x); sanity-check the magnitude.
        let mut rng = Pcg32::seed_from_u64(3);
        let mut seen_then = false;
        let mut seen_else = false;
        for _ in 0..200 {
            let (x, lw) = ex1_particle(&mut rng, &[Sample::Real(0.8)]);
            if x < 2.0 {
                seen_then = true;
            } else {
                seen_else = true;
            }
            assert!(lw < 10.0 && lw > -200.0);
        }
        assert!(seen_then && seen_else);
    }
}
