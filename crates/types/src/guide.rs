//! Guide types (§4 of the paper): protocol types for the guidance channels
//! between the model and guide coroutines.
//!
//! Grammar (paper notation on the left):
//!
//! ```text
//! A, B ::= X            type variable                 GuideType::Var
//!        | 1            ended channel                 GuideType::End
//!        | T[A]         type-operator instantiation   GuideType::App
//!        | τ ∧ A        provider sends a τ sample     GuideType::SendVal
//!        | τ ⊃ A        consumer sends a τ sample     GuideType::RecvVal
//!        | A ⊕ B        provider sends a selection    GuideType::Offer
//!        | A & B        consumer sends a selection    GuideType::Accept
//! ```
//!
//! A type definition `typedef(T. X. A)` declares a unary type operator; a
//! collection of definitions [`TypeDefs`] accompanies every program.

use ppl_syntax::ast::BaseType;
use std::collections::HashMap;
use std::fmt;

/// A guide type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GuideType {
    /// `1` — the ended channel.
    End,
    /// A type variable (continuation parameter of a type operator).
    Var(String),
    /// `T[A]` — instantiation of the type operator `T` at `A`.
    App(String, Box<GuideType>),
    /// `τ ∧ A` — the channel's *provider* sends a sample of type `τ` and the
    /// protocol continues as `A`.
    SendVal(BaseType, Box<GuideType>),
    /// `τ ⊃ A` — the channel's *consumer* sends a sample of type `τ` (dual of
    /// `∧`; included for completeness, cf. Remark 4.1).
    RecvVal(BaseType, Box<GuideType>),
    /// `A ⊕ B` — the provider sends a branch selection.
    Offer(Box<GuideType>, Box<GuideType>),
    /// `A & B` — the consumer sends a branch selection.
    Accept(Box<GuideType>, Box<GuideType>),
}

impl GuideType {
    /// `τ ∧ A` constructor.
    pub fn send_val(ty: BaseType, rest: GuideType) -> Self {
        GuideType::SendVal(ty, Box::new(rest))
    }

    /// `τ ⊃ A` constructor.
    pub fn recv_val(ty: BaseType, rest: GuideType) -> Self {
        GuideType::RecvVal(ty, Box::new(rest))
    }

    /// `A ⊕ B` constructor.
    pub fn offer(a: GuideType, b: GuideType) -> Self {
        GuideType::Offer(Box::new(a), Box::new(b))
    }

    /// `A & B` constructor.
    pub fn accept(a: GuideType, b: GuideType) -> Self {
        GuideType::Accept(Box::new(a), Box::new(b))
    }

    /// `T[A]` constructor.
    pub fn app(op: impl Into<String>, arg: GuideType) -> Self {
        GuideType::App(op.into(), Box::new(arg))
    }

    /// Capture-avoiding substitution of a type variable by a guide type
    /// (`[B/X]A`); type operators bind their own parameter inside
    /// [`TypeDefs`], so no capture can occur at this level.
    pub fn subst(&self, var: &str, replacement: &GuideType) -> GuideType {
        match self {
            GuideType::End => GuideType::End,
            GuideType::Var(x) => {
                if x == var {
                    replacement.clone()
                } else {
                    GuideType::Var(x.clone())
                }
            }
            GuideType::App(op, a) => {
                GuideType::App(op.clone(), Box::new(a.subst(var, replacement)))
            }
            GuideType::SendVal(t, a) => {
                GuideType::SendVal(t.clone(), Box::new(a.subst(var, replacement)))
            }
            GuideType::RecvVal(t, a) => {
                GuideType::RecvVal(t.clone(), Box::new(a.subst(var, replacement)))
            }
            GuideType::Offer(a, b) => GuideType::Offer(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            GuideType::Accept(a, b) => GuideType::Accept(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
        }
    }

    /// True if the type contains an application of the operator `op` — a
    /// *structural* occurs-check, used to detect recursive operator
    /// definitions.  Unlike a textual search over the rendering, it cannot
    /// be fooled by an operator whose name is a suffix of another's (`T`
    /// vs `GT`).
    pub fn mentions_op(&self, op: &str) -> bool {
        match self {
            GuideType::End | GuideType::Var(_) => false,
            GuideType::App(name, a) => name == op || a.mentions_op(op),
            GuideType::SendVal(_, a) | GuideType::RecvVal(_, a) => a.mentions_op(op),
            GuideType::Offer(a, b) | GuideType::Accept(a, b) => {
                a.mentions_op(op) || b.mentions_op(op)
            }
        }
    }

    /// True if the type mentions the given type variable.
    pub fn mentions_var(&self, var: &str) -> bool {
        match self {
            GuideType::End => false,
            GuideType::Var(x) => x == var,
            GuideType::App(_, a) | GuideType::SendVal(_, a) | GuideType::RecvVal(_, a) => {
                a.mentions_var(var)
            }
            GuideType::Offer(a, b) | GuideType::Accept(a, b) => {
                a.mentions_var(var) || b.mentions_var(var)
            }
        }
    }

    /// The number of constructors in the type (used in reports and as a
    /// sanity bound in tests).
    pub fn size(&self) -> usize {
        match self {
            GuideType::End | GuideType::Var(_) => 1,
            GuideType::App(_, a) | GuideType::SendVal(_, a) | GuideType::RecvVal(_, a) => {
                1 + a.size()
            }
            GuideType::Offer(a, b) | GuideType::Accept(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for GuideType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuideType::End => write!(f, "1"),
            GuideType::Var(x) => write!(f, "{x}"),
            GuideType::App(op, a) => write!(f, "{op}[{a}]"),
            GuideType::SendVal(t, a) => write!(f, "{t} /\\ {a}"),
            GuideType::RecvVal(t, a) => write!(f, "{t} => {a}"),
            GuideType::Offer(a, b) => write!(f, "({a} (+) {b})"),
            GuideType::Accept(a, b) => write!(f, "({a} & {b})"),
        }
    }
}

/// A single type definition `typedef(T. X. A)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// The operator name `T`.
    pub name: String,
    /// The bound type variable `X`.
    pub param: String,
    /// The operator body `A` (may mention `X` and other operators).
    pub body: GuideType,
}

/// A collection of (mutually recursive) type definitions `T`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeDefs {
    defs: HashMap<String, TypeDef>,
}

impl TypeDefs {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a definition, replacing any previous definition of the same
    /// operator.
    pub fn insert(&mut self, def: TypeDef) {
        self.defs.insert(def.name.clone(), def);
    }

    /// Looks up an operator by name.
    pub fn get(&self, name: &str) -> Option<&TypeDef> {
        self.defs.get(name)
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if there are no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates over the definitions in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &TypeDef> {
        self.defs.values()
    }

    /// Unfolds a type-operator application one step: `T[A] ↦ [A/X]body`.
    ///
    /// Returns `None` if the operator is not defined.
    pub fn unfold(&self, op: &str, arg: &GuideType) -> Option<GuideType> {
        let def = self.get(op)?;
        Some(def.body.subst(&def.param, arg))
    }

    /// Structural equality of guide types *up to consistent renaming of type
    /// operators and their parameters*.
    ///
    /// This is the equality used to decide whether a model and a guide agree
    /// on the protocol for the channel they share: the two programs are
    /// inferred separately and therefore mention distinct operator names,
    /// but compatible programs produce operators with matching bodies.
    ///
    /// The check is a bisimulation over operator pairs, so it terminates on
    /// recursive definitions.
    pub fn equal(&self, a: &GuideType, b: &GuideType, other_defs: &TypeDefs) -> bool {
        let mut assumed: Vec<(String, String)> = Vec::new();
        self.equal_inner(a, b, other_defs, &mut assumed, &mut Vec::new())
    }

    fn equal_inner(
        &self,
        a: &GuideType,
        b: &GuideType,
        other: &TypeDefs,
        assumed_ops: &mut Vec<(String, String)>,
        assumed_vars: &mut Vec<(String, String)>,
    ) -> bool {
        match (a, b) {
            (GuideType::End, GuideType::End) => true,
            (GuideType::Var(x), GuideType::Var(y)) => {
                x == y || assumed_vars.iter().any(|(p, q)| p == x && q == y)
            }
            (GuideType::SendVal(t1, a1), GuideType::SendVal(t2, a2))
            | (GuideType::RecvVal(t1, a1), GuideType::RecvVal(t2, a2)) => {
                t1 == t2 && self.equal_inner(a1, a2, other, assumed_ops, assumed_vars)
            }
            (GuideType::Offer(a1, b1), GuideType::Offer(a2, b2))
            | (GuideType::Accept(a1, b1), GuideType::Accept(a2, b2)) => {
                self.equal_inner(a1, a2, other, assumed_ops, assumed_vars)
                    && self.equal_inner(b1, b2, other, assumed_ops, assumed_vars)
            }
            (GuideType::App(op1, a1), GuideType::App(op2, a2)) => {
                if !self.equal_inner(a1, a2, other, assumed_ops, assumed_vars) {
                    return false;
                }
                if assumed_ops.iter().any(|(p, q)| p == op1 && q == op2) {
                    return true;
                }
                let (Some(d1), Some(d2)) = (self.get(op1), other.get(op2)) else {
                    return false;
                };
                assumed_ops.push((op1.clone(), op2.clone()));
                assumed_vars.push((d1.param.clone(), d2.param.clone()));
                let ok = self.equal_inner(&d1.body, &d2.body, other, assumed_ops, assumed_vars);
                assumed_vars.pop();
                ok
            }
            _ => false,
        }
    }

    /// True if the type is `⊕`-free (never requires the *provider* to send a
    /// branch selection), unfolding operators as needed.
    pub fn is_offer_free(&self, ty: &GuideType) -> bool {
        self.constructor_free(ty, &mut Vec::new(), true)
    }

    /// True if the type is `&`-free (never requires the *consumer* to send a
    /// branch selection), unfolding operators as needed.
    pub fn is_accept_free(&self, ty: &GuideType) -> bool {
        self.constructor_free(ty, &mut Vec::new(), false)
    }

    fn constructor_free(&self, ty: &GuideType, visited: &mut Vec<String>, offer: bool) -> bool {
        match ty {
            GuideType::End | GuideType::Var(_) => true,
            GuideType::SendVal(_, a) | GuideType::RecvVal(_, a) => {
                self.constructor_free(a, visited, offer)
            }
            GuideType::Offer(a, b) => {
                !offer
                    && self.constructor_free(a, visited, offer)
                    && self.constructor_free(b, visited, offer)
            }
            GuideType::Accept(a, b) => {
                offer
                    && self.constructor_free(a, visited, offer)
                    && self.constructor_free(b, visited, offer)
            }
            GuideType::App(op, a) => {
                if !self.constructor_free(a, visited, offer) {
                    return false;
                }
                if visited.contains(op) {
                    return true;
                }
                visited.push(op.clone());
                match self.get(op) {
                    Some(def) => self.constructor_free(&def.body, visited, offer),
                    None => false,
                }
            }
        }
    }
}

impl fmt::Display for TypeDefs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.defs.keys().collect();
        names.sort();
        for name in names {
            let def = &self.defs[name];
            writeln!(f, "typedef {}[{}] = {}", def.name, def.param, def.body)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ureal() -> BaseType {
        BaseType::UnitInterval
    }
    fn preal() -> BaseType {
        BaseType::PosReal
    }
    fn real() -> BaseType {
        BaseType::Real
    }

    /// The Fig. 5 protocol: `ℝ+ ∧ (1 & (ℝ(0,1) ∧ 1))`.
    fn fig5_latent() -> GuideType {
        GuideType::send_val(
            preal(),
            GuideType::accept(GuideType::End, GuideType::send_val(ureal(), GuideType::End)),
        )
    }

    #[test]
    fn display_round_trips_shape() {
        let t = fig5_latent();
        assert_eq!(t.to_string(), "preal /\\ (1 & ureal /\\ 1)");
        assert_eq!(t.size(), 5);
        let o = GuideType::offer(GuideType::End, GuideType::Var("X".into()));
        assert_eq!(o.to_string(), "(1 (+) X)");
    }

    #[test]
    fn substitution_and_mentions() {
        let t = GuideType::send_val(real(), GuideType::Var("X".into()));
        assert!(t.mentions_var("X"));
        assert!(!t.mentions_var("Y"));
        let s = t.subst("X", &GuideType::End);
        assert_eq!(s, GuideType::send_val(real(), GuideType::End));
        assert!(!s.mentions_var("X"));
        // Substitution under operator application.
        let u = GuideType::app("R", GuideType::Var("X".into())).subst("X", &GuideType::End);
        assert_eq!(u, GuideType::app("R", GuideType::End));
    }

    #[test]
    fn unfold_recursive_operator() {
        // typedef R[X] = ureal ∧ ((ℝ ∧ X) & R[R[X]])  (the PCFG operator, Ex. 4.2)
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "R".into(),
            param: "X".into(),
            body: GuideType::send_val(
                ureal(),
                GuideType::accept(
                    GuideType::send_val(real(), GuideType::Var("X".into())),
                    GuideType::app("R", GuideType::app("R", GuideType::Var("X".into()))),
                ),
            ),
        });
        let unfolded = defs.unfold("R", &GuideType::End).unwrap();
        match unfolded {
            GuideType::SendVal(t, rest) => {
                assert_eq!(t, ureal());
                match *rest {
                    GuideType::Accept(left, right) => {
                        assert_eq!(*left, GuideType::send_val(real(), GuideType::End));
                        assert_eq!(
                            *right,
                            GuideType::app("R", GuideType::app("R", GuideType::End))
                        );
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
        assert!(defs.unfold("Nope", &GuideType::End).is_none());
    }

    #[test]
    fn equality_modulo_operator_names() {
        let mk = |opname: &str| {
            let mut defs = TypeDefs::new();
            defs.insert(TypeDef {
                name: opname.into(),
                param: format!("X_{opname}"),
                body: GuideType::send_val(
                    ureal(),
                    GuideType::accept(
                        GuideType::send_val(real(), GuideType::Var(format!("X_{opname}"))),
                        GuideType::app(
                            opname,
                            GuideType::app(opname, GuideType::Var(format!("X_{opname}"))),
                        ),
                    ),
                ),
            });
            defs
        };
        let model_defs = mk("T_model");
        let guide_defs = mk("T_guide");
        let a = GuideType::app("T_model", GuideType::End);
        let b = GuideType::app("T_guide", GuideType::End);
        assert!(model_defs.equal(&a, &b, &guide_defs));
        // A different body (no recursion in the else branch) is not equal.
        let mut other = TypeDefs::new();
        other.insert(TypeDef {
            name: "T_guide".into(),
            param: "X".into(),
            body: GuideType::send_val(
                ureal(),
                GuideType::accept(
                    GuideType::send_val(real(), GuideType::Var("X".into())),
                    GuideType::Var("X".into()),
                ),
            ),
        });
        assert!(!model_defs.equal(&a, &GuideType::app("T_guide", GuideType::End), &other));
    }

    #[test]
    fn equality_of_plain_types() {
        let defs = TypeDefs::new();
        assert!(defs.equal(&fig5_latent(), &fig5_latent(), &defs));
        let wrong = GuideType::send_val(
            real(), // ℝ rather than ℝ+: the unsound Guide2' of Fig. 4
            GuideType::accept(GuideType::End, GuideType::send_val(ureal(), GuideType::End)),
        );
        assert!(!defs.equal(&fig5_latent(), &wrong, &defs));
        assert!(!defs.equal(&GuideType::End, &fig5_latent(), &defs));
        // ⊕ and & are not interchangeable.
        assert!(!defs.equal(
            &GuideType::offer(GuideType::End, GuideType::End),
            &GuideType::accept(GuideType::End, GuideType::End),
            &defs
        ));
    }

    #[test]
    fn offer_and_accept_freeness() {
        let defs = TypeDefs::new();
        let t = fig5_latent();
        // The model's consumed channel type is ⊕-free but not &-free.
        assert!(defs.is_offer_free(&t));
        assert!(!defs.is_accept_free(&t));
        let obs = GuideType::send_val(real(), GuideType::End);
        assert!(defs.is_offer_free(&obs));
        assert!(defs.is_accept_free(&obs));
        let o = GuideType::offer(GuideType::End, GuideType::End);
        assert!(!defs.is_offer_free(&o));
        assert!(defs.is_accept_free(&o));
    }

    #[test]
    fn freeness_unfolds_recursive_operators() {
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "R".into(),
            param: "X".into(),
            body: GuideType::send_val(
                ureal(),
                GuideType::accept(
                    GuideType::Var("X".into()),
                    GuideType::app("R", GuideType::Var("X".into())),
                ),
            ),
        });
        let t = GuideType::app("R", GuideType::End);
        assert!(defs.is_offer_free(&t));
        assert!(!defs.is_accept_free(&t));
        // Unknown operators are conservatively rejected.
        let unknown = GuideType::app("Missing", GuideType::End);
        assert!(!defs.is_offer_free(&unknown));
    }

    #[test]
    fn mentions_op_is_structural() {
        // R's body mentions R (recursive) but not G; and an operator named
        // "T" is not confused with one named "GT" the way a textual
        // `contains("T[")` search would be.
        let body = GuideType::send_val(
            ureal(),
            GuideType::accept(
                GuideType::Var("X".into()),
                GuideType::app("R", GuideType::app("GT", GuideType::Var("X".into()))),
            ),
        );
        assert!(body.mentions_op("R"));
        assert!(body.mentions_op("GT"));
        assert!(!body.mentions_op("T"));
        assert!(!body.mentions_op("G"));
        assert!(!GuideType::End.mentions_op("R"));
        assert!(!GuideType::Var("R".into()).mentions_op("R"));
    }

    #[test]
    fn type_defs_collection_behaviour() {
        let mut defs = TypeDefs::new();
        assert!(defs.is_empty());
        defs.insert(TypeDef {
            name: "T".into(),
            param: "X".into(),
            body: GuideType::Var("X".into()),
        });
        assert_eq!(defs.len(), 1);
        assert!(defs.get("T").is_some());
        assert!(defs.get("U").is_none());
        assert_eq!(defs.iter().count(), 1);
        let shown = defs.to_string();
        assert!(shown.contains("typedef T[X] = X"));
    }
}
