//! Criterion benchmarks backing the paper's evaluation claims:
//!
//! * `type_inference` — guide-type inference latency per benchmark
//!   (§6: "type inference completes in several milliseconds");
//! * `table2_cg` — type inference + Pyro code generation (the CG column);
//! * `table2_inference` — one importance-sampling particle / one VI
//!   iteration on the coroutine path vs the handwritten path
//!   (the GI vs HI comparison, per-unit-of-work);
//! * `coroutine_overhead` — a single joint coroutine execution vs the
//!   handwritten particle function (the paper's "coroutines do not add
//!   significant overhead" claim);
//! * `fig2_posterior` — the importance-sampling workload behind Fig. 2;
//! * `ablation_scoring_modes` — joint generative execution vs re-scoring a
//!   recorded trace with the big-step evaluator (design-choice ablation
//!   from DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppl_bench::handwritten_importance;
use ppl_dist::rng::Pcg32;
use ppl_inference::ImportanceSampler;
use ppl_models::{all_benchmarks, benchmark, handwritten_is};
use ppl_runtime::{JointExecutor, JointSpec, LatentSource};
use ppl_semantics::{Evaluator, Message, Trace};
use std::time::Duration;

fn configured(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_type_inference(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("type_inference");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for b in all_benchmarks()
        .into_iter()
        .filter(|b| b.in_table1 && b.expressible)
    {
        let model = b.parsed_model().unwrap().unwrap();
        let guide = b.parsed_guide().unwrap().unwrap();
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                ppl_types::infer_program(&model).unwrap();
                ppl_types::infer_program(&guide).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_table2_cg(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("table2_cg");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, _) in ppl_models::table2_benchmarks() {
        let b = benchmark(name).unwrap();
        let model = b.parsed_model().unwrap().unwrap();
        let guide = b.parsed_guide().unwrap().unwrap();
        group.bench_function(name, |bencher| {
            bencher.iter(|| {
                ppl_types::infer_program(&model).unwrap();
                ppl_types::infer_program(&guide).unwrap();
                ppl_compiler::compile_pair(
                    &model,
                    b.model_proc,
                    &guide,
                    b.guide_proc,
                    ppl_compiler::Style::Coroutine,
                )
            })
        });
    }
    group.finish();
}

fn bench_coroutine_overhead(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("coroutine_overhead");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for name in ["ex-1", "branching", "gmm"] {
        let b = benchmark(name).unwrap();
        let model = b.parsed_model().unwrap().unwrap();
        let guide = b.parsed_guide().unwrap().unwrap();
        let exec = JointExecutor::new(&model, &guide, b.observations.clone());
        let spec = JointSpec::new(b.model_proc, b.guide_proc);
        group.bench_function(format!("{name}/coroutine_particle"), |bencher| {
            bencher.iter_batched(
                || Pcg32::seed_from_u64(1),
                |mut rng| exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap(),
                BatchSize::SmallInput,
            )
        });
        if let Some(h) = handwritten_is(name) {
            let obs = b.observations.clone();
            group.bench_function(format!("{name}/handwritten_particle"), |bencher| {
                bencher.iter_batched(
                    || Pcg32::seed_from_u64(1),
                    |mut rng| (h.particle)(&mut rng, &obs),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_table2_inference(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("table2_inference");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    const PARTICLES: usize = 2_000;
    for name in ["ex-1", "branching", "gmm"] {
        let b = benchmark(name).unwrap();
        let model = b.parsed_model().unwrap().unwrap();
        let guide = b.parsed_guide().unwrap().unwrap();
        let exec = JointExecutor::new(&model, &guide, b.observations.clone());
        let spec = JointSpec::new(b.model_proc, b.guide_proc);
        group.bench_function(format!("{name}/coroutine_is"), |bencher| {
            bencher.iter_batched(
                || Pcg32::seed_from_u64(9),
                |mut rng| {
                    ImportanceSampler::new(PARTICLES)
                        .run(&exec, &spec, &mut rng)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
        if let Some(h) = handwritten_is(name) {
            let obs = b.observations.clone();
            group.bench_function(format!("{name}/handwritten_is"), |bencher| {
                bencher.iter_batched(
                    || Pcg32::seed_from_u64(9),
                    |mut rng| handwritten_importance(h.particle, &obs, PARTICLES, &mut rng),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("fig2_posterior");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("importance_sampling_5k", |bencher| {
        bencher.iter(|| ppl_bench::fig2_series(5_000, 28, 42))
    });
    group.finish();
}

fn bench_ablation_scoring_modes(c: &mut Criterion) {
    let mut group = configured(c).benchmark_group("ablation_scoring_modes");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let b = benchmark("ex-1").unwrap();
    let model = b.parsed_model().unwrap().unwrap();
    let guide = b.parsed_guide().unwrap().unwrap();
    let exec = JointExecutor::new(&model, &guide, b.observations.clone());
    let spec = JointSpec::new(b.model_proc, b.guide_proc);
    // Pre-record a latent trace and the observation trace.
    let mut rng = Pcg32::seed_from_u64(3);
    let joint = exec.run(&spec, LatentSource::FromGuide, &mut rng).unwrap();
    let latent = joint.latent.clone();
    let obs_trace: Trace = b.observations.iter().map(|s| Message::ValP(*s)).collect();
    group.bench_function("joint_replay", |bencher| {
        bencher.iter_batched(
            || Pcg32::seed_from_u64(4),
            |mut rng| {
                exec.run(&spec, LatentSource::Replay(&latent), &mut rng)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    let evaluator = Evaluator::new(&model);
    group.bench_function("big_step_rescoring", |bencher| {
        bencher.iter(|| {
            evaluator
                .run_proc(&b.model_proc.into(), &[], &latent, &obs_trace)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_type_inference,
    bench_table2_cg,
    bench_coroutine_overhead,
    bench_table2_inference,
    bench_fig2,
    bench_ablation_scoring_modes
);
criterion_main!(benches);
