//! The paper's running example (Fig. 1 / Fig. 3 / Fig. 5): a model whose
//! *set of latent variables* depends on a branch, with a sound guide.
//! Reproduces the shape of Fig. 2: prior vs posterior density of `@x`
//! conditioned on the observation `@z = 0.8`.
//!
//! Run with `cargo run --example branching_importance`.

use guide_ppl::{Method, Posterior, Session};
use ppl_dist::{Distribution, Sample};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("ex-1")?;
    println!("inferred latent protocol: {}", session.latent_protocol());

    let posterior = session
        .query()
        .observe(vec![Sample::Real(0.8)])
        .seed(88)
        .run(&Method::Importance { particles: 100_000 })?;

    println!("effective sample size: {:.0}", posterior.ess());
    let p_else = posterior
        .probability(&|d| d.samples[0].as_f64() >= 2.0)
        .expect("non-degenerate weights");
    println!("posterior P(x >= 2): {p_else:.3} (prior: 0.406)");

    // Fig. 2: prior vs posterior density of @x on a grid, via the unified
    // summary (its histogram spans the posterior draws).
    let is = posterior.as_importance().expect("importance posterior");
    let hist = is.weighted_histogram(0.0, 7.0, 28, |p| Some(p.samples[0].as_f64()));
    let prior = Distribution::gamma(2.0, 1.0)?;
    println!("\n  x      prior   posterior");
    for (x, dens) in hist.centers().iter().zip(hist.densities()) {
        println!(
            "  {x:5.2}  {:6.3}  {dens:9.3}",
            prior.density(&Sample::Real(*x))
        );
    }
    Ok(())
}
