//! Markov-chain Monte Carlo (§5.2, "MCMC"): Metropolis–Hastings with
//! guide-program proposals.
//!
//! Two proposal styles are provided:
//!
//! * [`IndependenceMh`] — the guide proposes a fresh latent trace at every
//!   step, independent of the current state (forward density `w_fwd = w'_g`,
//!   backward density `w_bwd = w_g`);
//! * [`GuidedMh`] — the paper's custom-proposal style (§2.2): the proposal
//!   guide receives arguments *computed from the current trace* (e.g. the
//!   old `is_outlier` value), so it can propose data-dependent moves.  The
//!   backward density re-scores the old trace under the guide instantiated
//!   with arguments computed from the *new* trace, exactly as in the
//!   operational rule for MH in §5.2.
//!
//! The chain itself is inherently sequential (each proposal conditions on
//! the current state), so MCMC does not use the parallel particle driver;
//! it benefits from the zero-copy core through the borrowed-replay path:
//! re-scoring a proposed trace walks the trace in place instead of copying
//! its messages per proposal.

use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_runtime::{JointExecutor, JointScratch, JointSpec, LatentSource, RuntimeError};
use ppl_semantics::trace::Trace;
use ppl_semantics::value::Value;

/// A posterior sample of the chain together with its model log-density.
#[derive(Debug, Clone)]
pub struct ChainState {
    /// The latent trace.
    pub latent: Trace,
    /// The latent sample values.
    pub samples: Vec<Sample>,
    /// The model's log-density `log w_m` at this trace.
    pub log_model: f64,
}

/// The result of an MCMC run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// The kept states (after burn-in), in chain order.
    pub chain: Vec<ChainState>,
    /// Fraction of proposals accepted.
    pub acceptance_rate: f64,
}

impl McmcResult {
    /// Posterior mean of a function of the chain states.
    pub fn posterior_expectation<F>(&self, f: F) -> Option<f64>
    where
        F: Fn(&ChainState) -> Option<f64>,
    {
        crate::posterior::weighted_expectation(self.chain.iter().map(|s| (f(s), 1.0)))
    }

    /// Posterior mean of the `index`-th latent sample.
    pub fn posterior_mean_of_sample(&self, index: usize) -> Option<f64> {
        self.posterior_expectation(|s| s.samples.get(index).map(|v| v.as_f64()))
    }
}

/// Independence Metropolis–Hastings: the guide is used as an independent
/// proposal distribution.
#[derive(Debug, Clone)]
pub struct IndependenceMh {
    /// Total iterations (including burn-in).
    pub iterations: usize,
    /// Number of initial states to discard.
    pub burn_in: usize,
}

impl IndependenceMh {
    /// Creates a sampler.
    pub fn new(iterations: usize, burn_in: usize) -> Self {
        IndependenceMh {
            iterations,
            burn_in,
        }
    }

    /// Runs the chain.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from the joint executor.
    pub fn run(
        &self,
        executor: &JointExecutor,
        spec: &JointSpec,
        rng: &mut Pcg32,
    ) -> Result<McmcResult, RuntimeError> {
        crate::counters::record_joint_executions(self.iterations);
        let mut chain = Vec::new();
        let mut accepted = 0usize;
        let mut proposals = 0usize;
        // One scratch pool for the whole chain: the coroutine stacks and
        // the trace buffer of every rejected (or superseded) proposal are
        // reused, so a proposal iteration allocates only when a state is
        // actually recorded into the chain.
        let mut scratch = JointScratch::new();

        // Initialise from the guide (retry until a positive-weight state).
        let mut current = loop {
            let joint =
                executor.run_with_scratch(spec, LatentSource::FromGuide, rng, &mut scratch)?;
            if joint.log_model.is_finite() {
                break joint;
            }
            scratch.recycle(joint.latent);
        };

        for it in 0..self.iterations {
            // Cooperative cancellation once per proposal, so a chain never
            // outlives its request's deadline by more than one iteration.
            executor.cancel_token().check()?;
            let proposal =
                executor.run_with_scratch(spec, LatentSource::FromGuide, rng, &mut scratch)?;
            proposals += 1;
            // Acceptance ratio for an independence sampler:
            //   α = min(1, (w'_m / w'_g) / (w_m / w_g)).
            let log_alpha =
                (proposal.log_model - proposal.log_guide) - (current.log_model - current.log_guide);
            if log_alpha >= 0.0 || rng.next_f64().ln() < log_alpha {
                scratch.recycle(std::mem::replace(&mut current, proposal).latent);
                accepted += 1;
            } else {
                scratch.recycle(proposal.latent);
            }
            if it >= self.burn_in {
                chain.push(ChainState {
                    samples: current.latent_samples(),
                    log_model: current.log_model,
                    latent: current.latent.clone(),
                });
            }
        }
        // Flush the per-proposal cancellation polls once per run.
        ppl_runtime::stats::record_cancel_checks(proposals as u64);
        Ok(McmcResult {
            chain,
            acceptance_rate: accepted as f64 / proposals.max(1) as f64,
        })
    }
}

/// A function computing the proposal guide's arguments from the current
/// latent trace (e.g. extracting the old `is_outlier` value).
pub type ProposalArgsFn = dyn Fn(&Trace) -> Vec<Value>;

/// Metropolis–Hastings with a data-dependent guide proposal.
pub struct GuidedMh<'f> {
    /// Total iterations (including burn-in).
    pub iterations: usize,
    /// Number of initial states to discard.
    pub burn_in: usize,
    /// Computes the guide arguments from the current latent trace.
    pub proposal_args: &'f ProposalArgsFn,
}

impl std::fmt::Debug for GuidedMh<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuidedMh")
            .field("iterations", &self.iterations)
            .field("burn_in", &self.burn_in)
            .finish_non_exhaustive()
    }
}

impl<'f> GuidedMh<'f> {
    /// Creates a sampler with a data-dependent proposal.
    pub fn new(iterations: usize, burn_in: usize, proposal_args: &'f ProposalArgsFn) -> Self {
        GuidedMh {
            iterations,
            burn_in,
            proposal_args,
        }
    }

    /// Runs the chain.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from the joint executor.
    pub fn run(
        &self,
        executor: &JointExecutor,
        spec: &JointSpec,
        rng: &mut Pcg32,
    ) -> Result<McmcResult, RuntimeError> {
        crate::counters::record_joint_executions(self.iterations);
        let mut chain = Vec::new();
        let mut accepted = 0usize;
        let mut proposals = 0usize;
        let mut scratch = JointScratch::new();
        // One spec serves the whole chain: it is cloned once here and its
        // guide arguments are overwritten in place per move (the forward
        // and backward proposals of one iteration differ only in those
        // arguments), instead of rebuilding the spec — model arguments,
        // procedure names, and channel names included — three times per
        // iteration.
        let mut run_spec = spec.clone();

        // Initialise with arguments computed from an empty trace.
        run_spec.guide_args = (self.proposal_args)(&Trace::new());
        let mut current = loop {
            let joint =
                executor.run_with_scratch(&run_spec, LatentSource::FromGuide, rng, &mut scratch)?;
            if joint.log_model.is_finite() {
                break joint;
            }
            scratch.recycle(joint.latent);
        };

        for it in 0..self.iterations {
            // Cooperative cancellation once per proposal (see
            // [`IndependenceMh::run`]).
            executor.cancel_token().check()?;
            proposals += 1;
            // Forward move: propose σ'_ℓ ~ guide(args(σ_ℓ)).
            run_spec.guide_args = (self.proposal_args)(&current.latent);
            let proposal =
                executor.run_with_scratch(&run_spec, LatentSource::FromGuide, rng, &mut scratch)?;
            let log_fwd = proposal.log_guide;
            // Backward density: score σ_ℓ under guide(args(σ'_ℓ)).
            run_spec.guide_args = (self.proposal_args)(&proposal.latent);
            let backward = executor.run_with_scratch(
                &run_spec,
                LatentSource::Replay(&current.latent),
                rng,
                &mut scratch,
            )?;
            let log_bwd = backward.log_guide;
            scratch.recycle(backward.latent);

            let log_alpha = (proposal.log_model + log_bwd) - (current.log_model + log_fwd);
            if log_alpha >= 0.0 || rng.next_f64().ln() < log_alpha {
                scratch.recycle(std::mem::replace(&mut current, proposal).latent);
                accepted += 1;
            } else {
                scratch.recycle(proposal.latent);
            }
            if it >= self.burn_in {
                chain.push(ChainState {
                    samples: current.latent_samples(),
                    log_model: current.log_model,
                    latent: current.latent.clone(),
                });
            }
        }
        // Flush the per-proposal cancellation polls once per run.
        ppl_runtime::stats::record_cancel_checks(proposals as u64);
        Ok(McmcResult {
            chain,
            acceptance_rate: accepted as f64 / proposals.max(1) as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn normal_normal() -> (ppl_syntax::Program, ppl_syntax::Program) {
        let model = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Normal(0.0, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              return x
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc Guide() provide latent {
              let x <- sample send latent (Normal(0.5, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        (model, guide)
    }

    #[test]
    fn independence_mh_recovers_posterior_mean() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(31);
        let result = IndependenceMh::new(20_000, 2_000)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        let mean = result.posterior_mean_of_sample(0).unwrap();
        assert!((mean - 0.5).abs() < 0.05, "posterior mean {mean}");
        assert!(result.acceptance_rate > 0.3, "{}", result.acceptance_rate);
        assert_eq!(result.chain.len(), 18_000);
    }

    #[test]
    fn guided_mh_outlier_example() {
        // §2.2 outlier model: prob_outlier ~ Unif, is_outlier ~ Ber(prob).
        // Observation strongly suggests an outlier.
        let model = parse_program(
            r#"
            proc OutlierModel() consume latent provide obs {
              let prob_outlier <- sample recv latent (Unif);
              let is_outlier <- sample recv latent (Ber(prob_outlier));
              let _ <- sample send obs (Normal(if is_outlier then 10.0 else 0.0, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        // The proposal branches on the old is_outlier value (passed as an
        // argument), proposing its negation most of the time.
        let guide = parse_program(
            r#"
            proc OutlierGuide(old_is_outlier : bool) provide latent {
              let prob_outlier <- sample send latent (Beta(2.0, 2.0));
              let is_outlier <- sample send latent (Ber(if old_is_outlier then 0.2 else 0.8));
              return ()
            }
        "#,
        )
        .unwrap();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(9.5)]);
        let spec = JointSpec::new("OutlierModel", "OutlierGuide");
        let extract_old = |trace: &Trace| -> Vec<Value> {
            let old = trace
                .provider_samples()
                .get(1)
                .and_then(|s| s.as_bool())
                .unwrap_or(false);
            vec![Value::Bool(old)]
        };
        let mut rng = Pcg32::seed_from_u64(4);
        let result = GuidedMh::new(6_000, 1_000, &extract_old)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        // Posterior probability that is_outlier = true should be near 1.
        let p_outlier = result
            .posterior_expectation(|s| {
                s.samples
                    .get(1)
                    .and_then(|v| v.as_bool())
                    .map(|b| if b { 1.0 } else { 0.0 })
            })
            .unwrap();
        assert!(
            p_outlier > 0.95,
            "posterior outlier probability {p_outlier}"
        );
        assert!(result.acceptance_rate > 0.05);
    }

    #[test]
    fn chain_states_expose_model_density() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(2);
        let result = IndependenceMh::new(200, 0)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        assert!(result.chain.iter().all(|s| s.log_model.is_finite()));
        assert!(result.chain.iter().all(|s| s.samples.len() == 1));
        assert!(result.posterior_expectation(|_| None).is_none());
    }
}
