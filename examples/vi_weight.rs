//! Variational inference on the "unreliable weighing" model: the guide is a
//! parameterised normal whose parameters are fitted by maximising the ELBO.
//! Guide types guarantee the KL divergence in the objective is well-defined
//! (Lemma C.3 of the paper).
//!
//! Run with `cargo run --example vi_weight --release`.

use guide_ppl::inference::{ParamSpec, ViConfig};
use guide_ppl::Session;
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("weight")?;
    println!("latent protocol: {}", session.latent_protocol());

    let observations = vec![Sample::Real(9.0), Sample::Real(9.0)];
    let params = [
        ParamSpec::unconstrained("mu", 2.0),
        ParamSpec::positive("sigma", 1.0),
    ];
    let config = ViConfig {
        iterations: 300,
        samples_per_iteration: 10,
        learning_rate: 0.08,
        fd_epsilon: 1e-4,
        ..ViConfig::default()
    };
    let mut rng = Pcg32::seed_from_u64(11);
    let result = session.variational_inference(observations, &params, config, &mut rng)?;

    println!(
        "learned mu    = {:.3} (analytic posterior mean  ≈ 7.463)",
        result.param("mu").unwrap()
    );
    println!(
        "learned sigma = {:.3} (analytic posterior stdev ≈ 0.469)",
        result.param("sigma").unwrap()
    );
    println!("final ELBO    = {:.3}", result.final_elbo());
    println!(
        "first ELBO    = {:.3}",
        result.elbo_trace.first().copied().unwrap_or(f64::NAN)
    );
    Ok(())
}
