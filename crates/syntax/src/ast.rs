//! Abstract syntax of the core calculus (Fig. 7 of the paper).
//!
//! The calculus is modal: *expressions* ([`Expr`]) describe pure
//! deterministic computation (a simply-typed lambda calculus over scalar
//! types and primitive-distribution constructors), while *commands*
//! ([`Cmd`]) describe probabilistic computation with coroutine
//! communication primitives (`sample`, branching, procedure calls).

use crate::intern::{intern, Sym};
use std::fmt;

/// An identifier (program variable, procedure name, or channel name).
///
/// Identifiers are interned symbols (see [`crate::intern`]): a `Copy`
/// `u32` handle into a process-wide string table.  Cloning is a register
/// copy, equality and hashing are integer operations, and the text is
/// recovered on demand via [`Ident::as_str`] — so runtime structures
/// (environments, coroutine suspensions, compiled programs) carry and
/// compare identifiers without touching a heap string.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ident(Sym);

impl Ident {
    /// Creates (interning if necessary) an identifier.
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(intern(name.as_ref()))
    }

    /// The identifier text.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The interned symbol id.
    pub fn sym(&self) -> Sym {
        self.0
    }

    /// Wraps an already-interned symbol.
    pub fn from_sym(sym: Sym) -> Self {
        Ident(sym)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({:?})", self.as_str())
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Ordering is lexicographic (by text, not by interning order) so that any
// sorted rendering of identifiers stays alphabetical.
impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

/// A channel name (e.g. `latent`, `obs`).
pub type ChannelName = Ident;

/// Basic (scalar and functional) types `τ` of the calculus.
///
/// The refinement structure of the scalar types is what lets the type of a
/// distribution characterise its support exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// `𝟙` — the unit type.
    Unit,
    /// `𝟚` — Booleans.
    Bool,
    /// `ℝ(0,1)` — the open unit interval.
    UnitInterval,
    /// `ℝ+` — positive reals.
    PosReal,
    /// `ℝ` — reals.
    Real,
    /// `ℕ_n` — the integer ring `{0, …, n-1}`.
    FinNat(usize),
    /// `ℕ` — natural numbers.
    Nat,
    /// `τ₁ → τ₂` — functions.
    Arrow(Box<BaseType>, Box<BaseType>),
    /// `dist(τ)` — primitive distributions over `τ`.
    Dist(Box<BaseType>),
}

impl BaseType {
    /// Convenience constructor for arrow types.
    pub fn arrow(from: BaseType, to: BaseType) -> Self {
        BaseType::Arrow(Box::new(from), Box::new(to))
    }

    /// Convenience constructor for distribution types.
    pub fn dist(carrier: BaseType) -> Self {
        BaseType::Dist(Box::new(carrier))
    }

    /// True for the real-valued scalar refinements (`ℝ(0,1)`, `ℝ+`, `ℝ`).
    pub fn is_real_like(&self) -> bool {
        matches!(
            self,
            BaseType::UnitInterval | BaseType::PosReal | BaseType::Real
        )
    }

    /// True for the natural-number scalar refinements (`ℕ_n`, `ℕ`).
    pub fn is_nat_like(&self) -> bool {
        matches!(self, BaseType::FinNat(_) | BaseType::Nat)
    }

    /// True for scalar (non-arrow, non-dist) types.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, BaseType::Arrow(..) | BaseType::Dist(..))
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Unit => write!(f, "unit"),
            BaseType::Bool => write!(f, "bool"),
            BaseType::UnitInterval => write!(f, "ureal"),
            BaseType::PosReal => write!(f, "preal"),
            BaseType::Real => write!(f, "real"),
            BaseType::FinNat(n) => write!(f, "nat[{n}]"),
            BaseType::Nat => write!(f, "nat"),
            BaseType::Arrow(a, b) => write!(f, "({a} -> {b})"),
            BaseType::Dist(t) => write!(f, "dist({t})"),
        }
    }
}

/// Binary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equality.
    Eq,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// True for comparison operators (result type `𝟚`).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq
        )
    }

    /// True for Boolean connectives.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Unary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Exponential `e^x` (maps reals to positive reals).
    Exp,
    /// Natural logarithm (maps positive reals to reals).
    Ln,
    /// Square root (maps positive reals to positive reals).
    Sqrt,
    /// Coercion of a natural number to a real number.
    ToReal,
}

impl UnOp {
    /// The surface-syntax spelling of the operator.
    pub fn name(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Exp => "exp",
            UnOp::Ln => "ln",
            UnOp::Sqrt => "sqrt",
            UnOp::ToReal => "real",
        }
    }
}

/// Primitive-distribution expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum DistExpr {
    /// `Ber(e)` — Bernoulli.
    Bernoulli(Box<Expr>),
    /// `Unif` — uniform on the unit interval.
    Uniform,
    /// `Beta(e₁; e₂)`.
    Beta(Box<Expr>, Box<Expr>),
    /// `Gamma(e₁; e₂)` (shape; rate).
    Gamma(Box<Expr>, Box<Expr>),
    /// `Normal(e₁; e₂)` (mean; standard deviation).
    Normal(Box<Expr>, Box<Expr>),
    /// `Cat(e₁, …, eₙ)` — categorical over `{0, …, n-1}`.
    Categorical(Vec<Expr>),
    /// `Geo(e)` — geometric.
    Geometric(Box<Expr>),
    /// `Pois(e)` — Poisson.
    Poisson(Box<Expr>),
}

impl DistExpr {
    /// The constructor name as written in the paper's syntax.
    pub fn constructor(&self) -> &'static str {
        match self {
            DistExpr::Bernoulli(_) => "Ber",
            DistExpr::Uniform => "Unif",
            DistExpr::Beta(..) => "Beta",
            DistExpr::Gamma(..) => "Gamma",
            DistExpr::Normal(..) => "Normal",
            DistExpr::Categorical(_) => "Cat",
            DistExpr::Geometric(_) => "Geo",
            DistExpr::Poisson(_) => "Pois",
        }
    }

    /// Parameter sub-expressions in order.
    pub fn args(&self) -> Vec<&Expr> {
        match self {
            DistExpr::Uniform => vec![],
            DistExpr::Bernoulli(e) | DistExpr::Geometric(e) | DistExpr::Poisson(e) => vec![e],
            DistExpr::Beta(a, b) | DistExpr::Gamma(a, b) | DistExpr::Normal(a, b) => {
                vec![a, b]
            }
            DistExpr::Categorical(es) => es.iter().collect(),
        }
    }
}

/// Pure expressions (the deterministic fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A program variable.
    Var(Ident),
    /// The unit value `triv`.
    Triv,
    /// A Boolean literal.
    Bool(bool),
    /// A real literal.
    Real(f64),
    /// A natural-number literal.
    Nat(u64),
    /// A pure conditional `if(e; e₁; e₂)`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    UnOp(UnOp, Box<Expr>),
    /// A lambda abstraction `λ(x : τ. e)`.
    Lam(Ident, BaseType, Box<Expr>),
    /// Application `app(e₁; e₂)`.
    App(Box<Expr>, Box<Expr>),
    /// Let binding `let(e₁; x.e₂)`.
    Let(Ident, Box<Expr>, Box<Expr>),
    /// A primitive-distribution constructor.
    Dist(DistExpr),
}

impl Expr {
    /// Variable reference helper.
    pub fn var(name: impl Into<Ident>) -> Self {
        Expr::Var(name.into())
    }

    /// Binary-operation helper.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::BinOp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Unary-operation helper.
    pub fn unop(op: UnOp, e: Expr) -> Self {
        Expr::UnOp(op, Box::new(e))
    }

    /// Free variables of the expression.
    pub fn free_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<Ident>, out: &mut Vec<Ident>) {
        match self {
            Expr::Var(x) => {
                if !bound.contains(x) && !out.contains(x) {
                    out.push(*x);
                }
            }
            Expr::Triv | Expr::Bool(_) | Expr::Real(_) | Expr::Nat(_) => {}
            Expr::If(c, a, b) => {
                c.collect_free_vars(bound, out);
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Expr::BinOp(_, a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Expr::UnOp(_, e) => e.collect_free_vars(bound, out),
            Expr::Lam(x, _, body) => {
                bound.push(*x);
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::App(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Expr::Let(x, e1, e2) => {
                e1.collect_free_vars(bound, out);
                bound.push(*x);
                e2.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::Dist(d) => {
                for a in d.args() {
                    a.collect_free_vars(bound, out);
                }
            }
        }
    }
}

/// The direction of a communication command relative to the executing
/// coroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// `sd` — this coroutine sends on the channel.
    Send,
    /// `rv` — this coroutine receives from the channel.
    Recv,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Send => write!(f, "send"),
            Dir::Recv => write!(f, "recv"),
        }
    }
}

/// Monadic commands (the probabilistic fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// `ret(e)` — return a pure value.
    Ret(Expr),
    /// `bnd(m₁; x.m₂)` — sequential composition.
    Bind {
        /// The bound variable.
        var: Ident,
        /// The first command.
        first: Box<Cmd>,
        /// The continuation command.
        rest: Box<Cmd>,
    },
    /// `call(f; e₁, …, eₙ)` — procedure call.
    Call {
        /// Procedure name.
        proc: Ident,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `sample_dir{chan}(e)` — sample communication on a channel.
    Sample {
        /// Direction relative to this coroutine.
        dir: Dir,
        /// The channel.
        chan: ChannelName,
        /// The distribution expression.
        dist: Expr,
    },
    /// `cond_dir{chan}(e?; m₁; m₂)` — branch-selection communication.
    Branch {
        /// Direction relative to this coroutine.
        dir: Dir,
        /// The channel.
        chan: ChannelName,
        /// The branch predicate (present only in the `send` direction; the
        /// receive direction is written `★` in the paper).
        pred: Option<Expr>,
        /// The then-branch.
        then_cmd: Box<Cmd>,
        /// The else-branch.
        else_cmd: Box<Cmd>,
    },
}

impl Cmd {
    /// Sequencing helper `bnd(first; var. rest)`.
    pub fn bind(var: impl Into<Ident>, first: Cmd, rest: Cmd) -> Self {
        Cmd::Bind {
            var: var.into(),
            first: Box::new(first),
            rest: Box::new(rest),
        }
    }

    /// Number of AST nodes in this command (used by LOC/size reports).
    pub fn size(&self) -> usize {
        match self {
            Cmd::Ret(_) | Cmd::Call { .. } | Cmd::Sample { .. } => 1,
            Cmd::Bind { first, rest, .. } => 1 + first.size() + rest.size(),
            Cmd::Branch {
                then_cmd, else_cmd, ..
            } => 1 + then_cmd.size() + else_cmd.size(),
        }
    }

    /// The set of channels this command communicates on.
    pub fn channels(&self) -> Vec<ChannelName> {
        let mut out = Vec::new();
        self.collect_channels(&mut out);
        out
    }

    fn collect_channels(&self, out: &mut Vec<ChannelName>) {
        match self {
            Cmd::Ret(_) | Cmd::Call { .. } => {}
            Cmd::Bind { first, rest, .. } => {
                first.collect_channels(out);
                rest.collect_channels(out);
            }
            Cmd::Sample { chan, .. } => {
                if !out.contains(chan) {
                    out.push(*chan);
                }
            }
            Cmd::Branch {
                chan,
                then_cmd,
                else_cmd,
                ..
            } => {
                if !out.contains(chan) {
                    out.push(*chan);
                }
                then_cmd.collect_channels(out);
                else_cmd.collect_channels(out);
            }
        }
    }
}

/// A procedure declaration
/// `fix{a; b}(f. x̄. m)` / `proc f(x̄) consume a provide b = m`.
#[derive(Debug, Clone)]
pub struct Proc {
    /// The procedure name.
    pub name: Ident,
    /// The typed parameters.
    pub params: Vec<(Ident, BaseType)>,
    /// The declared result type.
    pub ret_ty: BaseType,
    /// The channel this procedure consumes, if any.
    pub consumes: Option<ChannelName>,
    /// The channel this procedure provides, if any.
    pub provides: Option<ChannelName>,
    /// The procedure body.
    pub body: Cmd,
    /// 1-based (line, column) of the `proc` keyword in the source text,
    /// or `(0, 0)` for procedures constructed programmatically.
    pub pos: (usize, usize),
}

impl Proc {
    /// All channels mentioned in the header.
    pub fn declared_channels(&self) -> Vec<&ChannelName> {
        self.consumes.iter().chain(self.provides.iter()).collect()
    }
}

/// Source positions are diagnostics metadata, not syntax: two procedures
/// are equal when their declarations coincide, wherever they were written.
/// (Pretty-print → reparse roundtrips rely on this.)
impl PartialEq for Proc {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.ret_ty == other.ret_ty
            && self.consumes == other.consumes
            && self.provides == other.provides
            && self.body == other.body
    }
}

/// A program: a collection of (mutually recursive) procedures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The procedures in declaration order.
    pub procs: Vec<Proc>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program { procs: Vec::new() }
    }

    /// Adds a procedure, returning `self` for chaining.
    pub fn with_proc(mut self, p: Proc) -> Self {
        self.procs.push(p);
        self
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &Ident) -> Option<&Proc> {
        self.procs.iter().find(|p| &p.name == name)
    }

    /// Total number of command nodes across all procedure bodies.
    ///
    /// Used as a compile-fuel measure when admitting untrusted programs:
    /// type checking, trace-type analysis, and compilation are all linear
    /// in this count.
    pub fn size(&self) -> usize {
        self.procs.iter().map(|p| p.body.size()).sum()
    }

    /// Looks up a procedure by string name.
    pub fn proc_named(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name.as_str() == name)
    }

    /// Iterates over procedure names.
    pub fn proc_names(&self) -> impl Iterator<Item = &Ident> {
        self.procs.iter().map(|p| &p.name)
    }

    /// Merges the procedures of `other` into this program (used to put a
    /// model and its guide in one procedure table).
    pub fn merged_with(mut self, other: Program) -> Program {
        self.procs.extend(other.procs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_display_and_conversion() {
        let x: Ident = "latent".into();
        assert_eq!(x.as_str(), "latent");
        assert_eq!(x.to_string(), "latent");
        assert_eq!(Ident::from(String::from("y")).as_str(), "y");
    }

    #[test]
    fn base_type_classification() {
        assert!(BaseType::UnitInterval.is_real_like());
        assert!(BaseType::PosReal.is_real_like());
        assert!(!BaseType::Nat.is_real_like());
        assert!(BaseType::FinNat(4).is_nat_like());
        assert!(BaseType::Unit.is_scalar());
        assert!(!BaseType::arrow(BaseType::Real, BaseType::Real).is_scalar());
        assert!(!BaseType::dist(BaseType::Real).is_scalar());
    }

    #[test]
    fn base_type_display() {
        assert_eq!(
            BaseType::dist(BaseType::UnitInterval).to_string(),
            "dist(ureal)"
        );
        assert_eq!(
            BaseType::arrow(BaseType::Nat, BaseType::Bool).to_string(),
            "(nat -> bool)"
        );
        assert_eq!(BaseType::FinNat(3).to_string(), "nat[3]");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Mul.is_arithmetic());
        assert_eq!(BinOp::Le.symbol(), "<=");
    }

    #[test]
    fn free_vars_respect_binders() {
        // let x = y in (λ z. x + z) w
        let e = Expr::Let(
            "x".into(),
            Box::new(Expr::var("y")),
            Box::new(Expr::App(
                Box::new(Expr::Lam(
                    "z".into(),
                    BaseType::Real,
                    Box::new(Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("z"))),
                )),
                Box::new(Expr::var("w")),
            )),
        );
        let fv = e.free_vars();
        assert!(fv.contains(&"y".into()));
        assert!(fv.contains(&"w".into()));
        assert!(!fv.contains(&"x".into()));
        assert!(!fv.contains(&"z".into()));
    }

    #[test]
    fn dist_expr_args_and_constructor() {
        let d = DistExpr::Normal(Box::new(Expr::Real(0.0)), Box::new(Expr::Real(1.0)));
        assert_eq!(d.constructor(), "Normal");
        assert_eq!(d.args().len(), 2);
        assert_eq!(DistExpr::Uniform.args().len(), 0);
        let c = DistExpr::Categorical(vec![Expr::Real(1.0), Expr::Real(2.0), Expr::Real(3.0)]);
        assert_eq!(c.args().len(), 3);
    }

    #[test]
    fn cmd_channels_and_size() {
        let m = Cmd::bind(
            "v",
            Cmd::Sample {
                dir: Dir::Recv,
                chan: "latent".into(),
                dist: Expr::Dist(DistExpr::Uniform),
            },
            Cmd::Branch {
                dir: Dir::Send,
                chan: "latent".into(),
                pred: Some(Expr::binop(BinOp::Lt, Expr::var("v"), Expr::Real(0.5))),
                then_cmd: Box::new(Cmd::Ret(Expr::Triv)),
                else_cmd: Box::new(Cmd::Sample {
                    dir: Dir::Send,
                    chan: "obs".into(),
                    dist: Expr::Dist(DistExpr::Uniform),
                }),
            },
        );
        let chans = m.channels();
        assert_eq!(chans.len(), 2);
        assert!(chans.contains(&"latent".into()));
        assert!(chans.contains(&"obs".into()));
        assert_eq!(m.size(), 5);
    }

    #[test]
    fn program_lookup_and_merge() {
        let p = Proc {
            name: "Model".into(),
            params: vec![],
            ret_ty: BaseType::Unit,
            consumes: Some("latent".into()),
            provides: Some("obs".into()),
            body: Cmd::Ret(Expr::Triv),
            pos: (0, 0),
        };
        let q = Proc {
            name: "Guide".into(),
            params: vec![("theta".into(), BaseType::PosReal)],
            ret_ty: BaseType::Unit,
            consumes: None,
            provides: Some("latent".into()),
            body: Cmd::Ret(Expr::Triv),
            pos: (0, 0),
        };
        let prog = Program::new().with_proc(p.clone());
        let both = prog.merged_with(Program::new().with_proc(q.clone()));
        assert_eq!(both.procs.len(), 2);
        assert_eq!(both.proc_named("Model"), Some(&p));
        assert_eq!(both.proc(&"Guide".into()), Some(&q));
        assert!(both.proc_named("Nope").is_none());
        assert_eq!(p.declared_channels().len(), 2);
        assert_eq!(q.declared_channels().len(), 1);
        assert_eq!(both.proc_names().count(), 2);
    }
}
