//! Resumable coroutines for model and guide programs.
//!
//! The paper implements models and guides as coroutines (greenlets in the
//! compiled Pyro code) that suspend whenever they communicate on a channel.
//! Here a [`Coroutine`] is a defunctionalised interpreter: an explicit stack
//! of continuation frames plus the command currently being executed, so the
//! driver can pause it at every channel operation and resume it with the
//! value produced by the other coroutine.

use ppl_dist::{Distribution, Sample};
use ppl_semantics::eval::{eval_expr, EvalError};
use ppl_semantics::value::{Env, Value};
use ppl_syntax::ast::{ChannelName, Cmd, Dir, Ident, Proc, Program};
use std::fmt;

/// A channel operation at which a coroutine is suspended, awaiting the
/// driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Suspend {
    /// The coroutine executes `sample_sd{chan}(d)`: it is about to *send* a
    /// sample drawn from `dist`.  The driver supplies the concrete value
    /// (either freshly drawn or replayed) via [`Resume::Sample`].
    SampleSend {
        /// The channel being written.
        chan: ChannelName,
        /// The distribution at this site.
        dist: Distribution,
    },
    /// The coroutine executes `sample_rv{chan}(d)`: it awaits a sample from
    /// the peer and will score it against `dist`.
    SampleRecv {
        /// The channel being read.
        chan: ChannelName,
        /// The distribution used for scoring.
        dist: Distribution,
    },
    /// The coroutine executes `cond_sd{chan}(e; …)`: it evaluated the branch
    /// predicate and sends the selection to the peer.  Resume with
    /// [`Resume::Ack`].
    BranchSend {
        /// The channel carrying the selection.
        chan: ChannelName,
        /// The selection the coroutine computed.
        selection: bool,
    },
    /// The coroutine executes `cond_rv{chan}(…)`: it awaits a branch
    /// selection from the peer.  Resume with [`Resume::Branch`].
    BranchRecv {
        /// The channel carrying the selection.
        chan: ChannelName,
    },
    /// The coroutine is about to call a procedure that uses `chan`;
    /// corresponds to the `fold` marker of the operational semantics.
    /// Resume with [`Resume::Ack`].
    CallMarker {
        /// The channel whose protocol folds here.
        chan: ChannelName,
    },
}

impl Suspend {
    /// The channel this suspension concerns.
    pub fn channel(&self) -> &ChannelName {
        match self {
            Suspend::SampleSend { chan, .. }
            | Suspend::SampleRecv { chan, .. }
            | Suspend::BranchSend { chan, .. }
            | Suspend::BranchRecv { chan }
            | Suspend::CallMarker { chan } => chan,
        }
    }
}

/// The value with which a suspended coroutine is resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resume {
    /// The concrete sample for a [`Suspend::SampleSend`] or
    /// [`Suspend::SampleRecv`].
    Sample(Sample),
    /// The selection for a [`Suspend::BranchRecv`].
    Branch(bool),
    /// Acknowledgement for [`Suspend::BranchSend`] and
    /// [`Suspend::CallMarker`].
    Ack,
}

/// The observable state of a coroutine after a step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Suspended at a channel operation.
    Suspended(Suspend),
    /// Finished with a value; `log_weight` is the coroutine's accumulated
    /// log-density.
    Done {
        /// The coroutine's return value.
        value: Value,
        /// The accumulated log-weight.
        log_weight: f64,
    },
}

/// Errors raised by a coroutine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoroutineError {
    /// An embedded expression failed to evaluate.
    Eval(EvalError),
    /// The coroutine was resumed with the wrong kind of [`Resume`] value, or
    /// resumed/stepped while in an unexpected state.
    Protocol(String),
    /// Reference to an unknown procedure.
    UnknownProc(String),
}

impl fmt::Display for CoroutineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoroutineError::Eval(e) => write!(f, "{e}"),
            CoroutineError::Protocol(m) => write!(f, "coroutine protocol error: {m}"),
            CoroutineError::UnknownProc(m) => write!(f, "unknown procedure: {m}"),
        }
    }
}

impl std::error::Error for CoroutineError {}

impl From<EvalError> for CoroutineError {
    fn from(e: EvalError) -> Self {
        CoroutineError::Eval(e)
    }
}

/// The channels declared by the procedure currently executing.
#[derive(Debug, Clone, PartialEq)]
struct ProcChannels {
    consumes: Option<ChannelName>,
    provides: Option<ChannelName>,
}

impl ProcChannels {
    fn of(p: &Proc) -> Self {
        ProcChannels {
            consumes: p.consumes.clone(),
            provides: p.provides.clone(),
        }
    }
}

/// A continuation frame.
#[derive(Debug, Clone)]
enum Frame {
    /// After the current command produces a value, bind it and run `rest`.
    Bind { var: Ident, rest: Cmd, env: Env },
    /// After the callee body finishes, restore the caller's channel view.
    Return { channels: ProcChannels },
}

/// What the coroutine is waiting for while suspended.
#[derive(Debug, Clone)]
enum Pending {
    Sample {
        dist: Distribution,
    },
    BranchRecv {
        then_cmd: Cmd,
        else_cmd: Cmd,
        env: Env,
    },
    BranchSend {
        selection: bool,
        then_cmd: Cmd,
        else_cmd: Cmd,
        env: Env,
    },
    CallAck {
        remaining_marks: Vec<ChannelName>,
        callee: Ident,
        args: Vec<Value>,
    },
}

/// Internal control state.
#[derive(Debug, Clone)]
enum Control {
    Run { cmd: Cmd, env: Env },
    Return { value: Value },
    AwaitResume(Pending),
    Finished,
}

/// A resumable model or guide coroutine.
#[derive(Debug, Clone)]
pub struct Coroutine<'p> {
    program: &'p Program,
    frames: Vec<Frame>,
    control: Control,
    channels: ProcChannels,
    log_weight: f64,
    steps: u64,
}

impl<'p> Coroutine<'p> {
    /// Creates (but does not start) a coroutine running `proc_name` with the
    /// given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::UnknownProc`] if the procedure does not
    /// exist and [`CoroutineError::Protocol`] on an argument-count mismatch.
    pub fn spawn(
        program: &'p Program,
        proc_name: &Ident,
        args: Vec<Value>,
    ) -> Result<Self, CoroutineError> {
        let proc = program
            .proc(proc_name)
            .ok_or_else(|| CoroutineError::UnknownProc(proc_name.to_string()))?;
        if proc.params.len() != args.len() {
            return Err(CoroutineError::Protocol(format!(
                "procedure '{proc_name}' expects {} argument(s), got {}",
                proc.params.len(),
                args.len()
            )));
        }
        let env = Env::from_bindings(proc.params.iter().map(|(x, _)| x.clone()).zip(args));
        Ok(Coroutine {
            program,
            frames: Vec::new(),
            control: Control::Run {
                cmd: proc.body.clone(),
                env,
            },
            channels: ProcChannels::of(proc),
            log_weight: 0.0,
            steps: 0,
        })
    }

    /// The coroutine's accumulated log-weight so far.
    pub fn log_weight(&self) -> f64 {
        self.log_weight
    }

    /// The number of interpreter steps taken so far (used by the overhead
    /// ablation benchmark).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Runs the coroutine until it suspends or finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if called while the coroutine is
    /// awaiting a [`Resume`] value or already finished.
    pub fn start(&mut self) -> Result<Step, CoroutineError> {
        match self.control {
            Control::Run { .. } => self.drive(),
            _ => Err(CoroutineError::Protocol(
                "start called on a coroutine that is not at its entry point".into(),
            )),
        }
    }

    /// Resumes a suspended coroutine with the value it was waiting for and
    /// runs it until the next suspension (or completion).
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if the coroutine is not
    /// suspended or `resume` has the wrong shape for the pending operation.
    pub fn resume(&mut self, resume: Resume) -> Result<Step, CoroutineError> {
        let pending = match std::mem::replace(&mut self.control, Control::Finished) {
            Control::AwaitResume(p) => p,
            other => {
                self.control = other;
                return Err(CoroutineError::Protocol(
                    "resume called on a coroutine that is not suspended".into(),
                ));
            }
        };
        match (pending, resume) {
            (Pending::Sample { dist }, Resume::Sample(sample)) => {
                // Score the sample; values outside the support zero out the
                // weight (the coroutine keeps running so the joint executor
                // can finish and report the zero-weight particle).
                self.log_weight += dist.log_density(&sample);
                self.control = Control::Return {
                    value: Value::from_sample(sample),
                };
            }
            (
                Pending::BranchRecv {
                    then_cmd,
                    else_cmd,
                    env,
                },
                Resume::Branch(sel),
            ) => {
                self.control = Control::Run {
                    cmd: if sel { then_cmd } else { else_cmd },
                    env,
                };
            }
            (
                Pending::BranchSend {
                    selection,
                    then_cmd,
                    else_cmd,
                    env,
                },
                Resume::Ack,
            ) => {
                self.control = Control::Run {
                    cmd: if selection { then_cmd } else { else_cmd },
                    env,
                };
            }
            (
                Pending::CallAck {
                    remaining_marks,
                    callee,
                    args,
                },
                Resume::Ack,
            ) => {
                if let Some((next, rest)) = remaining_marks.split_first() {
                    self.control = Control::AwaitResume(Pending::CallAck {
                        remaining_marks: rest.to_vec(),
                        callee,
                        args,
                    });
                    return Ok(Step::Suspended(Suspend::CallMarker { chan: next.clone() }));
                }
                self.enter_callee(&callee, args)?;
            }
            (pending, resume) => {
                return Err(CoroutineError::Protocol(format!(
                    "resume value {resume:?} does not match the pending operation {pending:?}"
                )));
            }
        }
        self.drive()
    }

    fn enter_callee(&mut self, callee: &Ident, args: Vec<Value>) -> Result<(), CoroutineError> {
        let proc = self
            .program
            .proc(callee)
            .ok_or_else(|| CoroutineError::UnknownProc(callee.to_string()))?;
        if proc.params.len() != args.len() {
            return Err(CoroutineError::Protocol(format!(
                "procedure '{callee}' expects {} argument(s), got {}",
                proc.params.len(),
                args.len()
            )));
        }
        self.frames.push(Frame::Return {
            channels: self.channels.clone(),
        });
        self.channels = ProcChannels::of(proc);
        let env = Env::from_bindings(proc.params.iter().map(|(x, _)| x.clone()).zip(args));
        self.control = Control::Run {
            cmd: proc.body.clone(),
            env,
        };
        Ok(())
    }

    /// Runs until suspension or completion.
    fn drive(&mut self) -> Result<Step, CoroutineError> {
        loop {
            self.steps += 1;
            let control = std::mem::replace(&mut self.control, Control::Finished);
            match control {
                Control::Finished => {
                    return Err(CoroutineError::Protocol(
                        "coroutine already finished".into(),
                    ))
                }
                Control::AwaitResume(p) => {
                    // Re-install and report the suspension (drive should not
                    // be called in this state, but be forgiving).
                    self.control = Control::AwaitResume(p);
                    return Err(CoroutineError::Protocol(
                        "coroutine is awaiting a resume value".into(),
                    ));
                }
                Control::Return { value } => match self.frames.pop() {
                    None => {
                        self.control = Control::Finished;
                        return Ok(Step::Done {
                            value,
                            log_weight: self.log_weight,
                        });
                    }
                    Some(Frame::Bind { var, rest, env }) => {
                        let env = env.extended(var, value);
                        self.control = Control::Run { cmd: rest, env };
                    }
                    Some(Frame::Return { channels }) => {
                        self.channels = channels;
                        self.control = Control::Return { value };
                    }
                },
                Control::Run { cmd, env } => match cmd {
                    Cmd::Ret(e) => {
                        let value = eval_expr(&env, &e)?;
                        self.control = Control::Return { value };
                    }
                    Cmd::Bind { var, first, rest } => {
                        self.frames.push(Frame::Bind {
                            var,
                            rest: *rest,
                            env: env.clone(),
                        });
                        self.control = Control::Run { cmd: *first, env };
                    }
                    Cmd::Call { proc, args } => {
                        let arg_values =
                            args.iter()
                                .map(|a| eval_expr(&env, a))
                                .collect::<Result<Vec<_>, _>>()?;
                        let callee = self
                            .program
                            .proc(&proc)
                            .ok_or_else(|| CoroutineError::UnknownProc(proc.to_string()))?;
                        // Emit a fold marker per channel the callee uses.
                        let mut marks: Vec<ChannelName> = Vec::new();
                        if let Some(c) = &callee.consumes {
                            marks.push(c.clone());
                        }
                        if let Some(c) = &callee.provides {
                            marks.push(c.clone());
                        }
                        if let Some((first_mark, rest_marks)) = marks.split_first() {
                            self.control = Control::AwaitResume(Pending::CallAck {
                                remaining_marks: rest_marks.to_vec(),
                                callee: proc.clone(),
                                args: arg_values,
                            });
                            return Ok(Step::Suspended(Suspend::CallMarker {
                                chan: first_mark.clone(),
                            }));
                        }
                        self.enter_callee(&proc, arg_values)?;
                    }
                    Cmd::Sample { dir, chan, dist } => {
                        let d = match eval_expr(&env, &dist)? {
                            Value::Dist(d) => d,
                            other => {
                                return Err(CoroutineError::Eval(EvalError::Dynamic(format!(
                                    "sample requires a distribution, found {other}"
                                ))))
                            }
                        };
                        self.check_channel(&chan)?;
                        let suspend = match dir {
                            Dir::Send => Suspend::SampleSend {
                                chan: chan.clone(),
                                dist: d.clone(),
                            },
                            Dir::Recv => Suspend::SampleRecv {
                                chan: chan.clone(),
                                dist: d.clone(),
                            },
                        };
                        self.control = Control::AwaitResume(Pending::Sample { dist: d });
                        return Ok(Step::Suspended(suspend));
                    }
                    Cmd::Branch {
                        dir,
                        chan,
                        pred,
                        then_cmd,
                        else_cmd,
                    } => {
                        self.check_channel(&chan)?;
                        match dir {
                            Dir::Send => {
                                let selection = match &pred {
                                    Some(p) => eval_expr(&env, p)?.as_bool().ok_or_else(|| {
                                        CoroutineError::Eval(EvalError::Dynamic(
                                            "non-Boolean branch predicate".into(),
                                        ))
                                    })?,
                                    None => {
                                        return Err(CoroutineError::Eval(EvalError::Dynamic(
                                            "send-branch without a predicate".into(),
                                        )))
                                    }
                                };
                                self.control = Control::AwaitResume(Pending::BranchSend {
                                    selection,
                                    then_cmd: *then_cmd,
                                    else_cmd: *else_cmd,
                                    env,
                                });
                                return Ok(Step::Suspended(Suspend::BranchSend {
                                    chan,
                                    selection,
                                }));
                            }
                            Dir::Recv => {
                                self.control = Control::AwaitResume(Pending::BranchRecv {
                                    then_cmd: *then_cmd,
                                    else_cmd: *else_cmd,
                                    env,
                                });
                                return Ok(Step::Suspended(Suspend::BranchRecv { chan }));
                            }
                        }
                    }
                },
            }
        }
    }

    fn check_channel(&self, chan: &ChannelName) -> Result<(), CoroutineError> {
        if self.channels.consumes.as_ref() == Some(chan)
            || self.channels.provides.as_ref() == Some(chan)
        {
            Ok(())
        } else {
            Err(CoroutineError::Protocol(format!(
                "channel '{chan}' is not declared by the current procedure"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn guide_program() -> Program {
        parse_program(
            r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn guide_coroutine_walkthrough() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // First suspension: sending the Gamma(1,1) sample.
        let step = co.start().unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { chan, dist }) => {
                assert_eq!(chan.as_str(), "latent");
                assert_eq!(dist, &Distribution::gamma(1.0, 1.0).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Resume with a concrete value; next it waits for the selection.
        let step = co.resume(Resume::Sample(Sample::Real(3.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        // Take the else branch: one more sample send, then done.
        let step = co.resume(Resume::Branch(false)).unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { dist, .. }) => {
                assert_eq!(dist, &Distribution::uniform());
            }
            other => panic!("unexpected {other:?}"),
        }
        let step = co.resume(Resume::Sample(Sample::Real(0.25))).unwrap();
        match step {
            Step::Done { value, log_weight } => {
                assert_eq!(value, Value::Unit);
                let expected = Distribution::gamma(1.0, 1.0).unwrap().log_density_f64(3.0)
                    + Distribution::uniform().log_density_f64(0.25);
                assert!((log_weight - expected).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(co.steps_taken() > 0);
    }

    #[test]
    fn then_branch_skips_second_sample() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        co.resume(Resume::Sample(Sample::Real(1.0))).unwrap();
        let step = co.resume(Resume::Branch(true)).unwrap();
        assert!(matches!(step, Step::Done { .. }));
    }

    #[test]
    fn out_of_support_sample_zeroes_weight_but_continues() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        let step = co.resume(Resume::Sample(Sample::Real(-1.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        assert_eq!(co.log_weight(), f64::NEG_INFINITY);
    }

    #[test]
    fn call_markers_are_emitted_per_channel() {
        let prog = parse_program(
            r#"
            proc Outer() consume latent provide obs {
              let _ <- call Inner();
              return ()
            }
            proc Inner() consume latent provide obs {
              let x <- sample recv latent (Unif);
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let mut co = Coroutine::spawn(&prog, &"Outer".into(), vec![]).unwrap();
        let step = co.start().unwrap();
        let first_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => chan.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let step = co.resume(Resume::Ack).unwrap();
        let second_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => chan.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let mut chans = vec![
            first_chan.as_str().to_string(),
            second_chan.as_str().to_string(),
        ];
        chans.sort();
        assert_eq!(chans, vec!["latent".to_string(), "obs".to_string()]);
        // After both markers the callee body runs.
        let step = co.resume(Resume::Ack).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::SampleRecv { .. })));
    }

    #[test]
    fn protocol_errors() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // Resuming before starting is an error.
        assert!(co.resume(Resume::Ack).is_err());
        co.start().unwrap();
        // Starting twice is an error.
        assert!(co.start().is_err());
        // Wrong resume kind.
        assert!(co.resume(Resume::Branch(true)).is_err());
        // Unknown procedure / wrong arity at spawn time.
        assert!(Coroutine::spawn(&prog, &"Nope".into(), vec![]).is_err());
        assert!(Coroutine::spawn(&prog, &"Guide1".into(), vec![Value::Real(1.0)]).is_err());
    }

    #[test]
    fn undeclared_channel_is_rejected_at_runtime() {
        let prog = parse_program(
            r#"
            proc P() consume latent {
              let _ <- sample recv other (Unif);
              return ()
            }
        "#,
        )
        .unwrap();
        let mut co = Coroutine::spawn(&prog, &"P".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::Protocol(_))));
    }

    #[test]
    fn suspend_channel_accessor() {
        let s = Suspend::BranchRecv {
            chan: "latent".into(),
        };
        assert_eq!(s.channel().as_str(), "latent");
        let s = Suspend::SampleSend {
            chan: "obs".into(),
            dist: Distribution::uniform(),
        };
        assert_eq!(s.channel().as_str(), "obs");
    }
}
