//! PPL source text for every benchmark model and guide.
//!
//! The sources follow the paper's benchmark suite (§6, Table 1): example
//! models from Anglican/Turing/Pyro, recursive PCFG-style models, and the
//! programs shown in the paper's figures.  Each model is paired with a
//! guide whose guide type matches the model's latent protocol.

/// Bayesian linear regression (`lr`).
pub const LR_MODEL: &str = r#"
proc Lr() consume latent provide obs {
  let slope <- sample recv latent (Normal(0.0, 10.0));
  let intercept <- sample recv latent (Normal(0.0, 10.0));
  let _ <- sample send obs (Normal(slope * 1.0 + intercept, 1.0));
  let _ <- sample send obs (Normal(slope * 2.0 + intercept, 1.0));
  let _ <- sample send obs (Normal(slope * 3.0 + intercept, 1.0));
  let _ <- sample send obs (Normal(slope * 4.0 + intercept, 1.0));
  let _ <- sample send obs (Normal(slope * 5.0 + intercept, 1.0));
  return ()
}
"#;

/// Guide for `lr`.
pub const LR_GUIDE: &str = r#"
proc LrGuide() provide latent {
  let slope <- sample send latent (Normal(1.0, 3.0));
  let intercept <- sample send latent (Normal(0.0, 3.0));
  return ()
}
"#;

/// Gaussian mixture model (`gmm`): two components, four data points.
pub const GMM_MODEL: &str = r#"
proc Gmm() consume latent provide obs {
  let mu1 <- sample recv latent (Normal(-2.0, 3.0));
  let mu2 <- sample recv latent (Normal(2.0, 3.0));
  let z1 <- sample recv latent (Ber(0.5));
  let _ <- sample send obs (Normal(if z1 then mu1 else mu2, 1.0));
  let z2 <- sample recv latent (Ber(0.5));
  let _ <- sample send obs (Normal(if z2 then mu1 else mu2, 1.0));
  let z3 <- sample recv latent (Ber(0.5));
  let _ <- sample send obs (Normal(if z3 then mu1 else mu2, 1.0));
  let z4 <- sample recv latent (Ber(0.5));
  let _ <- sample send obs (Normal(if z4 then mu1 else mu2, 1.0));
  return ()
}
"#;

/// Guide for `gmm`.
pub const GMM_GUIDE: &str = r#"
proc GmmGuide() provide latent {
  let mu1 <- sample send latent (Normal(-2.0, 2.0));
  let mu2 <- sample send latent (Normal(2.0, 2.0));
  let z1 <- sample send latent (Ber(0.5));
  let z2 <- sample send latent (Ber(0.5));
  let z3 <- sample send latent (Ber(0.5));
  let z4 <- sample send latent (Ber(0.5));
  return ()
}
"#;

/// Kalman smoother (`kalman`): a three-step Gaussian random walk.
pub const KALMAN_MODEL: &str = r#"
proc Kalman() consume latent provide obs {
  let x1 <- sample recv latent (Normal(0.0, 1.0));
  let _ <- sample send obs (Normal(x1, 0.5));
  let x2 <- sample recv latent (Normal(x1, 1.0));
  let _ <- sample send obs (Normal(x2, 0.5));
  let x3 <- sample recv latent (Normal(x2, 1.0));
  let _ <- sample send obs (Normal(x3, 0.5));
  return ()
}
"#;

/// Guide for `kalman`.
pub const KALMAN_GUIDE: &str = r#"
proc KalmanGuide() provide latent {
  let x1 <- sample send latent (Normal(0.5, 1.0));
  let x2 <- sample send latent (Normal(1.0, 1.0));
  let x3 <- sample send latent (Normal(1.5, 1.0));
  return ()
}
"#;

/// Sprinkler Bayesian network (`sprinkler`).
pub const SPRINKLER_MODEL: &str = r#"
proc Sprinkler() consume latent provide obs {
  let rain <- sample recv latent (Ber(0.2));
  let sprinkler <- sample recv latent (Ber(if rain then 0.01 else 0.4));
  let _ <- sample send obs (Ber(if rain && sprinkler then 0.99 else if rain || sprinkler then 0.8 else 0.05));
  return ()
}
"#;

/// Guide for `sprinkler`.
pub const SPRINKLER_GUIDE: &str = r#"
proc SprinklerGuide() provide latent {
  let rain <- sample send latent (Ber(0.4));
  let sprinkler <- sample send latent (Ber(0.4));
  return ()
}
"#;

/// Hidden Markov model (`hmm`): three steps, Boolean states.
pub const HMM_MODEL: &str = r#"
proc Hmm() consume latent provide obs {
  let s1 <- sample recv latent (Ber(0.5));
  let _ <- sample send obs (Normal(if s1 then 1.0 else -1.0, 1.0));
  let s2 <- sample recv latent (Ber(if s1 then 0.7 else 0.3));
  let _ <- sample send obs (Normal(if s2 then 1.0 else -1.0, 1.0));
  let s3 <- sample recv latent (Ber(if s2 then 0.7 else 0.3));
  let _ <- sample send obs (Normal(if s3 then 1.0 else -1.0, 1.0));
  return ()
}
"#;

/// Guide for `hmm`.
pub const HMM_GUIDE: &str = r#"
proc HmmGuide() provide latent {
  let s1 <- sample send latent (Ber(0.6));
  let s2 <- sample send latent (Ber(0.6));
  let s3 <- sample send latent (Ber(0.6));
  return ()
}
"#;

/// Random control flow (`branching`, after the Anglican benchmark): the
/// number of latent variables depends on a comparison of a discrete draw.
pub const BRANCHING_MODEL: &str = r#"
proc Branching() consume latent provide obs {
  let count <- sample recv latent (Geo(0.5));
  if send latent (count < 4) {
    let _ <- sample send obs (Normal(real(count), 1.0));
    return ()
  } else {
    let extra <- sample recv latent (Pois(4.0));
    let _ <- sample send obs (Normal(real(count + extra), 1.0));
    return ()
  }
}
"#;

/// Guide for `branching`.
pub const BRANCHING_GUIDE: &str = r#"
proc BranchingGuide() provide latent {
  let count <- sample send latent (Geo(0.4));
  if recv latent {
    return ()
  } else {
    let extra <- sample send latent (Pois(5.0));
    return ()
  }
}
"#;

/// The Marsaglia polar method as a recursive probabilistic program
/// (`marsaglia`), following the classic Anglican benchmark.
pub const MARSAGLIA_MODEL: &str = r#"
proc Marsaglia() : real consume latent provide obs {
  let x <- call MarsagliaStep(1.0, 1.0);
  let _ <- sample send obs (Normal(x, 0.5));
  return x
}
proc MarsagliaStep(mean : real, scale : preal) : real consume latent {
  let u1 <- sample recv latent (Unif);
  let u2 <- sample recv latent (Unif);
  let s <- return ((2.0 * u1 - 1.0) * (2.0 * u1 - 1.0) + (2.0 * u2 - 1.0) * (2.0 * u2 - 1.0));
  if send latent (s < 1.0) {
    return mean + scale * (2.0 * u1 - 1.0) * sqrt(-2.0 * ln(s) / s)
  } else {
    let r <- call MarsagliaStep(mean, scale);
    return r
  }
}
"#;

/// Guide for `marsaglia`.
pub const MARSAGLIA_GUIDE: &str = r#"
proc MarsagliaGuide() provide latent {
  let _ <- call MarsagliaStepGuide();
  return ()
}
proc MarsagliaStepGuide() provide latent {
  let u1 <- sample send latent (Unif);
  let u2 <- sample send latent (Unif);
  if recv latent {
    return ()
  } else {
    let _ <- call MarsagliaStepGuide();
    return ()
  }
}
"#;

/// Poisson-trace algorithm (`ptrace`, Fig. 10 / Knuth's algorithm).
pub const PTRACE_MODEL: &str = r#"
proc Ptrace() : real consume latent provide obs {
  let k <- call PtraceHelper(exp(-(4.0)), 0.0, 1.0);
  let _ <- sample send obs (Normal(k, 0.1));
  return k
}
proc PtraceHelper(l : preal, k : real, p : preal) : real consume latent {
  let u <- sample recv latent (Unif);
  if send latent (p * u <= l) {
    return k
  } else {
    let r <- call PtraceHelper(l, k + 1.0, p * u);
    return r
  }
}
"#;

/// Guide for `ptrace`.
pub const PTRACE_GUIDE: &str = r#"
proc PtraceGuide() provide latent {
  let _ <- call PtraceHelperGuide();
  return ()
}
proc PtraceHelperGuide() provide latent {
  let u <- sample send latent (Unif);
  if recv latent {
    return ()
  } else {
    let _ <- call PtraceHelperGuide();
    return ()
  }
}
"#;

/// Aircraft detection (`aircraft`): two potential aircraft with presence
/// flags and positions; every latent site is always sampled, so the model
/// stays within the trace-type fragment.
pub const AIRCRAFT_MODEL: &str = r#"
proc Aircraft() consume latent provide obs {
  let present1 <- sample recv latent (Ber(0.5));
  let pos1 <- sample recv latent (Normal(0.0, 5.0));
  let present2 <- sample recv latent (Ber(0.3));
  let pos2 <- sample recv latent (Normal(0.0, 5.0));
  let _ <- sample send obs (Normal(if present1 then pos1 else 0.0, 1.0));
  let _ <- sample send obs (Normal(if present2 then pos2 else 0.0, 1.0));
  return ()
}
"#;

/// Guide for `aircraft`.
pub const AIRCRAFT_GUIDE: &str = r#"
proc AircraftGuide() provide latent {
  let present1 <- sample send latent (Ber(0.5));
  let pos1 <- sample send latent (Normal(2.0, 3.0));
  let present2 <- sample send latent (Ber(0.5));
  let pos2 <- sample send latent (Normal(-2.0, 3.0));
  return ()
}
"#;

/// Unreliable weighing (`weight`): the Pyro introductory example.
pub const WEIGHT_MODEL: &str = r#"
proc WeightModel() : real consume latent provide obs {
  let w <- sample recv latent (Normal(2.0, 1.0));
  let _ <- sample send obs (Normal(w, 0.75));
  let _ <- sample send obs (Normal(w, 0.75));
  return w
}
"#;

/// Parameterised guide for `weight` (variational inference).
pub const WEIGHT_GUIDE: &str = r#"
proc WeightGuide(mu : real, sigma : preal) provide latent {
  let w <- sample send latent (Normal(mu, sigma));
  return ()
}
"#;

/// A small variational autoencoder (`vae`): a two-dimensional latent code
/// with a fixed linear decoder over four observed dimensions (the tensor
/// version of the paper's benchmark, unrolled to scalars — see DESIGN.md).
pub const VAE_MODEL: &str = r#"
proc Vae() consume latent provide obs {
  let z1 <- sample recv latent (Normal(0.0, 1.0));
  let z2 <- sample recv latent (Normal(0.0, 1.0));
  let _ <- sample send obs (Normal(0.9 * z1 + 0.1 * z2, 0.5));
  let _ <- sample send obs (Normal(0.5 * z1 - 0.5 * z2, 0.5));
  let _ <- sample send obs (Normal(0.1 * z1 + 0.9 * z2, 0.5));
  let _ <- sample send obs (Normal(0.4 * z1 + 0.3 * z2, 0.5));
  return ()
}
"#;

/// Parameterised encoder/guide for `vae` (variational inference).
pub const VAE_GUIDE: &str = r#"
proc VaeGuide(m1 : real, s1 : preal, m2 : real, s2 : preal) provide latent {
  let z1 <- sample send latent (Normal(m1, s1));
  let z2 <- sample send latent (Normal(m2, s2));
  return ()
}
"#;

/// The model of Fig. 1 / Fig. 5 (`ex-1`).
pub const EX1_MODEL: &str = r#"
proc Model() : real consume latent provide obs {
  let v <- sample recv latent (Gamma(2.0, 1.0));
  if send latent (v < 2.0) {
    let _ <- sample send obs (Normal(-1.0, 1.0));
    return v
  } else {
    let m <- sample recv latent (Beta(3.0, 1.0));
    let _ <- sample send obs (Normal(m, 1.0));
    return v
  }
}
"#;

/// The sound guide of Fig. 3 / Fig. 5 (`ex-1`).
pub const EX1_GUIDE: &str = r#"
proc Guide1() provide latent {
  let v <- sample send latent (Gamma(1.0, 1.0));
  if recv latent {
    return ()
  } else {
    let _ <- sample send latent (Unif);
    return ()
  }
}
"#;

/// The *unsound* guide of Fig. 3 (`Guide1'`), kept for negative tests.
pub const EX1_BAD_GUIDE: &str = r#"
proc Guide1Bad() provide latent {
  let v <- sample send latent (Pois(4.0));
  if recv latent {
    return ()
  } else {
    let _ <- sample send latent (Unif);
    return ()
  }
}
"#;

/// The recursive PCFG model of Fig. 6 (`ex-2`); expression trees are
/// represented by their evaluated sum, which keeps the program within the
/// calculus' scalar value types.  The leaf probability is bounded below by
/// one half (`u < 0.5 + 0.5·k`) so that the branching process is
/// almost-surely finite with finite expected size and the benchmark can be
/// executed generatively (Fig. 6's `u < k` is supercritical for small `k`).
pub const EX2_MODEL: &str = r#"
proc Pcfg() : real consume latent {
  let k <- sample recv latent (Beta(3.0, 1.0));
  let t <- call PcfgGen(k);
  return t
}
proc PcfgGen(k : ureal) : real consume latent {
  let u <- sample recv latent (Unif);
  if send latent (u < 0.5 + 0.5 * k) {
    let v <- sample recv latent (Normal(0.0, 1.0));
    return v
  } else {
    let lhs <- call PcfgGen(k);
    let rhs <- call PcfgGen(k);
    return lhs + rhs
  }
}
"#;

/// Guide for `ex-2`.
pub const EX2_GUIDE: &str = r#"
proc PcfgGuide() provide latent {
  let k <- sample send latent (Beta(2.0, 2.0));
  let _ <- call PcfgGenGuide();
  return ()
}
proc PcfgGenGuide() provide latent {
  let u <- sample send latent (Unif);
  if recv latent {
    let v <- sample send latent (Normal(0.0, 2.0));
    return ()
  } else {
    let _ <- call PcfgGenGuide();
    let _ <- call PcfgGenGuide();
    return ()
  }
}
"#;

/// Gaussian-process kernel DSL (`gp-dsl`): a PCFG over kernel structures
/// whose evaluated amplitude is observed (the paper's benchmark uses the
/// DSL of Saad et al. 2019; see DESIGN.md for the simplification).
pub const GP_DSL_MODEL: &str = r#"
proc GpDsl() : real consume latent provide obs {
  let amp <- call GpKernel();
  let _ <- sample send obs (Normal(amp, 0.5));
  let _ <- sample send obs (Normal(amp, 0.5));
  return amp
}
proc GpKernel() : real consume latent {
  let u <- sample recv latent (Unif);
  if send latent (u < 0.6) {
    let scale <- sample recv latent (Gamma(2.0, 2.0));
    return scale
  } else {
    let lhs <- call GpKernel();
    let rhs <- call GpKernel();
    return lhs + rhs
  }
}
"#;

/// Guide for `gp-dsl`.
pub const GP_DSL_GUIDE: &str = r#"
proc GpDslGuide() provide latent {
  let _ <- call GpKernelGuide();
  return ()
}
proc GpKernelGuide() provide latent {
  let u <- sample send latent (Unif);
  if recv latent {
    let scale <- sample send latent (Gamma(2.0, 1.0));
    return ()
  } else {
    let _ <- call GpKernelGuide();
    let _ <- call GpKernelGuide();
    return ()
  }
}
"#;

/// The §2.2 outlier example used with MCMC (`outlier`).
pub const OUTLIER_MODEL: &str = r#"
proc OutlierModel() consume latent provide obs {
  let prob_outlier <- sample recv latent (Unif);
  let is_outlier <- sample recv latent (Ber(prob_outlier));
  let _ <- sample send obs (Normal(if is_outlier then 10.0 else 0.0, 1.0));
  return ()
}
"#;

/// The data-dependent MCMC proposal guide for `outlier` (its Boolean
/// argument is the previous sample's `is_outlier`).
pub const OUTLIER_GUIDE: &str = r#"
proc OutlierGuide(old_is_outlier : bool) provide latent {
  let prob_outlier <- sample send latent (Beta(2.0, 2.0));
  let is_outlier <- sample send latent (Ber(if old_is_outlier then 0.2 else 0.8));
  return ()
}
"#;

/// Conjugate normal–normal model (`normal-normal`, extra benchmark).
pub const NORMAL_NORMAL_MODEL: &str = r#"
proc NormalNormal() : real consume latent provide obs {
  let x <- sample recv latent (Normal(0.0, 1.0));
  let _ <- sample send obs (Normal(x, 1.0));
  return x
}
"#;

/// Guide for `normal-normal`.
pub const NORMAL_NORMAL_GUIDE: &str = r#"
proc NormalNormalGuide() provide latent {
  let x <- sample send latent (Normal(0.0, 1.5));
  return ()
}
"#;

/// A recursive geometric counter (`geometric`, extra benchmark).
pub const GEOMETRIC_MODEL: &str = r#"
proc GeoModel() : real consume latent provide obs {
  let n <- call GeoStep(0.5);
  let _ <- sample send obs (Normal(n, 1.0));
  return n
}
proc GeoStep(p : ureal) : real consume latent {
  let u <- sample recv latent (Unif);
  if send latent (u < p) {
    return 0.0
  } else {
    let rest <- call GeoStep(p);
    return rest + 1.0
  }
}
"#;

/// Guide for `geometric`.
pub const GEOMETRIC_GUIDE: &str = r#"
proc GeoGuide() provide latent {
  let _ <- call GeoStepGuide();
  return ()
}
proc GeoStepGuide() provide latent {
  let u <- sample send latent (Unif);
  if recv latent {
    return ()
  } else {
    let _ <- call GeoStepGuide();
    return ()
  }
}
"#;

/// Burglary/alarm Bayesian network (`burglary`, extra benchmark).
pub const BURGLARY_MODEL: &str = r#"
proc Burglary() consume latent provide obs {
  let burglary <- sample recv latent (Ber(0.01));
  let earthquake <- sample recv latent (Ber(0.02));
  let _ <- sample send obs (Ber(if burglary && earthquake then 0.95 else if burglary then 0.94 else if earthquake then 0.29 else 0.01));
  return ()
}
"#;

/// Guide for `burglary`.
pub const BURGLARY_GUIDE: &str = r#"
proc BurglaryGuide() provide latent {
  let burglary <- sample send latent (Ber(0.3));
  let earthquake <- sample send latent (Ber(0.3));
  return ()
}
"#;

/// Beta–Bernoulli coin model (`coin`, extra benchmark).
pub const COIN_MODEL: &str = r#"
proc Coin() : ureal consume latent provide obs {
  let p <- sample recv latent (Beta(2.0, 2.0));
  let _ <- sample send obs (Ber(p));
  let _ <- sample send obs (Ber(p));
  let _ <- sample send obs (Ber(p));
  let _ <- sample send obs (Ber(p));
  return p
}
"#;

/// Guide for `coin`.
pub const COIN_GUIDE: &str = r#"
proc CoinGuide() provide latent {
  let p <- sample send latent (Beta(3.0, 2.0));
  return ()
}
"#;

/// Seasonal mixture with a categorical latent (`seasons`, extra benchmark).
pub const SEASONS_MODEL: &str = r#"
proc Seasons() consume latent provide obs {
  let season <- sample recv latent (Cat(1.0, 1.0, 1.0, 1.0));
  let temp <- sample recv latent (Normal(if season == 0 then 0.0 else if season == 1 then 10.0 else if season == 2 then 20.0 else 10.0, 3.0));
  let _ <- sample send obs (Normal(temp, 2.0));
  return ()
}
"#;

/// Guide for `seasons`.
pub const SEASONS_GUIDE: &str = r#"
proc SeasonsGuide() provide latent {
  let season <- sample send latent (Cat(1.0, 1.0, 1.0, 1.0));
  let temp <- sample send latent (Normal(12.0, 8.0));
  return ()
}
"#;
