//! Weight post-processing and density estimation utilities shared by the
//! inference engines and the benchmark harness.

use crate::special::log_sum_exp;

/// Self-normalises a slice of log-weights into probabilities that sum to
/// one.
///
/// Returns `None` when normalisation is impossible: the slice is empty or
/// every weight is zero (`-∞`), as happens when no particle lands in the
/// model's support.
pub fn normalize_log_weights(log_weights: &[f64]) -> Option<Vec<f64>> {
    let lse = log_sum_exp(log_weights);
    if lse == f64::NEG_INFINITY {
        return None;
    }
    Some(log_weights.iter().map(|&lw| (lw - lse).exp()).collect())
}

/// Kish's effective sample size `1 / Σᵢ wᵢ²` of *normalised* weights.
///
/// Uniform weights over `n` particles give `n`; a single particle carrying
/// all the mass gives `1`; an empty slice gives `0`.
pub fn effective_sample_size(normalized_weights: &[f64]) -> f64 {
    let sum_sq: f64 = normalized_weights.iter().map(|&w| w * w).sum();
    if sum_sq > 0.0 {
        1.0 / sum_sq
    } else {
        0.0
    }
}

/// A fixed-range weighted histogram over `[lo, hi)`, used as a density
/// estimator for posterior plots (the Fig. 2 series).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    weights: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.  Requires `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            weights: vec![0.0; bins],
            total: 0.0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.weights.len()
    }

    /// The width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.weights.len() as f64
    }

    /// Adds a weighted observation.  Values outside `[lo, hi)` are ignored
    /// (their weight does not contribute to [`Histogram::total_weight`]).
    pub fn add(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || value < self.lo || value >= self.hi {
            return;
        }
        let idx = (((value - self.lo) / self.bin_width()) as usize).min(self.weights.len() - 1);
        self.weights[idx] += weight;
        self.total += weight;
    }

    /// The total weight accumulated inside the range.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// The accumulated weight per bin.
    pub fn bin_weights(&self) -> &[f64] {
        &self.weights
    }

    /// The midpoints of the bins.
    pub fn centers(&self) -> Vec<f64> {
        let w = self.bin_width();
        (0..self.weights.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// The density estimate per bin: accumulated weight divided by the bin
    /// width.  When the added weights are normalised probabilities, the
    /// densities integrate (over the range) to the in-range probability
    /// mass.
    pub fn densities(&self) -> Vec<f64> {
        let w = self.bin_width();
        self.weights.iter().map(|&m| m / w).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_log_weights_is_a_softmax() {
        let normalized = normalize_log_weights(&[0.0, 0.0, 2f64.ln()]).unwrap();
        assert_eq!(normalized.len(), 3);
        assert!((normalized.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((normalized[0] - 0.25).abs() < 1e-12);
        assert!((normalized[2] - 0.5).abs() < 1e-12);
        // Shift-invariance: adding a huge constant changes nothing.
        let shifted = normalize_log_weights(&[900.0, 900.0, 900.0 + 2f64.ln()]).unwrap();
        for (a, b) in normalized.iter().zip(&shifted) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_log_weights_rejects_degenerate_input() {
        assert!(normalize_log_weights(&[]).is_none());
        assert!(normalize_log_weights(&[f64::NEG_INFINITY; 4]).is_none());
        // A single zero-weight particle among finite ones is fine.
        let w = normalize_log_weights(&[0.0, f64::NEG_INFINITY]).unwrap();
        assert_eq!(w, vec![1.0, 0.0]);
    }

    #[test]
    fn effective_sample_size_on_uniform_and_degenerate_weights() {
        let n = 400;
        let uniform = vec![1.0 / n as f64; n];
        assert!((effective_sample_size(&uniform) - n as f64).abs() < 1e-6);
        let mut degenerate = vec![0.0; n];
        degenerate[17] = 1.0;
        assert!((effective_sample_size(&degenerate) - 1.0).abs() < 1e-12);
        assert_eq!(effective_sample_size(&[]), 0.0);
        assert_eq!(effective_sample_size(&[0.0, 0.0]), 0.0);
        // Two equal particles: ESS = 2.
        assert!((effective_sample_size(&[0.5, 0.5]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_accumulates_and_estimates_densities() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bins(), 4);
        assert!((h.bin_width() - 0.25).abs() < 1e-15);
        h.add(0.1, 0.5);
        h.add(0.9, 0.25);
        h.add(0.95, 0.25);
        h.add(5.0, 1.0); // out of range: ignored
        h.add(f64::NAN, 1.0); // ignored
        assert!((h.total_weight() - 1.0).abs() < 1e-12);
        assert_eq!(h.bin_weights(), &[0.5, 0.0, 0.0, 0.5]);
        let centers = h.centers();
        assert_eq!(centers, vec![0.125, 0.375, 0.625, 0.875]);
        let densities = h.densities();
        assert!((densities[0] - 2.0).abs() < 1e-12);
        // Densities integrate back to the in-range mass.
        let mass: f64 = densities.iter().map(|d| d * h.bin_width()).sum();
        assert!((mass - h.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_edges() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.0, 1.0); // lower edge is inclusive
        h.add(1.0, 1.0); // interior edge goes to the upper bin
        h.add(2.0, 1.0); // upper edge is exclusive
        assert_eq!(h.bin_weights(), &[1.0, 1.0]);
    }
}
