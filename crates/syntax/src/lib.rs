//! Abstract syntax, surface-syntax parser, and pretty-printer for the
//! guide-types PPL (the core calculus of *Sound Probabilistic Inference via
//! Guide Types*, PLDI 2021, Fig. 7).
//!
//! The crate is purely syntactic: typing lives in `ppl-types` and execution
//! in `ppl-semantics` / `ppl-runtime`.
//!
//! # Example
//!
//! ```
//! use ppl_syntax::{parse_program, pretty};
//!
//! let src = r#"
//!     proc Flip() provide latent {
//!       let b <- sample send latent (Ber(0.5));
//!       return ()
//!     }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.procs.len(), 1);
//! let printed = pretty::print_program(&program);
//! assert_eq!(parse_program(&printed)?, program);
//! # Ok::<(), ppl_syntax::ParseError>(())
//! ```

pub mod ast;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{BaseType, BinOp, ChannelName, Cmd, Dir, DistExpr, Expr, Ident, Proc, Program, UnOp};
pub use intern::Sym;
pub use lexer::{lex, LexError, Token};
pub use parser::{parse_expr, parse_program, ParseError, MAX_PARSE_DEPTH};
