//! Loopback tests for the model-ingestion subsystem (`POST /v1/models`).
//!
//! The acceptance-critical properties:
//!
//! * a model admitted over HTTP serves `/v1/query` responses
//!   **bit-identical** to an in-process `Session::from_sources` run on the
//!   same sources;
//! * adversarial submissions (deep nesting, huge sources, unbound
//!   channels, model–guide mismatches) are rejected with structured `400`
//!   bodies carrying stable codes and source positions — never a `500`,
//!   never a crashed worker;
//! * registry pressure evicts only user models, LRU first; builtins are
//!   immortal.

use guide_ppl::{Method, Session};
use ppl_serve::http::ClientConn;
use ppl_serve::{api, App, Json, Registry, Server};
use std::sync::Arc;

const MODEL_SRC: &str = r#"
    proc Model() : real consume latent provide obs {
      let mu <- sample recv latent (Normal(0.0, 1.0));
      let _ <- sample send obs (Normal(mu, 1.0));
      return mu
    }
"#;

const GUIDE_SRC: &str = r#"
    proc Guide() provide latent {
      let mu <- sample send latent (Normal(0.0, 2.0));
      return ()
    }
"#;

fn boot(user_capacity: usize) -> (Arc<App>, Server) {
    let registry = Registry::from_benchmarks().with_user_capacity(user_capacity);
    let app = App::new(registry, 64);
    let server = Server::bind("127.0.0.1:0", 2, app.handler()).expect("bind port 0");
    (app, server)
}

fn submit_body(name: &str, model_src: &str, guide_src: &str) -> String {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("model_src".into(), Json::str(model_src)),
        ("guide_src".into(), Json::str(guide_src)),
    ])
    .write()
    .expect("finite")
}

fn error_code(body: &[u8]) -> String {
    let parsed = Json::parse(std::str::from_utf8(body).unwrap()).unwrap();
    parsed
        .get("error")
        .unwrap()
        .get("code")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn submitted_models_serve_bit_identical_queries_and_full_lifecycle() {
    let (_app, server) = boot(8);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    // Admission: 201 with the content-hash id.
    let body = submit_body("my-model", MODEL_SRC, GUIDE_SRC);
    let (status, _, response) = conn.send("POST", "/v1/models", Some(&body)).unwrap();
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&response));
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    let id = parsed.get("id").unwrap().as_str().unwrap().to_string();
    assert!(id.starts_with("m-") && id.len() == 18, "{id}");
    assert_eq!(parsed.get("origin").unwrap().as_str(), Some("user"));
    assert_eq!(parsed.get("created").unwrap().as_bool(), Some(true));
    assert!(parsed.get("latent_protocol").unwrap().as_str().is_some());

    // Idempotent re-submission: 200, same id, bumped counter.
    let (status, _, response) = conn.send("POST", "/v1/models", Some(&body)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&response));
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(parsed.get("id").unwrap().as_str(), Some(id.as_str()));
    assert_eq!(parsed.get("created").unwrap().as_bool(), Some(false));
    assert_eq!(parsed.get("submissions").unwrap().as_f64(), Some(2.0));

    // The query over HTTP is bit-identical to the in-process run.
    let method = Method::Importance { particles: 400 };
    let session = Session::from_sources(MODEL_SRC, "Model", GUIDE_SRC, "Guide").unwrap();
    let posterior = session
        .query()
        .observe([ppl_dist::Sample::Real(1.0)])
        .seed(42)
        .run(&method)
        .unwrap();
    let expected = api::query_response_json(&id, &method, 42, &posterior, 0)
        .write()
        .unwrap();
    let query = format!(
        r#"{{"model":"{id}","observations":[1.0],
            "method":{{"algorithm":"importance","particles":400}},"seed":42}}"#
    );
    let (status, headers, response) = conn.send("POST", "/v1/query", Some(&query)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&response));
    assert_eq!(String::from_utf8(response).unwrap(), expected);
    assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "miss"));

    // Lifecycle: GET sees it, the listing counts it, builtins refuse
    // deletion, user deletion works exactly once.
    let (status, _, response) = conn.send("GET", &format!("/v1/models/{id}"), None).unwrap();
    assert_eq!(status, 200);
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(parsed.get("name").unwrap().as_str(), Some("my-model"));
    assert!(parsed.get("queries").unwrap().as_f64().unwrap() >= 1.0);

    let (status, _, response) = conn.send("GET", "/v1/models", None).unwrap();
    assert_eq!(status, 200);
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(parsed.get("user").unwrap().as_f64(), Some(1.0));
    assert!(parsed
        .get("models")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .any(|m| m.get("id").and_then(Json::as_str) == Some(id.as_str())));

    let (status, _, response) = conn.send("DELETE", "/v1/models/ex-1", None).unwrap();
    assert_eq!(status, 403);
    assert_eq!(error_code(&response), "model.builtin");

    let (status, _, _) = conn
        .send("DELETE", &format!("/v1/models/{id}"), None)
        .unwrap();
    assert_eq!(status, 200);
    let (status, _, response) = conn
        .send("DELETE", &format!("/v1/models/{id}"), None)
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(error_code(&response), "model.unknown");
    let (status, _, _) = conn.send("POST", "/v1/query", Some(&query)).unwrap();
    assert_eq!(status, 404, "deleted model no longer queryable");

    // Re-submitting the identical sources after deletion mints the same id
    // again, and the response cache — keyed by the content hash — may
    // serve the earlier query's bytes verbatim.
    let (status, _, response) = conn.send("POST", "/v1/models", Some(&body)).unwrap();
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&response));
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(parsed.get("id").unwrap().as_str(), Some(id.as_str()));
    let (status, headers, response) = conn.send("POST", "/v1/query", Some(&query)).unwrap();
    assert_eq!(status, 200);
    assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "hit"));
    assert_eq!(String::from_utf8(response).unwrap(), expected);

    server.shutdown();
}

#[test]
fn adversarial_submissions_are_structured_400s_never_500s() {
    let (_app, server) = boot(8);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    // Deep expression nesting trips the parser's depth fence, not the
    // worker's stack.
    let deep = format!(
        "proc M() : real {{ return {}0.0{} }}",
        "(".repeat(400),
        ")".repeat(400)
    );
    // A flat program larger than the compile fuel.
    let long: String = std::iter::once("proc M() : real { ".to_string())
        .chain((0..600).map(|i| format!("let x{i} <- return 0.0; ")))
        .chain(std::iter::once("return 0.0 }".to_string()))
        .collect();
    // A syntactically huge source.
    let huge = "x".repeat(ppl_serve::ingest::MAX_SOURCE_BYTES + 1);
    // A model sampling on a channel it never declared.
    let unbound = r#"
        proc M() : real {
          let v <- sample recv latent (Normal(0.0, 1.0));
          return v
        }
    "#;
    // A guide whose latent carrier disagrees with the model's.
    let bool_guide = r#"
        proc Guide() provide latent {
          let b <- sample send latent (Ber(0.5));
          return ()
        }
    "#;
    // A guide referencing a variable that is never bound.
    let unbound_var_guide = r#"
        proc Guide() provide latent {
          let mu <- sample send latent (Normal(nope, 2.0));
          return ()
        }
    "#;

    let cases: Vec<(String, u16, &str)> = vec![
        (submit_body("m", &deep, GUIDE_SRC), 400, "parse.depth"),
        (
            submit_body("m", "proc M( : real { return 0.0 }", GUIDE_SRC),
            400,
            "parse.unexpected_token",
        ),
        (
            submit_body("m", &long, GUIDE_SRC),
            400,
            "limit.compile_fuel",
        ),
        (
            submit_body("m", &huge, GUIDE_SRC),
            400,
            "limit.source_bytes",
        ),
        (
            submit_body("m", unbound, GUIDE_SRC),
            400,
            "type.channel.undeclared",
        ),
        (
            submit_body("m", MODEL_SRC, bool_guide),
            400,
            "type.guide_mismatch",
        ),
        (
            submit_body("m", MODEL_SRC, unbound_var_guide),
            400,
            "type.unbound_var",
        ),
        (submit_body("", MODEL_SRC, GUIDE_SRC), 400, "request.schema"),
        (r#"{"name": }"#.to_string(), 400, "request.json"),
    ];
    for (body, expected_status, expected_code) in cases {
        let (status, _, response) = conn.send("POST", "/v1/models", Some(&body)).unwrap();
        assert_eq!(
            status,
            expected_status,
            "expected {expected_code}: {}",
            String::from_utf8_lossy(&response)
        );
        assert_eq!(error_code(&response), expected_code);
    }

    // Parse and type rejections carry a 1-based source position.
    let (_, _, response) = conn
        .send(
            "POST",
            "/v1/models",
            Some(&submit_body("m", &deep, GUIDE_SRC)),
        )
        .unwrap();
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    let err = parsed.get("error").unwrap();
    assert_eq!(err.get("source").unwrap().as_str(), Some("model"));
    assert!(err.get("line").unwrap().as_f64().unwrap() >= 1.0);
    assert!(err.get("col").unwrap().as_f64().unwrap() >= 1.0);

    // Every rejection above left the workers alive.
    let (status, _, _) = conn.send("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn user_models_get_a_reduced_execution_budget() {
    let (_app, server) = boot(8);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();
    let body = submit_body("budgeted", MODEL_SRC, GUIDE_SRC);
    let (status, _, response) = conn.send("POST", "/v1/models", Some(&body)).unwrap();
    assert_eq!(status, 201);
    let parsed = Json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
    let id = parsed.get("id").unwrap().as_str().unwrap().to_string();
    let cap = ppl_serve::registry::MAX_USER_MODEL_EXECUTIONS;
    assert_eq!(
        parsed.get("max_request_executions").unwrap().as_f64(),
        Some(cap as f64)
    );
    // One particle over the user budget: rejected before any work runs,
    // even though a builtin would have accepted the same request.
    let over = cap + 1;
    assert!(over <= api::MAX_REQUEST_EXECUTIONS);
    let query = format!(
        r#"{{"model":"{id}","observations":[1.0],
            "method":{{"algorithm":"importance","particles":{over}}}}}"#
    );
    let (status, _, response) = conn.send("POST", "/v1/query", Some(&query)).unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&response));
    assert_eq!(error_code(&response), "request.limit");
    server.shutdown();
}

#[test]
fn eviction_prefers_lru_user_models_and_never_builtins() {
    // No socket needed: drive the handler directly with a capacity of 2.
    let registry = Registry::from_benchmarks().with_user_capacity(2);
    let builtin_count = registry.builtin_len();
    let app = App::new(registry, 64);
    let handler = app.handler();
    let send = |method: &str, path: &str, body: &str| {
        handler(&ppl_serve::Request {
            method: method.into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        })
    };
    let submit = |i: usize| {
        let guide = GUIDE_SRC.replace("Normal(0.0, 2.0)", &format!("Normal({i}.0, 2.0)"));
        let response = send(
            "POST",
            "/v1/models",
            &submit_body(&format!("gen-{i}"), MODEL_SRC, &guide),
        );
        assert_eq!(
            response.status,
            201,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        parsed.get("id").unwrap().as_str().unwrap().to_string()
    };

    let a = submit(0);
    let b = submit(1);
    // Touch `a` so `b` becomes the LRU victim for the third insert.
    assert_eq!(send("GET", &format!("/v1/models/{a}"), "").status, 200);
    let c = submit(2);
    assert_eq!(app.registry.user_len(), 2);
    assert_eq!(app.registry.evictions(), 1);
    assert_eq!(send("GET", &format!("/v1/models/{b}"), "").status, 404);
    assert_eq!(send("GET", &format!("/v1/models/{a}"), "").status, 200);
    assert_eq!(send("GET", &format!("/v1/models/{c}"), "").status, 200);
    // Builtins survived the churn and still serve.
    assert_eq!(app.registry.builtin_len(), builtin_count);
    assert_eq!(send("GET", "/v1/models/ex-1", "").status, 200);
    let response = send(
        "POST",
        "/v1/query",
        r#"{"model":"ex-1","observations":[0.8],
            "method":{"algorithm":"importance","particles":100}}"#,
    );
    assert_eq!(response.status, 200);

    // /metrics publishes the registry pressure and per-model stats.
    let response = send("GET", "/metrics", "");
    let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    let registry_doc = parsed.get("registry").unwrap();
    assert_eq!(registry_doc.get("user").unwrap().as_f64(), Some(2.0));
    assert_eq!(
        registry_doc.get("user_capacity").unwrap().as_f64(),
        Some(2.0)
    );
    assert_eq!(registry_doc.get("evictions").unwrap().as_f64(), Some(1.0));
    let per_model = registry_doc.get("per_model").unwrap().as_arr().unwrap();
    assert_eq!(per_model.len(), builtin_count + 2);
    assert!(per_model
        .iter()
        .any(|m| m.get("origin").and_then(Json::as_str) == Some("user")));
    let ex1 = per_model
        .iter()
        .find(|m| m.get("id").and_then(Json::as_str) == Some("ex-1"))
        .unwrap();
    assert_eq!(ex1.get("origin").unwrap().as_str(), Some("builtin"));
    assert!(ex1.get("queries").unwrap().as_f64().unwrap() >= 1.0);
}
