//! The particle engine: a deterministic, optionally parallel driver for the
//! independent-execution loops shared by the inference algorithms.
//!
//! Importance sampling draws `N` independent particles; VI draws a
//! mini-batch of independent joint executions per iteration and re-scores
//! each of them independently for the gradient.  Both are instances of the
//! same shape — "run `count` independent jobs, each with its own RNG, and
//! collect the results in index order" — which [`Engine::run_particles`]
//! implements once, sequentially or over `std::thread` scoped threads.
//!
//! # Determinism
//!
//! Job `i` always receives the generator `master.split(i)`, a pure function
//! of the master RNG state and the job index (see
//! [`Pcg32::split`]).  Scheduling therefore cannot influence any job's
//! randomness, and results are **bit-identical for every `num_threads`**,
//! including 1.  Result aggregation also happens in job-index order, so
//! floating-point reductions downstream see the same operand order
//! regardless of which thread finished first.

use ppl_dist::rng::Pcg32;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic particle driver with a configurable thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    num_threads: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::sequential()
    }
}

impl Engine {
    /// An engine running jobs on `num_threads` worker threads (clamped to at
    /// least one).  `Engine::new(1)` never spawns a thread.
    pub fn new(num_threads: usize) -> Engine {
        Engine {
            num_threads: num_threads.max(1),
        }
    }

    /// The single-threaded engine.
    pub fn sequential() -> Engine {
        Engine::new(1)
    }

    /// The configured number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `count` independent jobs and returns their results in job-index
    /// order.
    ///
    /// Each job receives its index and a private RNG substream derived from
    /// `rng`'s state *before* the call; `rng` itself is advanced once so
    /// that successive `run_particles` calls use fresh substreams.  The
    /// output — including which error is reported when several jobs fail
    /// (the lowest-index one) — is independent of `num_threads`.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing job, if any.
    pub fn run_particles<T, E, F>(&self, count: usize, rng: &mut Pcg32, job: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &mut Pcg32) -> Result<T, E> + Sync,
    {
        self.run_particles_with(count, rng, || (), |_, i, sub| job(i, sub))
    }

    /// [`Engine::run_particles`] with *worker-local scratch state*: `init`
    /// builds one `S` per worker (one total when sequential), and every job
    /// a worker runs receives `&mut` access to that worker's state.
    ///
    /// This is how the inference loops keep per-worker
    /// [`JointScratch`](ppl_runtime::JointScratch) pools alive across the
    /// particles of a substream — coroutine stacks and trace buffers are
    /// reused instead of reallocated per particle.  The scratch state must
    /// not influence results (it is working memory, not input), so the
    /// determinism guarantee is unchanged: outputs are bit-identical for
    /// every `num_threads`.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing job, if any.
    pub fn run_particles_with<S, T, E, I, F>(
        &self,
        count: usize,
        rng: &mut Pcg32,
        init: I,
        job: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut Pcg32) -> Result<T, E> + Sync,
    {
        let master = rng.clone();
        rng.next_u64();
        let run_one = |state: &mut S, i: usize| {
            let mut sub = master.split(i as u64);
            job(state, i, &mut sub)
        };
        if self.num_threads == 1 || count < 2 {
            let mut state = init();
            return (0..count).map(|i| run_one(&mut state, i)).collect();
        }
        let threads = self.num_threads.min(count);
        let chunk = count.div_ceil(threads);
        let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        // Early-abort bookkeeping: once a job fails, jobs at *higher*
        // indices cannot influence the result (the lowest-index error wins)
        // and are skipped.  Jobs below the recorded index still run — one
        // of them may fail with a lower index — so the winning error is
        // exactly the sequential one.
        let lowest_failed = AtomicUsize::new(usize::MAX);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let run_one = &run_one;
                let init = &init;
                let lowest_failed = &lowest_failed;
                scope.spawn(move || {
                    let mut state = init();
                    for (j, slot) in chunk_slots.iter_mut().enumerate() {
                        let i = chunk_idx * chunk + j;
                        if i > lowest_failed.load(Ordering::Relaxed) {
                            continue;
                        }
                        let result = run_one(&mut state, i);
                        if result.is_err() {
                            lowest_failed.fetch_min(i, Ordering::Relaxed);
                        }
                        *slot = Some(result);
                    }
                });
            }
        });
        // Every slot below the lowest failing index is a filled `Ok` (skips
        // only apply above it), so the scan returns the deterministic
        // winner; with no failure, every slot is filled.
        let mut out = Vec::with_capacity(count);
        for slot in slots {
            match slot.expect("job slots below the first error are always filled") {
                Ok(v) => out.push(v),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Runs `count` independent jobs in contiguous *blocks* of up to
    /// `block_size`, collecting results in job-index order.
    ///
    /// Where [`Engine::run_particles_with`] hands each job its own split
    /// substream, this driver hands each **block** the master generator and
    /// the index of its first job; the block callback must give lane `i` of
    /// a block starting at `first` exactly `master.split(first + i)` — the
    /// same substream discipline — and append one result per lane onto
    /// `out` in lane order.  Results (and the reported error, which is the
    /// one of the lowest-index failing block) are then **bit-identical** to
    /// the per-job driver at every block size and thread count.
    ///
    /// Blocks are the unit of scheduling: each worker thread owns a
    /// contiguous range of blocks plus one scratch state built by `init`,
    /// so block-local buffers warm up exactly like per-job scratch.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing block, if any.
    pub fn run_particle_blocks_with<S, T, E, I, F>(
        &self,
        count: usize,
        block_size: usize,
        rng: &mut Pcg32,
        init: I,
        run_block: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &Pcg32, u64, usize, &mut Vec<T>) -> Result<(), E> + Sync,
    {
        let master = rng.clone();
        rng.next_u64();
        let block_size = block_size.max(1);
        let num_blocks = count.div_ceil(block_size);
        let len_of = |b: usize| block_size.min(count - b * block_size);
        if self.num_threads == 1 || num_blocks < 2 {
            let mut state = init();
            let mut out = Vec::with_capacity(count);
            for b in 0..num_blocks {
                run_block(
                    &mut state,
                    &master,
                    (b * block_size) as u64,
                    len_of(b),
                    &mut out,
                )?;
            }
            return Ok(out);
        }
        let threads = self.num_threads.min(num_blocks);
        let chunk_blocks = num_blocks.div_ceil(threads);
        let mut slots: Vec<Option<Result<Vec<T>, E>>> = Vec::with_capacity(num_blocks);
        slots.resize_with(num_blocks, || None);
        // Same early-abort bookkeeping as `run_particles_with`, over block
        // indices: only the lowest failing block's error can win.
        let lowest_failed = AtomicUsize::new(usize::MAX);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk_slots) in slots.chunks_mut(chunk_blocks).enumerate() {
                let init = &init;
                let run_block = &run_block;
                let lowest_failed = &lowest_failed;
                let master = &master;
                scope.spawn(move || {
                    let mut state = init();
                    for (j, slot) in chunk_slots.iter_mut().enumerate() {
                        let b = chunk_idx * chunk_blocks + j;
                        if b > lowest_failed.load(Ordering::Relaxed) {
                            continue;
                        }
                        let mut buf = Vec::with_capacity(len_of(b));
                        let result = run_block(
                            &mut state,
                            master,
                            (b * block_size) as u64,
                            len_of(b),
                            &mut buf,
                        );
                        *slot = Some(match result {
                            Ok(()) => Ok(buf),
                            Err(e) => {
                                lowest_failed.fetch_min(b, Ordering::Relaxed);
                                Err(e)
                            }
                        });
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(count);
        for slot in slots {
            match slot.expect("block slots below the first error are always filled") {
                Ok(mut buf) => out.append(&mut buf),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_and_thread_independent() {
        let job =
            |i: usize, rng: &mut Pcg32| -> Result<(usize, u64), ()> { Ok((i, rng.next_u64())) };
        let mut rng1 = Pcg32::seed_from_u64(7);
        let seq = Engine::new(1).run_particles(37, &mut rng1, job).unwrap();
        for threads in [2, 3, 4, 8, 64] {
            let mut rng_n = Pcg32::seed_from_u64(7);
            let par = Engine::new(threads)
                .run_particles(37, &mut rng_n, job)
                .unwrap();
            assert_eq!(seq, par, "thread count {threads} changed the results");
            // The master RNG is advanced identically.
            assert_eq!(rng1, rng_n);
        }
        assert!(seq.iter().enumerate().all(|(i, (j, _))| i == *j));
    }

    #[test]
    fn successive_calls_use_fresh_substreams() {
        let job = |_: usize, rng: &mut Pcg32| -> Result<u64, ()> { Ok(rng.next_u64()) };
        let mut rng = Pcg32::seed_from_u64(1);
        let engine = Engine::new(4);
        let first = engine.run_particles(8, &mut rng, job).unwrap();
        let second = engine.run_particles(8, &mut rng, job).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn lowest_index_error_wins_regardless_of_threads() {
        let job = |i: usize, _: &mut Pcg32| -> Result<usize, usize> {
            if i % 5 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        };
        for threads in [1, 4] {
            let mut rng = Pcg32::seed_from_u64(0);
            let err = Engine::new(threads)
                .run_particles(20, &mut rng, job)
                .unwrap_err();
            assert_eq!(err, 3, "threads {threads}");
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker_and_never_changes_results() {
        // The state counts how many jobs its worker has run; results must
        // not depend on it, but the counter proves reuse happened.
        let job = |state: &mut usize, i: usize, rng: &mut Pcg32| -> Result<(usize, u64), ()> {
            *state += 1;
            Ok((i, rng.next_u64()))
        };
        let mut rng1 = Pcg32::seed_from_u64(11);
        let seq = Engine::new(1)
            .run_particles_with(24, &mut rng1, || 0usize, job)
            .unwrap();
        for threads in [2, 4, 8] {
            let mut rng_n = Pcg32::seed_from_u64(11);
            let par = Engine::new(threads)
                .run_particles_with(24, &mut rng_n, || 0usize, job)
                .unwrap();
            assert_eq!(seq, par, "worker state leaked into results");
            assert_eq!(rng1, rng_n);
        }
        // Sequentially, one state serves every job.
        let counter = std::sync::Mutex::new(Vec::new());
        let mut rng = Pcg32::seed_from_u64(0);
        Engine::new(1)
            .run_particles_with(
                5,
                &mut rng,
                || 0usize,
                |state, i, _| -> Result<(), ()> {
                    *state += 1;
                    if i == 4 {
                        counter.lock().unwrap().push(*state);
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(*counter.lock().unwrap(), vec![5]);
    }

    #[test]
    fn block_driver_matches_per_job_driver_bit_for_bit() {
        let job = |_: &mut (), i: usize, rng: &mut Pcg32| -> Result<(usize, u64), ()> {
            Ok((i, rng.next_u64()))
        };
        let mut rng = Pcg32::seed_from_u64(42);
        let reference = Engine::new(1)
            .run_particles_with(100, &mut rng, || (), job)
            .unwrap();
        let rng_after = rng.clone();
        for block in [1, 3, 7, 64, 256] {
            for threads in [1, 4] {
                let mut rng = Pcg32::seed_from_u64(42);
                let got = Engine::new(threads)
                    .run_particle_blocks_with(
                        100,
                        block,
                        &mut rng,
                        || (),
                        |_, master, first, len, out| -> Result<(), ()> {
                            for i in 0..len {
                                let idx = first as usize + i;
                                let mut sub = master.split(first + i as u64);
                                out.push((idx, sub.next_u64()));
                            }
                            Ok(())
                        },
                    )
                    .unwrap();
                assert_eq!(reference, got, "block {block}, threads {threads}");
                assert_eq!(rng_after, rng, "master advance differs");
            }
        }
    }

    #[test]
    fn block_driver_reports_lowest_block_error() {
        for block in [1, 4, 16] {
            for threads in [1, 4] {
                let mut rng = Pcg32::seed_from_u64(0);
                let err = Engine::new(threads)
                    .run_particle_blocks_with(
                        40,
                        block,
                        &mut rng,
                        || (),
                        |_, _, first, len, out: &mut Vec<u64>| -> Result<(), u64> {
                            for i in 0..len {
                                let idx = first + i as u64;
                                if idx % 13 == 7 {
                                    return Err(idx);
                                }
                                out.push(idx);
                            }
                            Ok(())
                        },
                    )
                    .unwrap_err();
                assert_eq!(err, 7, "block {block}, threads {threads}");
            }
        }
    }

    #[test]
    fn degenerate_counts_and_thread_clamping() {
        let job = |i: usize, _: &mut Pcg32| -> Result<usize, ()> { Ok(i) };
        let mut rng = Pcg32::seed_from_u64(0);
        assert_eq!(
            Engine::new(0).num_threads(),
            1,
            "thread count clamps to one"
        );
        assert!(Engine::new(8)
            .run_particles(0, &mut rng, job)
            .unwrap()
            .is_empty());
        assert_eq!(
            Engine::new(8).run_particles(1, &mut rng, job).unwrap(),
            vec![0]
        );
        // More threads than jobs still covers every index exactly once.
        assert_eq!(
            Engine::new(64).run_particles(3, &mut rng, job).unwrap(),
            vec![0, 1, 2]
        );
    }
}
