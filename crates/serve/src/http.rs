//! A small HTTP/1.1 server (and loopback client) over `std::net`.
//!
//! No async runtime and no external crates: a blocking
//! [`TcpListener`] accept loop hands connections to a fixed pool of worker
//! threads over a channel.  Each worker owns a connection until it closes —
//! requests on one connection are served back-to-back (keep-alive), bodies
//! are framed by `Content-Length`, and responses always carry an exact
//! `Content-Length` so clients can pipeline reads.
//!
//! The server supports:
//!
//! * **port 0** — bind to an ephemeral port and read the real one back
//!   from [`Server::local_addr`], which is how every test and benchmark
//!   boots an isolated instance;
//! * **keep-alive** — HTTP/1.1 connections persist by default
//!   (`Connection: close` honoured, HTTP/1.0 closes unless asked);
//! * **graceful shutdown** — [`Server::shutdown`] stops accepting, wakes
//!   the accept loop, lets workers finish their in-flight connections, and
//!   joins every thread.
//!
//! Limits are deliberate: bodies over [`MAX_BODY_BYTES`] get a 413,
//! `Transfer-Encoding: chunked` requests a 501, reads time out after
//! [`READ_TIMEOUT`] so a slow-loris peer cannot pin a worker forever, and
//! writes time out after [`WRITE_TIMEOUT`] so a peer that stops *reading*
//! cannot either.
//!
//! **Admission control**: the accept loop dispatches connections to the
//! workers over a *bounded* queue ([`ServerConfig::queue_capacity`]).
//! When the queue is full the connection is shed at the door with a
//! minimal `429 Too Many Requests` + `Retry-After` JSON response (stable
//! code `server.overloaded`) instead of queueing without bound — the
//! server degrades by refusing work it cannot start, never by collapsing.
//! [`Server::shutdown_with_deadline`] adds graceful drain: stop
//! accepting, let in-flight work finish under a deadline, then fire a
//! caller-supplied cancellation hook for whatever is still running.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum accepted request-body size (1 MiB).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Default socket read timeout; a peer that stalls longer than this
/// mid-request (or sits idle on a keep-alive connection) is disconnected.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Default socket write timeout; a peer that accepts a connection but
/// stops draining its receive window is disconnected rather than pinning
/// a worker in `write_all`.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default bound on connections queued between the accept loop and the
/// workers; connection number `queue_capacity + 1` is shed with a 429.
pub const DEFAULT_QUEUE_CAPACITY: usize = 128;

/// Maximum requests served on one keep-alive connection.
const MAX_KEEPALIVE_REQUESTS: usize = 10_000;

/// Maximum bytes of one request-head line (request line or header line);
/// longer lines are rejected so an endless unterminated line cannot grow
/// a buffer without bound.
const MAX_HEAD_LINE_BYTES: u64 = 8 * 1024;

/// Maximum header lines per request.
const MAX_HEADER_LINES: usize = 100;

/// Read budget for draining a shed connection's request before the 429
/// is written; deliberately short so a dribbling client cannot hold the
/// shedder thread for the full [`READ_TIMEOUT`].
const SHED_READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Connections allowed to wait for the shedder thread; overflow beyond
/// this is dropped outright so a connection storm cannot grow the
/// server's file-descriptor usage without bound.
const SHED_PENDING_MAX: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// The query string after `?`, if any (undecoded).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of the given header (name matched
    /// case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers to send verbatim.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The request handler a [`Server`] dispatches to.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Tuning knobs for [`Server::bind_with_config`]; [`Default`] matches the
/// historical [`Server::bind`] behaviour except that the dispatch queue is
/// bounded at [`DEFAULT_QUEUE_CAPACITY`] instead of unbounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker (connection-handling) threads; clamped to at least 1.
    pub workers: usize,
    /// Connections allowed to wait between accept and dispatch before the
    /// server sheds with a 429; clamped to at least 1.
    pub queue_capacity: usize,
    /// The `Retry-After` value (whole seconds) sent on shed responses.
    pub retry_after_secs: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Incremented once per connection shed at the admission queue, so the
    /// serving layer can surface `queue_sheds_total` in its metrics.
    pub shed_counter: Option<Arc<AtomicU64>>,
    /// Flight recorder the transport reports `http.read` / `http.write`
    /// phase timings to.  The read time is stashed thread-locally before
    /// the handler runs (the trace does not exist yet); the write time is
    /// attributed after the handler's trace has finished.
    pub recorder: Option<Arc<ppl_obs::Recorder>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            retry_after_secs: 1,
            read_timeout: READ_TIMEOUT,
            write_timeout: WRITE_TIMEOUT,
            shed_counter: None,
            recorder: None,
        }
    }
}

/// A running HTTP server; dropping it without [`Server::shutdown`] leaves
/// the threads serving until the process exits (what the `ppl-serve`
/// binary wants), shutting down joins them (what tests want).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Connections currently owned by a worker (being served).
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop plus `workers` connection-handling threads, with every
    /// other knob at its [`ServerConfig`] default.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize, handler: Handler) -> io::Result<Server> {
        Server::bind_with_config(
            addr,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
            handler,
        )
    }

    /// Binds `addr` and starts the accept loop plus worker pool under
    /// explicit [`ServerConfig`] limits.
    ///
    /// The accept loop never blocks on the workers: when
    /// [`ServerConfig::queue_capacity`] connections are already waiting,
    /// the next connection is answered directly with a one-line
    /// `429 server.overloaded` JSON response carrying `Retry-After`, and
    /// dropped.  Shedding at the door costs one small write instead of a
    /// worker, so the server's latency for *accepted* requests stays flat
    /// under arbitrary connection storms.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        handler: Handler,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        // The channel itself stays unbounded; `queued` enforces the bound
        // from the accept side so shedding never blocks on a lock.
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        let queue_capacity = config.queue_capacity.max(1);
        let read_timeout = config.read_timeout;
        let write_timeout = config.write_timeout;
        let retry_after_secs = config.retry_after_secs;
        let shed_counter = config.shed_counter.clone();
        let recorder = config.recorder.clone();

        let mut worker_handles: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let queued = Arc::clone(&queued);
                let active = Arc::clone(&active);
                let recorder = recorder.clone();
                std::thread::spawn(move || loop {
                    // Holding the lock only for the recv keeps the other
                    // workers free to take the next connection.
                    let conn = match rx.lock().expect("worker queue poisoned").recv() {
                        Ok(conn) => conn,
                        Err(_) => return, // accept loop gone: shut down
                    };
                    queued.fetch_sub(1, Ordering::SeqCst);
                    active.fetch_add(1, Ordering::SeqCst);
                    serve_connection(
                        conn,
                        &handler,
                        &stop,
                        read_timeout,
                        write_timeout,
                        recorder.as_ref(),
                    );
                    active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();

        // Shed connections are answered on their own thread: the 429 can
        // only be delivered reliably after the client's request bytes are
        // read (closing a socket with unread data sends a TCP reset that
        // can destroy the in-flight response), and that read must never
        // block the accept loop.
        let (shed_tx, shed_rx) = mpsc::channel::<TcpStream>();
        let shed_pending = Arc::new(AtomicUsize::new(0));
        let shedder_pending = Arc::clone(&shed_pending);
        worker_handles.push(std::thread::spawn(move || {
            while let Ok(conn) = shed_rx.recv() {
                shed_connection(conn, retry_after_secs, write_timeout);
                shedder_pending.fetch_sub(1, Ordering::SeqCst);
            }
        }));

        let accept_stop = Arc::clone(&stop);
        let accept_queued = Arc::clone(&queued);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break; // the shutdown poke or a late client; stop now
                }
                match conn {
                    Ok(conn) => {
                        if accept_queued.load(Ordering::SeqCst) >= queue_capacity {
                            if let Some(counter) = &shed_counter {
                                counter.fetch_add(1, Ordering::SeqCst);
                            }
                            if shed_pending.fetch_add(1, Ordering::SeqCst) >= SHED_PENDING_MAX {
                                // The shedder itself is saturated: drop the
                                // connection outright rather than hoard fds.
                                shed_pending.fetch_sub(1, Ordering::SeqCst);
                            } else if shed_tx.send(conn).is_err() {
                                break;
                            }
                            continue;
                        }
                        accept_queued.fetch_add(1, Ordering::SeqCst);
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` (and `shed_tx`) here wakes every idle worker
            // and the shedder with RecvError.
        });

        Ok(Server {
            local_addr,
            stop,
            active,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The address the listener actually bound (the real port when bound
    /// with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served (the drain gauge).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight requests finish; idle keep-alive connections are closed
    /// at their next read (bounded by the configured read timeout).
    pub fn shutdown(mut self) {
        self.stop_accepting();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful drain: stops accepting, waits up to `drain` for in-flight
    /// connections to finish, then calls `on_deadline` (the caller's
    /// cancellation hook — e.g. raising the app's drain token so stuck
    /// inference aborts cooperatively) and joins the workers.
    ///
    /// `on_deadline` fires only when the drain deadline passes with
    /// connections still active; a quiet server shuts down exactly like
    /// [`Server::shutdown`].  Responses written while stopping advertise
    /// `Connection: close`.
    pub fn shutdown_with_deadline(mut self, drain: Duration, on_deadline: impl FnOnce()) {
        self.stop_accepting();
        let deadline = Instant::now() + drain;
        while self.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if self.active.load(Ordering::SeqCst) > 0 {
            on_deadline();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Raises the stop flag, wakes the accept loop, and joins it; after
    /// this returns no new connection will be dispatched.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Refuses one connection at the admission queue (runs on the dedicated
/// shedder thread): reads the client's request — under the short
/// [`SHED_READ_TIMEOUT`] so a dribbling peer cannot monopolise the
/// thread — then answers a minimal 429 JSON response with `Retry-After`
/// and closes (`Connection: close`).
///
/// The read comes *first* because closing a socket with unread request
/// bytes in the receive buffer sends a TCP reset, which can destroy the
/// already-written 429 before the client reads it — the client would see
/// a connection error instead of the retryable refusal.
fn shed_connection(conn: TcpStream, retry_after_secs: u64, write_timeout: Duration) {
    let _ = conn.set_read_timeout(Some(SHED_READ_TIMEOUT));
    let _ = conn.set_write_timeout(Some(write_timeout));
    let _ = conn.set_nodelay(true);
    let mut reader = BufReader::new(match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    });
    // The outcome is deliberately ignored: a malformed or half-sent
    // request still gets the 429 over whatever was drained.
    let _ = read_request(&mut reader);
    let mut writer = conn;
    let body = format!(
        "{{\"error\":{{\"code\":\"server.overloaded\",\"message\":\"admission queue full; retry after {retry_after_secs} second(s)\"}}}}"
    );
    let response =
        Response::json(429, body).with_header("Retry-After", &retry_after_secs.to_string());
    let _ = write_response(&mut writer, &response, false);
}

/// Serves one connection until it closes, errors, or the server stops.
fn serve_connection(
    conn: TcpStream,
    handler: &Handler,
    stop: &AtomicBool,
    read_timeout: Duration,
    write_timeout: Duration,
    recorder: Option<&Arc<ppl_obs::Recorder>>,
) {
    let _ = conn.set_read_timeout(Some(read_timeout));
    let _ = conn.set_write_timeout(Some(write_timeout));
    let _ = conn.set_nodelay(true);
    let mut reader = BufReader::new(match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    });
    let mut writer = conn;
    for served in 0..MAX_KEEPALIVE_REQUESTS {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let last_allowed = served + 1 == MAX_KEEPALIVE_REQUESTS;
        let tracing = recorder.is_some_and(|r| r.enabled());
        let read_started = tracing.then(Instant::now);
        let (request, keep_alive) = match read_request(&mut reader) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => return, // clean EOF between requests
            Err(ReadError::BadRequest(msg)) => {
                let _ = write_response(&mut writer, &Response::text(400, &msg), false);
                return;
            }
            Err(ReadError::TooLarge) => {
                let _ = write_response(
                    &mut writer,
                    &Response::text(413, "request body too large"),
                    false,
                );
                return;
            }
            Err(ReadError::Unsupported(msg)) => {
                let _ = write_response(&mut writer, &Response::text(501, &msg), false);
                return;
            }
            Err(ReadError::Io) => return,
        };
        // Stash the read time for the trace the handler is about to begin
        // (the trace cannot exist while the request is still being read).
        // Keep-alive idle time between requests is included: to the
        // client, it is all time-to-read-my-request.
        if let Some(started) = read_started {
            ppl_obs::trace::set_pending_read_nanos(
                started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            );
        }
        // A panicking handler must not take the worker thread (and the
        // pool's capacity) with it: catch it and answer a structured 500.
        // (The serving layer catches panics inside its own handler too, so
        // it can count them; this is the transport-level backstop for
        // handlers that don't.)
        let response =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request))) {
                Ok(response) => response,
                Err(_) => Response::json(
                    500,
                    "{\"error\":{\"code\":\"server.panic\",\
                     \"message\":\"internal handler panic\"}}"
                        .to_string(),
                ),
            };
        // The connection's final response (stop requested, the keep-alive
        // budget exhausted, or a handler that asked for `Connection:
        // close` — e.g. a drain rejection) honestly advertises the close
        // instead of resetting the client's next request.
        let keep_alive = keep_alive
            && !last_allowed
            && !stop.load(Ordering::SeqCst)
            && !response_requests_close(&response);
        let write_started = tracing.then(Instant::now);
        let write_ok = write_response(&mut writer, &response, keep_alive).is_ok();
        // Attribute the socket write to the trace the handler just
        // finished (its identity is handed off thread-locally).
        if let (Some(started), Some(rec)) = (write_started, recorder) {
            if let Some((trace_id, route_index)) = ppl_obs::trace::take_last_finished() {
                rec.note_http_write(
                    &trace_id,
                    route_index,
                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                );
            }
        }
        if !write_ok || !keep_alive {
            return;
        }
    }
}

enum ReadError {
    /// Malformed request head or framing.
    BadRequest(String),
    /// Body exceeds [`MAX_BODY_BYTES`].
    TooLarge,
    /// A framing mechanism this server does not implement.
    Unsupported(String),
    /// The socket failed or timed out.
    Io,
}

/// Reads one `\n`-terminated head line with [`MAX_HEAD_LINE_BYTES`]
/// enforced; `Ok(None)` on immediate EOF.  The advertised body limit is
/// worthless if the *head* can grow a buffer without bound.
fn read_head_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    match reader
        .by_ref()
        .take(MAX_HEAD_LINE_BYTES)
        .read_line(&mut line)
    {
        Ok(0) => Ok(None),
        // A line that filled the whole budget without a terminator is an
        // attack or a garbage peer, not a request.
        Ok(_) if !line.ends_with('\n') && line.len() as u64 >= MAX_HEAD_LINE_BYTES => {
            Err(ReadError::BadRequest(format!(
                "request head line longer than {MAX_HEAD_LINE_BYTES} bytes"
            )))
        }
        Ok(_) => Ok(Some(line)),
        Err(_) => Err(ReadError::Io),
    }
}

/// Reads one request; `Ok(None)` on clean EOF before a request line.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<(Request, bool)>, ReadError> {
    let line = match read_head_line(reader)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let line = line.trim_end();
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(ReadError::BadRequest("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol version '{version}'"
        )));
    }

    let mut headers = Vec::new();
    loop {
        if headers.len() >= MAX_HEADER_LINES {
            return Err(ReadError::BadRequest(format!(
                "more than {MAX_HEADER_LINES} header lines"
            )));
        }
        let header_line = match read_head_line(reader)? {
            Some(line) => line,
            None => return Err(ReadError::BadRequest("truncated headers".into())),
        };
        let header_line = header_line.trim_end();
        if header_line.is_empty() {
            break;
        }
        match header_line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => return Err(ReadError::BadRequest("malformed header line".into())),
        }
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ReadError::Unsupported(
            "Transfer-Encoding is not supported; frame bodies with Content-Length".into(),
        ));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest("invalid Content-Length".into()))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|_| ReadError::Io)?;
    }

    // HTTP/1.1 defaults to keep-alive; 1.0 defaults to close.
    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => version == "HTTP/1.1",
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
            body,
        },
        keep_alive,
    )))
}

/// Whether the handler attached its own `Connection: close` header — a
/// request to drop the connection after this response (the framing
/// `Connection` header is owned by [`write_response`], which folds the
/// request in rather than emitting a duplicate).
fn response_requests_close(response: &Response) -> bool {
    response
        .headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close"))
}

fn write_response(writer: &mut TcpStream, response: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        // The framing Connection header above is authoritative.
        if name.eq_ignore_ascii_case("connection") {
            continue;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// A client-side response: status code, lowercased headers, body bytes.
pub type ClientResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// A persistent (keep-alive) client connection for tests, benchmarks, and
/// the example client.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
}

impl ClientConn {
    /// Connects to the server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(ClientConn { stream })
    }

    /// Sends one request and reads the full response, keeping the
    /// connection open for the next call.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed response framing.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ppl-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        read_client_response(&mut self.stream)
    }
}

fn read_client_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line)?;
        let header_line = header_line.trim_end();
        if header_line.is_empty() {
            break;
        }
        if let Some((name, value)) = header_line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "invalid Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    // Dropping the BufReader discards any read-ahead, which is safe only
    // because requests are strictly serialised per connection: the server
    // has sent exactly one response, consumed in full above.
    Ok((status, headers, body))
}

/// One-shot convenience request on a fresh connection (`Connection:
/// close` semantics — the connection is dropped after the response).
///
/// # Errors
///
/// Propagates socket failures and malformed response framing.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut conn = ClientConn::connect(addr)?;
    conn.send(method, path, body)
}
