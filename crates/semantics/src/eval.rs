//! Big-step operational semantics with guidance traces and weights
//! (Fig. 8 / Fig. 11), plus the probability-free *reduction* relation
//! (Fig. 14) used to characterise possible traces.
//!
//! The judgment `V | (a : σ_a); (b : σ_b) ⊢ m ⇓_w v` is implemented by
//! consuming the two traces front-to-back with cursors while accumulating a
//! **log**-weight (log-densities are summed rather than densities
//! multiplied, for numerical robustness; the paper's `w` is `exp` of ours).

use crate::trace::{Message, Trace, TraceCursor};
use crate::value::{Bindings, Env, Value};
use ppl_dist::{Distribution, Sample};
use ppl_syntax::ast::{BinOp, Cmd, Dir, DistExpr, Expr, Ident, Proc, Program, UnOp};
use std::fmt;

/// An evaluation error.
///
/// `Stuck` corresponds to configurations for which no evaluation rule
/// applies (e.g. the trace supplies a message of the wrong kind, or a value
/// outside the distribution's support); the density function `P_m` maps
/// stuck configurations to weight `0`.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// No rule applies; the payload explains why.
    Stuck(String),
    /// A dynamic type error in the deterministic fragment (cannot happen for
    /// well-typed programs; kept for robustness of the interpreter API).
    Dynamic(String),
    /// Reference to an unknown procedure.
    UnknownProc(String),
    /// A distribution was constructed with invalid parameters at runtime.
    BadDistribution(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck(m) => write!(f, "evaluation stuck: {m}"),
            EvalError::Dynamic(m) => write!(f, "dynamic type error: {m}"),
            EvalError::UnknownProc(m) => write!(f, "unknown procedure: {m}"),
            EvalError::BadDistribution(m) => write!(f, "invalid distribution: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of evaluating a command against guidance traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The resulting value.
    pub value: Value,
    /// The accumulated log-weight (`ln w`); `-inf` encodes weight zero.
    pub log_weight: f64,
}

/// Whether to run the weighted evaluation relation or the probability-free
/// reduction relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The evaluation relation `⇓_w` of Fig. 8/11.
    Evaluate,
    /// The reduction relation `⇓_red` of Fig. 14 (weights ignored; a branch
    /// selection in the trace that contradicts the predicate is *stuck*
    /// rather than weight-zero).
    Reduce,
}

/// Evaluates pure expressions (`V ⊢ e ⇓ v`) against a persistent [`Env`].
///
/// A convenience wrapper over [`eval_expr_in`]; the coroutine hot loop
/// calls [`eval_expr_in`] directly on its reusable
/// [`ValueStack`](crate::value::ValueStack).
///
/// # Errors
///
/// Returns [`EvalError::Dynamic`] on unbound variables or operator
/// application at the wrong runtime types, and
/// [`EvalError::BadDistribution`] when a distribution constructor receives
/// invalid parameters.
pub fn eval_expr(env: &Env, e: &Expr) -> Result<Value, EvalError> {
    eval_expr_in(&mut env.clone(), e)
}

/// Evaluates pure expressions against any [`Bindings`] context.
///
/// Expression-local scopes (`let`, closure application) are pushed onto the
/// context and restored before returning, so the context is left exactly as
/// it was found.
///
/// # Errors
///
/// Same contract as [`eval_expr`].
pub fn eval_expr_in<B: Bindings>(env: &mut B, e: &Expr) -> Result<Value, EvalError> {
    match e {
        Expr::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| EvalError::Dynamic(format!("unbound variable '{x}'"))),
        Expr::Triv => Ok(Value::Unit),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Real(r) => Ok(Value::Real(*r)),
        Expr::Nat(n) => Ok(Value::Nat(*n)),
        Expr::If(c, a, b) => {
            let cond = eval_expr_in(env, c)?
                .as_bool()
                .ok_or_else(|| EvalError::Dynamic("conditional on a non-Boolean".into()))?;
            if cond {
                eval_expr_in(env, a)
            } else {
                eval_expr_in(env, b)
            }
        }
        Expr::BinOp(op, a, b) => {
            let va = eval_expr_in(env, a)?;
            let vb = eval_expr_in(env, b)?;
            eval_binop(*op, &va, &vb)
        }
        Expr::UnOp(op, a) => {
            let va = eval_expr_in(env, a)?;
            eval_unop(*op, &va)
        }
        Expr::Lam(x, _, body) => Ok(Value::Closure {
            env: env.capture(),
            param: *x,
            body: body.clone(),
        }),
        Expr::App(f, a) => {
            let vf = eval_expr_in(env, f)?;
            let va = eval_expr_in(env, a)?;
            match vf {
                Value::Closure { env, param, body } => {
                    let mut inner = env.extended(param, va);
                    eval_expr_in(&mut inner, &body)
                }
                other => Err(EvalError::Dynamic(format!(
                    "application of non-function value {other}"
                ))),
            }
        }
        Expr::Let(x, e1, e2) => {
            let v1 = eval_expr_in(env, e1)?;
            let mark = env.mark();
            env.push(*x, v1);
            let result = eval_expr_in(env, e2);
            env.restore(mark);
            result
        }
        Expr::Dist(d) => eval_dist_in(env, d).map(Value::Dist),
    }
}

fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        And | Or => {
            let (x, y) = match (a.as_bool(), b.as_bool()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::Dynamic(format!(
                        "logical operator on {a} and {b}"
                    )))
                }
            };
            Ok(Value::Bool(if op == And { x && y } else { x || y }))
        }
        Eq => {
            let r = match (a, b) {
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Nat(x), Value::Nat(y)) => x == y,
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => {
                        return Err(EvalError::Dynamic(format!(
                            "equality on incomparable values {a} and {b}"
                        )))
                    }
                },
            };
            Ok(Value::Bool(r))
        }
        Lt | Le | Gt | Ge => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::Dynamic(format!(
                        "comparison on non-numeric values {a} and {b}"
                    )))
                }
            };
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div => {
            if let (Value::Nat(x), Value::Nat(y)) = (a, b) {
                return match op {
                    Add => Ok(Value::Nat(x + y)),
                    Mul => Ok(Value::Nat(x * y)),
                    _ => Err(EvalError::Dynamic(
                        "subtraction/division on naturals".into(),
                    )),
                };
            }
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::Dynamic(format!(
                        "arithmetic on non-numeric values {a} and {b}"
                    )))
                }
            };
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                _ => unreachable!(),
            };
            Ok(Value::Real(r))
        }
    }
}

fn eval_unop(op: UnOp, a: &Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => a
            .as_bool()
            .map(|b| Value::Bool(!b))
            .ok_or_else(|| EvalError::Dynamic(format!("'!' on {a}"))),
        UnOp::Neg => a
            .as_f64()
            .map(|x| Value::Real(-x))
            .ok_or_else(|| EvalError::Dynamic(format!("negation on {a}"))),
        UnOp::Exp => a
            .as_f64()
            .map(|x| Value::Real(x.exp()))
            .ok_or_else(|| EvalError::Dynamic(format!("exp on {a}"))),
        UnOp::Ln => a
            .as_f64()
            .map(|x| Value::Real(x.ln()))
            .ok_or_else(|| EvalError::Dynamic(format!("ln on {a}"))),
        UnOp::Sqrt => a
            .as_f64()
            .map(|x| Value::Real(x.sqrt()))
            .ok_or_else(|| EvalError::Dynamic(format!("sqrt on {a}"))),
        UnOp::ToReal => a
            .as_f64()
            .map(Value::Real)
            .ok_or_else(|| EvalError::Dynamic(format!("real(..) on {a}"))),
    }
}

/// Evaluates a distribution expression to a runtime [`Distribution`]
/// against a persistent [`Env`] (wrapper over [`eval_dist_in`]).
pub fn eval_dist(env: &Env, d: &DistExpr) -> Result<Distribution, EvalError> {
    eval_dist_in(&mut env.clone(), d)
}

/// Evaluates a distribution expression against any [`Bindings`] context.
///
/// Scalar constructors evaluate their parameters straight into locals —
/// no intermediate collection — so constructing a `Normal`/`Ber`/… at a
/// sample site allocates nothing; only a categorical with *variable*
/// weights pays one shared-buffer allocation (constant-weight sites are
/// folded away entirely by the program compiler).
pub fn eval_dist_in<B: Bindings>(env: &mut B, d: &DistExpr) -> Result<Distribution, EvalError> {
    fn f64_arg<B: Bindings>(env: &mut B, e: &Expr) -> Result<f64, EvalError> {
        eval_expr_in(env, e)?
            .as_f64()
            .ok_or_else(|| EvalError::Dynamic("distribution parameter is not numeric".into()))
    }
    let bad = |e: ppl_dist::DistError| EvalError::BadDistribution(e.to_string());
    match d {
        DistExpr::Bernoulli(p) => Distribution::bernoulli(f64_arg(env, p)?).map_err(bad),
        DistExpr::Uniform => Ok(Distribution::uniform()),
        DistExpr::Beta(a, b) => Distribution::beta(f64_arg(env, a)?, f64_arg(env, b)?).map_err(bad),
        DistExpr::Gamma(a, b) => {
            Distribution::gamma(f64_arg(env, a)?, f64_arg(env, b)?).map_err(bad)
        }
        DistExpr::Normal(a, b) => {
            Distribution::normal(f64_arg(env, a)?, f64_arg(env, b)?).map_err(bad)
        }
        DistExpr::Categorical(ws) => {
            let weights = ws
                .iter()
                .map(|e| f64_arg(env, e))
                .collect::<Result<Vec<_>, _>>()?;
            Distribution::categorical(weights).map_err(bad)
        }
        DistExpr::Geometric(p) => Distribution::geometric(f64_arg(env, p)?).map_err(bad),
        DistExpr::Poisson(l) => Distribution::poisson(f64_arg(env, l)?).map_err(bad),
    }
}

/// A trace-driven evaluator for commands of a program.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    program: &'a Program,
    mode: Mode,
}

struct ChannelState<'c, 't> {
    name: Option<Ident>,
    cursor: &'c mut TraceCursor<'t>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for the weighted evaluation relation.
    pub fn new(program: &'a Program) -> Self {
        Evaluator {
            program,
            mode: Mode::Evaluate,
        }
    }

    /// Creates an evaluator for the probability-free reduction relation.
    pub fn reducer(program: &'a Program) -> Self {
        Evaluator {
            program,
            mode: Mode::Reduce,
        }
    }

    /// Runs procedure `proc_name` with the given argument values against a
    /// trace for its consumed channel and a trace for its provided channel.
    ///
    /// The traces are the *bodies* of the top-level judgment: unlike an
    /// inner `call`, the top-level run does not consume `fold` markers.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Stuck`] when the traces cannot drive the
    /// program to completion (wrong message kinds, leftover messages,
    /// values outside distribution supports), and other variants for
    /// dynamic errors.
    pub fn run_proc(
        &self,
        proc_name: &Ident,
        args: &[Value],
        consumed_trace: &Trace,
        provided_trace: &Trace,
    ) -> Result<Evaluation, EvalError> {
        let proc = self.lookup_proc(proc_name)?;
        if proc.params.len() != args.len() {
            return Err(EvalError::Dynamic(format!(
                "procedure '{proc_name}' expects {} argument(s), got {}",
                proc.params.len(),
                args.len()
            )));
        }
        let env = Env::from_bindings(
            proc.params
                .iter()
                .map(|(x, _)| *x)
                .zip(args.iter().cloned()),
        );
        let mut a_cursor = consumed_trace.cursor();
        let mut b_cursor = provided_trace.cursor();
        let result = self.eval_cmd(proc, &env, &proc.body, &mut a_cursor, &mut b_cursor)?;
        if !a_cursor.is_exhausted() || !b_cursor.is_exhausted() {
            return Err(EvalError::Stuck(format!(
                "trailing guidance messages: {} left on the consumed channel, {} on the provided channel",
                a_cursor.remaining(),
                b_cursor.remaining()
            )));
        }
        Ok(result)
    }

    /// The log-density `ln P_m(σ_a, σ_b)` of a pair of traces under the
    /// program's entry procedure: `-inf` if the configuration is stuck.
    ///
    /// # Errors
    ///
    /// Propagates non-stuck errors (dynamic type errors, unknown
    /// procedures), which indicate a malformed program rather than an
    /// impossible trace.
    pub fn log_density(
        &self,
        proc_name: &Ident,
        args: &[Value],
        consumed_trace: &Trace,
        provided_trace: &Trace,
    ) -> Result<f64, EvalError> {
        match self.run_proc(proc_name, args, consumed_trace, provided_trace) {
            Ok(eval) => Ok(eval.log_weight),
            Err(EvalError::Stuck(_)) => Ok(f64::NEG_INFINITY),
            Err(other) => Err(other),
        }
    }

    fn lookup_proc(&self, name: &Ident) -> Result<&'a Proc, EvalError> {
        self.program
            .proc(name)
            .ok_or_else(|| EvalError::UnknownProc(name.to_string()))
    }

    fn eval_cmd<'t>(
        &self,
        proc: &Proc,
        env: &Env,
        cmd: &Cmd,
        a_cursor: &mut TraceCursor<'t>,
        b_cursor: &mut TraceCursor<'t>,
    ) -> Result<Evaluation, EvalError> {
        match cmd {
            Cmd::Ret(e) => Ok(Evaluation {
                value: eval_expr(env, e)?,
                log_weight: 0.0,
            }),
            Cmd::Bind { var, first, rest } => {
                let first_eval = self.eval_cmd(proc, env, first, a_cursor, b_cursor)?;
                let inner = env.extended(*var, first_eval.value);
                let rest_eval = self.eval_cmd(proc, &inner, rest, a_cursor, b_cursor)?;
                Ok(Evaluation {
                    value: rest_eval.value,
                    log_weight: first_eval.log_weight + rest_eval.log_weight,
                })
            }
            Cmd::Call { proc: callee, args } => {
                let callee_proc = self.lookup_proc(callee)?;
                let arg_values = args
                    .iter()
                    .map(|a| eval_expr(env, a))
                    .collect::<Result<Vec<_>, _>>()?;
                if callee_proc.params.len() != arg_values.len() {
                    return Err(EvalError::Dynamic(format!(
                        "procedure '{callee}' expects {} argument(s), got {}",
                        callee_proc.params.len(),
                        arg_values.len()
                    )));
                }
                // (EM:Call): the callee's channels start with a fold marker.
                if callee_proc.consumes.is_some() {
                    self.expect_fold(a_cursor, "consumed")?;
                }
                if callee_proc.provides.is_some() {
                    self.expect_fold(b_cursor, "provided")?;
                }
                let callee_env =
                    Env::from_bindings(callee_proc.params.iter().map(|(x, _)| *x).zip(arg_values));
                self.eval_cmd(
                    callee_proc,
                    &callee_env,
                    &callee_proc.body,
                    a_cursor,
                    b_cursor,
                )
            }
            Cmd::Sample { dir, chan, dist } => {
                let d = match eval_expr(env, dist)? {
                    Value::Dist(d) => d,
                    other => {
                        return Err(EvalError::Dynamic(format!(
                            "sample requires a distribution, found {other}"
                        )))
                    }
                };
                let mut a_state = ChannelState {
                    name: proc.consumes,
                    cursor: a_cursor,
                };
                let mut b_state = ChannelState {
                    name: proc.provides,
                    cursor: b_cursor,
                };
                let (cursor, expected_provider) = if a_state.name.as_ref() == Some(chan) {
                    // Consumed channel: the provider is the other coroutine,
                    // so a receive reads `valP`, a send reads `valC`.
                    (&mut a_state, *dir == Dir::Recv)
                } else if b_state.name.as_ref() == Some(chan) {
                    // Provided channel: we are the provider, so a send reads
                    // `valP` and a receive reads `valC`.
                    (&mut b_state, *dir == Dir::Send)
                } else {
                    return Err(EvalError::Dynamic(format!(
                        "channel '{chan}' is not declared by procedure '{}'",
                        proc.name
                    )));
                };
                let msg = cursor.cursor.pop().ok_or_else(|| {
                    EvalError::Stuck(format!("trace exhausted at sample on channel '{chan}'"))
                })?;
                let sample = match (msg, expected_provider) {
                    (Message::ValP(v), true) | (Message::ValC(v), false) => v,
                    (other, _) => {
                        return Err(EvalError::Stuck(format!(
                            "expected a sample message on channel '{chan}', found {other}"
                        )))
                    }
                };
                if !d.supports(&sample) {
                    return Err(EvalError::Stuck(format!(
                        "value {sample} is outside the support of {d}"
                    )));
                }
                let log_weight = match self.mode {
                    Mode::Evaluate => d.log_density(&sample),
                    Mode::Reduce => 0.0,
                };
                Ok(Evaluation {
                    value: Value::from_sample(sample),
                    log_weight,
                })
            }
            Cmd::Branch {
                dir,
                chan,
                pred,
                then_cmd,
                else_cmd,
            } => {
                let pred_value = match pred {
                    Some(p) => Some(
                        eval_expr(env, p)?
                            .as_bool()
                            .ok_or_else(|| EvalError::Dynamic("non-Boolean predicate".into()))?,
                    ),
                    None => None,
                };
                let on_consumed = if proc.consumes.as_ref() == Some(chan) {
                    true
                } else if proc.provides.as_ref() == Some(chan) {
                    false
                } else {
                    return Err(EvalError::Dynamic(format!(
                        "channel '{chan}' is not declared by procedure '{}'",
                        proc.name
                    )));
                };
                let cursor: &mut TraceCursor<'_> = if on_consumed { a_cursor } else { b_cursor };
                let msg = cursor.pop().ok_or_else(|| {
                    EvalError::Stuck(format!("trace exhausted at branch on channel '{chan}'"))
                })?;
                // Which message kind carries the selection depends on who
                // sends it: the provider (`dirP`) or the consumer (`dirC`).
                let provider_sends =
                    (on_consumed && *dir == Dir::Recv) || (!on_consumed && *dir == Dir::Send);
                let selection = match (msg, provider_sends) {
                    (Message::DirP(v), true) | (Message::DirC(v), false) => v,
                    (other, _) => {
                        return Err(EvalError::Stuck(format!(
                            "expected a branch selection on channel '{chan}', found {other}"
                        )))
                    }
                };
                let mut log_weight = 0.0;
                if let Some(pv) = pred_value {
                    // We send the selection: the trace must agree with the
                    // predicate value.  Evaluation mode scores the Iverson
                    // bracket; reduction mode is stuck on disagreement.
                    if pv != selection {
                        match self.mode {
                            Mode::Evaluate => log_weight = f64::NEG_INFINITY,
                            Mode::Reduce => {
                                return Err(EvalError::Stuck(format!(
                                    "branch selection {selection} contradicts the predicate value {pv} on channel '{chan}'"
                                )))
                            }
                        }
                    }
                }
                let chosen = if selection { then_cmd } else { else_cmd };
                let inner = self.eval_cmd(proc, env, chosen, a_cursor, b_cursor)?;
                Ok(Evaluation {
                    value: inner.value,
                    log_weight: log_weight + inner.log_weight,
                })
            }
        }
    }

    fn expect_fold(&self, cursor: &mut TraceCursor<'_>, which: &str) -> Result<(), EvalError> {
        match cursor.pop() {
            Some(Message::Fold) => Ok(()),
            Some(other) => Err(EvalError::Stuck(format!(
                "expected fold on the {which} channel, found {other}"
            ))),
            None => Err(EvalError::Stuck(format!(
                "trace exhausted while expecting fold on the {which} channel"
            ))),
        }
    }
}

/// Convenience wrapper: builds the pair of traces for Example 3.1/3.2-style
/// single commands given provider samples only.
pub fn trace_of_provider_samples(samples: &[Sample]) -> Trace {
    samples.iter().map(|s| Message::ValP(*s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn fig5_program() -> Program {
        parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let v <- sample recv latent (Gamma(2.0, 1.0));
              if send latent (v < 2.0) {
                let _ <- sample send obs (Normal(-1.0, 1.0));
                return v
              } else {
                let m <- sample recv latent (Beta(3.0, 1.0));
                let _ <- sample send obs (Normal(m, 1.0));
                return v
              }
            }
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
        .unwrap()
    }

    fn model_traces(x: f64, y: Option<f64>, z: f64) -> (Trace, Trace) {
        let mut latent = Trace::new();
        latent.push(Message::ValP(Sample::Real(x)));
        latent.push(Message::DirC(x < 2.0));
        if let Some(y) = y {
            latent.push(Message::ValP(Sample::Real(y)));
        }
        let obs = Trace::from_messages(vec![Message::ValP(Sample::Real(z))]);
        (latent, obs)
    }

    #[test]
    fn evaluate_fig1_model_then_branch() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        let (latent, obs) = model_traces(1.0, None, 0.8);
        let result = ev.run_proc(&"Model".into(), &[], &latent, &obs).unwrap();
        assert_eq!(result.value, Value::Real(1.0));
        // log w = log Gamma(2,1).pdf(1) + log Normal(-1,1).pdf(0.8)
        let expected = Distribution::gamma(2.0, 1.0).unwrap().log_density_f64(1.0)
            + Distribution::normal(-1.0, 1.0)
                .unwrap()
                .log_density_f64(0.8);
        assert!((result.log_weight - expected).abs() < 1e-12);
    }

    #[test]
    fn evaluate_fig1_model_else_branch() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        let (latent, obs) = model_traces(3.0, Some(0.9), 0.7);
        let result = ev.run_proc(&"Model".into(), &[], &latent, &obs).unwrap();
        assert_eq!(result.value, Value::Real(3.0));
        let expected = Distribution::gamma(2.0, 1.0).unwrap().log_density_f64(3.0)
            + Distribution::beta(3.0, 1.0).unwrap().log_density_f64(0.9)
            + Distribution::normal(0.9, 1.0).unwrap().log_density_f64(0.7);
        assert!((result.log_weight - expected).abs() < 1e-12);
    }

    #[test]
    fn guide_scores_same_latent_trace() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        // Guide provides latent; its consumed channel is absent.
        let latent = Trace::from_messages(vec![
            Message::ValP(Sample::Real(3.0)),
            Message::DirC(false),
            Message::ValP(Sample::Real(0.9)),
        ]);
        let result = ev
            .run_proc(&"Guide1".into(), &[], &Trace::new(), &latent)
            .unwrap();
        assert_eq!(result.value, Value::Unit);
        let expected = Distribution::gamma(1.0, 1.0).unwrap().log_density_f64(3.0)
            + Distribution::uniform().log_density_f64(0.9);
        assert!((result.log_weight - expected).abs() < 1e-12);
    }

    #[test]
    fn branch_mismatch_gives_zero_weight_in_eval_and_stuck_in_reduce() {
        let prog = fig5_program();
        // v = 1.0 (< 2) but the trace claims the else-branch was taken.
        let mut latent = Trace::new();
        latent.push(Message::ValP(Sample::Real(1.0)));
        latent.push(Message::DirC(false));
        latent.push(Message::ValP(Sample::Real(0.5)));
        let obs = Trace::from_messages(vec![Message::ValP(Sample::Real(0.8))]);
        let ev = Evaluator::new(&prog);
        let r = ev.run_proc(&"Model".into(), &[], &latent, &obs).unwrap();
        assert_eq!(r.log_weight, f64::NEG_INFINITY);
        let red = Evaluator::reducer(&prog);
        assert!(matches!(
            red.run_proc(&"Model".into(), &[], &latent, &obs),
            Err(EvalError::Stuck(_))
        ));
    }

    #[test]
    fn out_of_support_value_is_stuck_and_density_zero() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        let (latent, obs) = model_traces(-1.0, None, 0.8); // Gamma sample must be positive
        assert!(matches!(
            ev.run_proc(&"Model".into(), &[], &latent, &obs),
            Err(EvalError::Stuck(_))
        ));
        assert_eq!(
            ev.log_density(&"Model".into(), &[], &latent, &obs).unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn leftover_messages_are_stuck() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        let (mut latent, obs) = model_traces(1.0, None, 0.8);
        latent.push(Message::ValP(Sample::Real(0.5))); // extra message
        assert!(matches!(
            ev.run_proc(&"Model".into(), &[], &latent, &obs),
            Err(EvalError::Stuck(_))
        ));
    }

    #[test]
    fn wrong_message_kind_is_stuck() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        let latent = Trace::from_messages(vec![Message::DirC(true)]);
        let obs = Trace::new();
        assert!(matches!(
            ev.run_proc(&"Model".into(), &[], &latent, &obs),
            Err(EvalError::Stuck(_))
        ));
    }

    #[test]
    fn recursive_call_consumes_fold_markers() {
        let prog = parse_program(
            r#"
            proc Count(p : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < p) {
                return 0.0
              } else {
                let rest <- call Count(p);
                return rest + 1.0
              }
            }
        "#,
        )
        .unwrap();
        let ev = Evaluator::new(&prog);
        // Two failures then a success: u=0.9, u=0.8, u=0.1 with p=0.5.
        let mut latent = Trace::new();
        latent.push(Message::ValP(Sample::Real(0.9)));
        latent.push(Message::DirC(false));
        latent.push(Message::Fold);
        latent.push(Message::ValP(Sample::Real(0.8)));
        latent.push(Message::DirC(false));
        latent.push(Message::Fold);
        latent.push(Message::ValP(Sample::Real(0.1)));
        latent.push(Message::DirC(true));
        let result = ev
            .run_proc(&"Count".into(), &[Value::Real(0.5)], &latent, &Trace::new())
            .unwrap();
        assert_eq!(result.value, Value::Real(2.0));
        assert!((result.log_weight - 0.0).abs() < 1e-12); // all Unif densities are 1
    }

    #[test]
    fn example_3_1_weight() {
        // m1 = bnd(sample_rv{a}(Normal(0,1)); x. bnd(sample_sd{b}(Normal(x,1)); y. ret(x+y)))
        let prog = parse_program(
            r#"
            proc M1() : real consume a provide b {
              let x <- sample recv a (Normal(0.0, 1.0));
              let y <- sample send b (Normal(x, 1.0));
              return x + y
            }
        "#,
        )
        .unwrap();
        let ev = Evaluator::new(&prog);
        let a = trace_of_provider_samples(&[Sample::Real(1.0)]);
        let b = trace_of_provider_samples(&[Sample::Real(2.0)]);
        let r = ev.run_proc(&"M1".into(), &[], &a, &b).unwrap();
        assert_eq!(r.value, Value::Real(3.0));
        let phi = |x: f64| Distribution::normal(0.0, 1.0).unwrap().log_density_f64(x);
        // w = φ(1) · φ(1)  (the second sample scores Normal(1,1) at 2).
        assert!((r.log_weight - (phi(1.0) + phi(1.0))).abs() < 1e-12);
    }

    #[test]
    fn expression_evaluation_covers_operators() {
        let env = Env::from_bindings([("x".into(), Value::Real(2.0))]);
        let cases = [
            ("x + 1.0", Value::Real(3.0)),
            ("x * x - 1.0", Value::Real(3.0)),
            ("x / 4.0", Value::Real(0.5)),
            ("x < 3.0", Value::Bool(true)),
            ("x >= 3.0", Value::Bool(false)),
            ("x == 2.0", Value::Bool(true)),
            ("true && false", Value::Bool(false)),
            ("true || false", Value::Bool(true)),
            ("!true", Value::Bool(false)),
            ("-x", Value::Real(-2.0)),
            ("exp(0.0)", Value::Real(1.0)),
            ("ln(1.0)", Value::Real(0.0)),
            ("sqrt(4.0)", Value::Real(2.0)),
            ("real(3)", Value::Real(3.0)),
            ("1 + 2", Value::Nat(3)),
            ("2 * 3", Value::Nat(6)),
            ("if x < 3.0 then 1.0 else 0.0", Value::Real(1.0)),
            ("let y = x + 1.0 in y * 2.0", Value::Real(6.0)),
            ("()", Value::Unit),
        ];
        for (src, expected) in cases {
            let e = ppl_syntax::parse_expr(src).unwrap();
            assert_eq!(eval_expr(&env, &e).unwrap(), expected, "{src}");
        }
    }

    #[test]
    fn expression_evaluation_errors() {
        let env = Env::new();
        for src in ["y", "1.0 && true", "1 - 2", "Ber(2.0)"] {
            let e = ppl_syntax::parse_expr(src).unwrap();
            assert!(eval_expr(&env, &e).is_err(), "{src}");
        }
    }

    #[test]
    fn closures_capture_their_environment() {
        let env = Env::from_bindings([("k".into(), Value::Real(10.0))]);
        let e = ppl_syntax::parse_expr("let f = fn (x : real) => x + k in f(5.0)").unwrap();
        assert_eq!(eval_expr(&env, &e).unwrap(), Value::Real(15.0));
    }

    #[test]
    fn unknown_procedure_and_arity_errors() {
        let prog = fig5_program();
        let ev = Evaluator::new(&prog);
        assert!(matches!(
            ev.run_proc(&"Nope".into(), &[], &Trace::new(), &Trace::new()),
            Err(EvalError::UnknownProc(_))
        ));
        assert!(matches!(
            ev.run_proc(
                &"Model".into(),
                &[Value::Real(1.0)],
                &Trace::new(),
                &Trace::new()
            ),
            Err(EvalError::Dynamic(_))
        ));
    }
}
