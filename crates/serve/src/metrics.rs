//! Request metrics for the `/metrics` endpoint.
//!
//! Counters are relaxed atomics (they are diagnostics, not
//! synchronisation); request latency feeds a fixed-range
//! [`Histogram`] from `ppl_dist::stats` — the same estimator the posterior
//! summaries use — plus exact running sum/max, all behind one short-lived
//! mutex.

use crate::json::Json;
use ppl_dist::stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Upper bound of the latency histogram range, in milliseconds; slower
/// requests land in [`Metrics::latency_overflow`] instead of a bin.
pub const LATENCY_RANGE_MS: f64 = 2_000.0;

/// Number of latency histogram bins.
pub const LATENCY_BINS: usize = 40;

/// The routes the server distinguishes in its per-route counters.
/// `/v1/models/{id}` and `/v1/artifacts/{id}` lifecycle requests are
/// normalised to their `{id}` buckets.
pub const ROUTES: [&str; 12] = [
    "/healthz",
    "/metrics",
    "/v1/models",
    "/v1/models/{id}",
    "/v1/query",
    "/v1/batch",
    "/v1/fit",
    "/v1/artifacts",
    "/v1/artifacts/{id}",
    "/v1/trace",
    "/v1/trace/{id}",
    "other",
];

/// Normalises a request path to the [`ROUTES`] entry it is counted
/// under: lifecycle requests collapse to their `{id}` buckets, and any
/// unmatched path maps to `"other"`.
pub fn normalize_route(path: &str) -> &'static str {
    let path = if path.starts_with("/v1/models/") {
        "/v1/models/{id}"
    } else if path.starts_with("/v1/artifacts/") {
        "/v1/artifacts/{id}"
    } else if path.starts_with("/v1/trace/") {
        "/v1/trace/{id}"
    } else {
        path
    };
    ROUTES
        .iter()
        .find(|route| **route == path)
        .copied()
        .unwrap_or("other")
}

struct Latency {
    histogram: Histogram,
    overflow: u64,
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl Latency {
    fn new() -> Latency {
        Latency {
            histogram: Histogram::new(0.0, LATENCY_RANGE_MS, LATENCY_BINS),
            overflow: 0,
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    fn add(&mut self, latency_ms: f64) {
        if latency_ms >= LATENCY_RANGE_MS {
            self.overflow += 1;
        } else {
            self.histogram.add(latency_ms, 1.0);
        }
        self.count += 1;
        self.sum_ms += latency_ms;
        self.max_ms = self.max_ms.max(latency_ms);
    }

    /// Estimated `q`-quantile in milliseconds, read from the histogram
    /// bins (bin-centre resolution); ranks landing in the overflow
    /// region report the exact running maximum.
    fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0);
        let mut cumulative = 0.0;
        for (center, weight) in self
            .histogram
            .centers()
            .into_iter()
            .zip(self.histogram.bin_weights().iter().copied())
        {
            cumulative += weight;
            if cumulative >= target {
                return center;
            }
        }
        self.max_ms
    }

    fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum_ms / self.count as f64
        } else {
            0.0
        }
    }
}

/// Aggregated serving metrics.
pub struct Metrics {
    started: Instant,
    requests_by_route: [AtomicU64; ROUTES.len()],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// `408 Request Timeout` responses, counted apart from the generic
    /// 4xx class so deadline pressure is visible at a glance.
    responses_timeout: AtomicU64,
    /// Requests whose path matched no known route (they are counted
    /// under the `"other"` bucket, but no longer silently).
    unknown_paths: AtomicU64,
    latency: Mutex<Latency>,
    latency_by_route: Mutex<Vec<Latency>>,
    /// Handler panics caught and converted to `500 server.panic`.
    panics: AtomicU64,
    /// Requests shed by a per-endpoint concurrency cap (`429`).
    cap_sheds: AtomicU64,
    /// Connections shed at the transport admission queue (`429`).  Behind
    /// an `Arc` so it can be handed to
    /// [`crate::http::ServerConfig::shed_counter`] — the transport layer
    /// sheds before the handler (and therefore these metrics) ever runs.
    queue_sheds: Arc<AtomicU64>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("total_requests", &self.total_requests())
            .finish_non_exhaustive()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics with the clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests_by_route: std::array::from_fn(|_| AtomicU64::new(0)),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            responses_timeout: AtomicU64::new(0),
            unknown_paths: AtomicU64::new(0),
            latency: Mutex::new(Latency::new()),
            latency_by_route: Mutex::new((0..ROUTES.len()).map(|_| Latency::new()).collect()),
            panics: AtomicU64::new(0),
            cap_sheds: AtomicU64::new(0),
            queue_sheds: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Counts one caught handler panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by a per-endpoint concurrency cap.
    pub fn record_cap_shed(&self) {
        self.cap_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Requests shed by per-endpoint concurrency caps so far.
    pub fn cap_sheds(&self) -> u64 {
        self.cap_sheds.load(Ordering::Relaxed)
    }

    /// Connections shed at the transport admission queue so far.
    pub fn queue_sheds(&self) -> u64 {
        self.queue_sheds.load(Ordering::Relaxed)
    }

    /// The shared queue-shed counter, for wiring into
    /// [`crate::http::ServerConfig::shed_counter`].
    pub fn queue_sheds_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.queue_sheds)
    }

    /// Records one handled request: its route (normalised to a [`ROUTES`]
    /// entry), response status, and wall-clock latency.
    pub fn record(&self, path: &str, status: u16, latency_ms: f64) {
        let route = normalize_route(path);
        let idx = ROUTES
            .iter()
            .position(|r| *r == route)
            .unwrap_or(ROUTES.len() - 1);
        if route == "other" && path != "other" {
            // Unmatched paths still land in the "other" bucket, but no
            // longer silently: count them and leave a (rate-limited)
            // breadcrumb naming the path.
            self.unknown_paths.fetch_add(1, Ordering::Relaxed);
            ppl_obs::log::debug(
                "route.unknown",
                "request for unmatched path counted under \"other\"",
                &[("path", ppl_obs::log::Value::s(path))],
            );
        }
        self.requests_by_route[idx].fetch_add(1, Ordering::Relaxed);
        let status_counter = match status {
            200..=299 => &self.responses_2xx,
            408 => &self.responses_timeout,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        status_counter.fetch_add(1, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("metrics poisoned")
            .add(latency_ms);
        self.latency_by_route.lock().expect("metrics poisoned")[idx].add(latency_ms);
    }

    /// Requests for paths that matched no known route so far.
    pub fn unknown_paths(&self) -> u64 {
        self.unknown_paths.load(Ordering::Relaxed)
    }

    /// `408 Request Timeout` responses so far.
    pub fn timeouts(&self) -> u64 {
        self.responses_timeout.load(Ordering::Relaxed)
    }

    /// Total requests across every route.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_route
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Requests that fell outside the latency histogram range.
    pub fn latency_overflow(&self) -> u64 {
        self.latency.lock().expect("metrics poisoned").overflow
    }

    /// Renders the metrics document served by `/metrics`.  `cache_hits`,
    /// `cache_misses`, and `cache_len` come from the response cache.
    pub fn render(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> Json {
        let latency = self.latency.lock().expect("metrics poisoned");
        let mean_ms = latency.mean();
        let histogram = Json::Obj(vec![
            (
                "range_ms".into(),
                Json::Arr(vec![Json::Num(0.0), Json::Num(LATENCY_RANGE_MS)]),
            ),
            (
                "centers_ms".into(),
                Json::Arr(
                    latency
                        .histogram
                        .centers()
                        .into_iter()
                        .map(Json::num_or_null)
                        .collect(),
                ),
            ),
            (
                "counts".into(),
                Json::Arr(
                    latency
                        .histogram
                        .bin_weights()
                        .iter()
                        .map(|&w| Json::num_or_null(w))
                        .collect(),
                ),
            ),
            ("overflow".into(), Json::Num(latency.overflow as f64)),
        ]);
        let routes = ROUTES
            .iter()
            .zip(&self.requests_by_route)
            .map(|(route, counter)| {
                (
                    route.to_string(),
                    Json::Num(counter.load(Ordering::Relaxed) as f64),
                )
            })
            .collect();
        let cache_total = cache_hits + cache_misses;
        let hit_rate = if cache_total > 0 {
            cache_hits as f64 / cache_total as f64
        } else {
            0.0
        };
        Json::Obj(vec![
            (
                "uptime_seconds".into(),
                Json::num_or_null(self.started.elapsed().as_secs_f64()),
            ),
            (
                "requests_total".into(),
                Json::Num(self.total_requests() as f64),
            ),
            ("requests_by_route".into(), Json::Obj(routes)),
            (
                "responses".into(),
                Json::Obj(vec![
                    (
                        "2xx".into(),
                        Json::Num(self.responses_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "4xx".into(),
                        Json::Num(self.responses_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "5xx".into(),
                        Json::Num(self.responses_5xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "timeout".into(),
                        Json::Num(self.responses_timeout.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "unknown_paths".into(),
                Json::Num(self.unknown_paths.load(Ordering::Relaxed) as f64),
            ),
            (
                "latency_ms".into(),
                Json::Obj(vec![
                    ("mean".into(), Json::num_or_null(mean_ms)),
                    ("max".into(), Json::num_or_null(latency.max_ms)),
                    ("p50".into(), Json::num_or_null(latency.percentile(0.50))),
                    ("p90".into(), Json::num_or_null(latency.percentile(0.90))),
                    ("p99".into(), Json::num_or_null(latency.percentile(0.99))),
                    ("histogram".into(), histogram),
                ]),
            ),
            ("latency_by_route_ms".into(), self.render_route_latency()),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(cache_hits as f64)),
                    ("misses".into(), Json::Num(cache_misses as f64)),
                    ("hit_rate".into(), Json::num_or_null(hit_rate)),
                    ("entries".into(), Json::Num(cache_len as f64)),
                ]),
            ),
        ])
    }

    /// Per-route latency summaries (count, mean, max, p50/p90/p99) for
    /// every route that has handled at least one request.
    fn render_route_latency(&self) -> Json {
        let by_route = self.latency_by_route.lock().expect("metrics poisoned");
        Json::Obj(
            ROUTES
                .iter()
                .zip(by_route.iter())
                .filter(|(_, latency)| latency.count > 0)
                .map(|(route, latency)| {
                    (
                        route.to_string(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(latency.count as f64)),
                            ("mean".into(), Json::num_or_null(latency.mean())),
                            ("max".into(), Json::num_or_null(latency.max_ms)),
                            ("p50".into(), Json::num_or_null(latency.percentile(0.50))),
                            ("p90".into(), Json::num_or_null(latency.percentile(0.90))),
                            ("p99".into(), Json::num_or_null(latency.percentile(0.99))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_routes_statuses_and_latency() {
        let m = Metrics::new();
        m.record("/healthz", 200, 0.5);
        m.record("/v1/query", 200, 12.0);
        m.record("/v1/query", 400, 1.0);
        m.record("/nope", 404, 0.1);
        m.record("/v1/models/m-0011223344556677", 200, 0.2);
        m.record("/v1/artifacts/a-0011223344556677", 200, 0.2);
        m.record("/v1/query", 500, LATENCY_RANGE_MS + 1.0);
        m.record("/v1/query", 408, 250.0);
        assert_eq!(m.total_requests(), 8);
        assert_eq!(m.latency_overflow(), 1);
        assert_eq!(m.timeouts(), 1);
        assert_eq!(m.unknown_paths(), 1);
        let json = m.render(3, 1, 2);
        assert_eq!(
            json.get("requests_by_route").unwrap().get("/v1/query"),
            Some(&Json::Num(4.0))
        );
        assert_eq!(
            json.get("requests_by_route")
                .unwrap()
                .get("/v1/models/{id}"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("requests_by_route")
                .unwrap()
                .get("/v1/artifacts/{id}"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("requests_by_route").unwrap().get("other"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("responses").unwrap().get("4xx"),
            Some(&Json::Num(2.0))
        );
        assert_eq!(
            json.get("responses").unwrap().get("5xx"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("responses").unwrap().get("timeout"),
            Some(&Json::Num(1.0)),
            "408 is its own class, not folded into 4xx"
        );
        assert_eq!(json.get("unknown_paths"), Some(&Json::Num(1.0)));
        assert_eq!(
            json.get("cache").unwrap().get("hit_rate"),
            Some(&Json::Num(0.75))
        );
        let latency = json.get("latency_ms").unwrap();
        for key in ["p50", "p90", "p99"] {
            assert!(
                matches!(latency.get(key), Some(Json::Num(v)) if *v >= 0.0),
                "global latency reports {key}"
            );
        }
        let by_route = json.get("latency_by_route_ms").unwrap();
        let query = by_route.get("/v1/query").expect("per-route latency");
        assert_eq!(query.get("count"), Some(&Json::Num(4.0)));
        assert!(matches!(query.get("p99"), Some(Json::Num(v)) if *v > 0.0));
        assert!(
            by_route.get("/v1/batch").is_none(),
            "routes with no traffic are omitted"
        );
        // The document always serialises (every number finite).
        assert!(json.write().is_ok());
    }

    #[test]
    fn percentiles_track_the_tail() {
        // 2% of samples in the tail: nearest-rank p99 must land there
        // (with exactly 1% it would sit right on the bulk boundary).
        let m = Metrics::new();
        for _ in 0..98 {
            m.record("/v1/query", 200, 10.0);
        }
        m.record("/v1/query", 200, 1_500.0);
        m.record("/v1/query", 200, 1_500.0);
        let json = m.render(0, 0, 0);
        let latency = json.get("latency_ms").unwrap();
        let num = |key: &str| match latency.get(key) {
            Some(Json::Num(v)) => *v,
            other => panic!("{key} missing: {other:?}"),
        };
        assert!(num("p50") < 100.0, "median near the bulk");
        assert!(num("p99") > 1_000.0, "p99 sees the tail the mean hides");
        assert!(num("mean") < num("p99"));
    }

    #[test]
    fn normalize_route_covers_ids_and_unknowns() {
        assert_eq!(normalize_route("/healthz"), "/healthz");
        assert_eq!(normalize_route("/v1/models/m-00"), "/v1/models/{id}");
        assert_eq!(normalize_route("/v1/artifacts/a-00"), "/v1/artifacts/{id}");
        assert_eq!(normalize_route("/v1/trace"), "/v1/trace");
        assert_eq!(normalize_route("/v1/trace/t-00"), "/v1/trace/{id}");
        assert_eq!(normalize_route("/nope"), "other");
    }
}
