//! The JSON codec test suite: round-trip property tests over nested
//! values, float formatting edge cases, and a malformed-input suite
//! proving the parser reports byte positions and never panics.

use ppl_dist::rng::Pcg32;
use ppl_serve::{Json, JsonError};

/// Deterministically generates an arbitrary JSON value of bounded depth.
fn arbitrary(rng: &mut Pcg32, depth: usize) -> Json {
    let choice = if depth == 0 {
        rng.next_below(4)
    } else {
        rng.next_below(6)
    };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.next_f64() < 0.5),
        2 => {
            // A mix of magnitudes, signs, negative zero, and subnormals —
            // anything finite must survive a write/parse cycle bit-exactly.
            let x = match rng.next_below(6) {
                0 => 0.0,
                1 => -0.0,
                2 => (rng.next_f64() - 0.5) * 10.0,
                3 => (rng.next_f64() - 0.5) * 1e300,
                4 => rng.next_f64() * 1e-310, // subnormal range
                _ => (rng.next_below(1_000_000) as f64) - 500_000.0,
            };
            Json::Num(x)
        }
        3 => {
            let len = rng.next_below(12) as usize;
            let s: String = (0..len)
                .map(|_| match rng.next_below(7) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\u{1}',
                    4 => '😀',
                    5 => 'é',
                    _ => char::from(b'a' + (rng.next_below(26) as u8)),
                })
                .collect();
            Json::Str(s)
        }
        4 => {
            let len = rng.next_below(4) as usize;
            Json::Arr((0..len).map(|_| arbitrary(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.next_below(4) as usize;
            Json::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), arbitrary(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn round_trips_arbitrary_nested_values() {
    let mut rng = Pcg32::seed_from_u64(0xC0DEC);
    for case in 0..500 {
        let value = arbitrary(&mut rng, 4);
        let text = value.write().unwrap_or_else(|e| panic!("case {case}: {e}"));
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e} in {text}"));
        assert_eq!(back, value, "case {case}: {text}");
        // Writing is deterministic: a second cycle produces the same bytes.
        assert_eq!(back.write().unwrap(), text, "case {case}");
    }
}

#[test]
fn float_formatting_round_trips_exact_bits() {
    for x in [
        0.0,
        -0.0,
        1.0,
        -1.5,
        0.1,
        1e-300,
        -1e300,
        5e-324, // smallest subnormal
        f64::MAX,
        f64::MIN,
        f64::EPSILON,
        std::f64::consts::PI,
    ] {
        let text = Json::Num(x).write().unwrap();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
    }
    // Exponent forms parse.
    for (text, expected) in [("1e3", 1e3), ("-2.5E-2", -2.5e-2), ("1.25e+10", 1.25e10)] {
        assert_eq!(Json::parse(text).unwrap(), Json::Num(expected));
    }
}

#[test]
fn non_finite_numbers_are_rejected_both_ways() {
    // The writer refuses to emit them...
    assert!(Json::Num(f64::NAN).write().is_err());
    assert!(Json::Num(f64::INFINITY).write().is_err());
    assert!(Json::Num(f64::NEG_INFINITY).write().is_err());
    // ...nested anywhere.
    let nested = Json::Arr(vec![Json::Obj(vec![("x".into(), Json::Num(f64::NAN))])]);
    assert!(nested.write().is_err());
    // ...and the parser rejects the tokens and overflow.
    for text in [
        "NaN",
        "Infinity",
        "-Infinity",
        "nan",
        "inf",
        "1e999",
        "-1e999",
    ] {
        assert!(Json::parse(text).is_err(), "{text} parsed");
    }
}

/// Every malformed input errors with the expected byte position — and, by
/// virtue of returning at all, never panics.
#[test]
fn malformed_inputs_error_with_positions() {
    let cases: &[(&str, usize)] = &[
        ("", 0),
        ("   ", 3),
        ("{", 1),
        ("}", 0),
        ("[1, 2", 5),
        ("[1 2]", 3),
        ("{\"a\" 1}", 5),
        ("{\"a\": 1,}", 8),
        ("{a: 1}", 1),
        ("[,]", 1),
        ("tru", 0),
        ("falsey", 5),
        ("nulll", 4),
        ("\"unterminated", 13),
        ("\"bad \\q escape\"", 6),
        ("\"\\u12G4\"", 5),
        ("\"\\ud800\"", 1), // unpaired high surrogate (points at the escape)
        ("\"\\udc00\"", 1), // unpaired low surrogate
        ("01", 1),
        ("-", 1),
        ("1.", 2),
        ("1e", 2),
        ("1e+", 3),
        ("--1", 1),
        ("+1", 0),
        (".5", 0),
        ("1 2", 2),
        ("{\"a\": 1} extra", 9),
        ("\"\u{1}\"", 1), // unescaped control character
    ];
    for (text, offset) in cases {
        match Json::parse(text) {
            Err(JsonError {
                offset: got,
                message,
            }) => {
                assert_eq!(
                    got, *offset,
                    "input {text:?}: expected offset {offset}, got {got} ({message})"
                );
            }
            Ok(v) => panic!("input {text:?} unexpectedly parsed as {v:?}"),
        }
    }
}

/// Fuzz the parser with deterministic garbage: arbitrary byte soup,
/// truncations and mutations of valid documents.  The only acceptable
/// outcomes are `Ok` or a positioned error — no panic, no hang.
#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = Pcg32::seed_from_u64(0xFAFF);
    let seeds = [
        r#"{"a": [1, -2.5e3, true, null], "b": {"s": "x\ny"}}"#,
        r#"[[[[1]]], {"k": "\ud83d\ude00"}]"#,
        "123.456e-7",
    ];
    for seed in seeds {
        for cut in 0..seed.len() {
            let _ = Json::parse(&seed[..cut.min(seed.len())]);
        }
    }
    for _ in 0..2_000 {
        let len = rng.next_below(40) as usize;
        let garbage: String = (0..len)
            .map(|_| {
                let printable = b" {}[]\",:.0123456789eE+-truefalsnu\\/";
                printable[rng.next_below(printable.len() as u64) as usize] as char
            })
            .collect();
        let _ = Json::parse(&garbage); // must return, not panic
    }
    // Deep nesting hits the depth bound instead of the stack.
    let deep = "[".repeat(100_000);
    let err = Json::parse(&deep).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}
