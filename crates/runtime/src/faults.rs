//! Fault-injection hooks, compiled only under the `faults` feature.
//!
//! The overload/robustness test harness needs to make inference *slow on
//! demand* so a request's deadline reliably expires in the middle of a
//! vectorised block.  Rather than hand-tuning particle counts against wall
//! clocks (flaky on loaded CI machines), the block op interpreter calls
//! [`maybe_stall_op`] once per op, which sleeps for a configurable
//! duration.  The hook is behind `#[cfg(feature = "faults")]`, so release
//! builds carry no trace of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Microseconds to sleep per block op; 0 disables the stall.
static OP_STALL_MICROS: AtomicU64 = AtomicU64::new(0);

/// Configures the per-op stall injected into the vectorised block
/// interpreter (0 disables).  Affects every executor in the process —
/// tests that use it must not share a process with timing-sensitive tests.
pub fn set_op_stall_micros(micros: u64) {
    OP_STALL_MICROS.store(micros, Ordering::SeqCst);
}

/// The injection point: called once per op by the block interpreter.
pub(crate) fn maybe_stall_op() {
    let micros = OP_STALL_MICROS.load(Ordering::Relaxed);
    if micros > 0 {
        std::thread::sleep(Duration::from_micros(micros));
    }
}
