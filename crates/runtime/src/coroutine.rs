//! Resumable coroutines for model and guide programs.
//!
//! The paper implements models and guides as coroutines (greenlets in the
//! compiled Pyro code) that suspend whenever they communicate on a channel.
//! Here a [`Coroutine`] is a defunctionalised interpreter: an explicit stack
//! of continuation frames plus the command currently being executed, so the
//! driver can pause it at every channel operation and resume it with the
//! value produced by the other coroutine.
//!
//! The interpreter executes a shared [`CompiledProgram`] and is built so
//! that its *steady state allocates nothing*:
//!
//! * continuation frames are three machine words (a [`CmdId`] plus two
//!   stack indices) in a reusable `Vec`;
//! * variable bindings live on a flat, reusable
//!   [`ValueStack`] — procedure entry
//!   raises the scope base, `bind` frames remember the depth to restore —
//!   so binding a variable is a push into retained capacity, and lookup
//!   compares interned `u32` symbols;
//! * suspensions carry `Copy` channel ids and pre-compiled distributions
//!   (see [`DistNode`]), never a cloned `String` or AST subtree.
//!
//! A coroutine can be re-armed over the same program with
//! [`Coroutine::respawn`], which reuses all of its buffers — this is what
//! the joint executor's scratch pool does between particles.

use crate::program::{CalleeRef, CmdId, CmdNode, CompiledProgram, DistNode, ProcId};
use ppl_dist::{Distribution, Sample};
use ppl_semantics::eval::{eval_dist_in, eval_expr_in, EvalError};
use ppl_semantics::value::{Bindings, Value, ValueStack};
use ppl_syntax::ast::{ChannelName, Dir, Ident};
use std::fmt;
use std::sync::Arc;

/// A channel operation at which a coroutine is suspended, awaiting the
/// driver.
///
/// The channel is an interned [`ChannelName`] (a `Copy` id) and the
/// distribution payload clones without heap allocation, so constructing,
/// cloning, and matching suspensions is allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Suspend {
    /// The coroutine executes `sample_sd{chan}(d)`: it is about to *send* a
    /// sample drawn from `dist`.  The driver supplies the concrete value
    /// (either freshly drawn or replayed) via [`Resume::Sample`].
    SampleSend {
        /// The channel being written.
        chan: ChannelName,
        /// The distribution at this site.
        dist: Distribution,
    },
    /// The coroutine executes `sample_rv{chan}(d)`: it awaits a sample from
    /// the peer and will score it against `dist`.
    SampleRecv {
        /// The channel being read.
        chan: ChannelName,
        /// The distribution used for scoring.
        dist: Distribution,
    },
    /// The coroutine executes `cond_sd{chan}(e; …)`: it evaluated the branch
    /// predicate and sends the selection to the peer.  Resume with
    /// [`Resume::Ack`].
    BranchSend {
        /// The channel carrying the selection.
        chan: ChannelName,
        /// The selection the coroutine computed.
        selection: bool,
    },
    /// The coroutine executes `cond_rv{chan}(…)`: it awaits a branch
    /// selection from the peer.  Resume with [`Resume::Branch`].
    BranchRecv {
        /// The channel carrying the selection.
        chan: ChannelName,
    },
    /// The coroutine is about to call a procedure that uses `chan`;
    /// corresponds to the `fold` marker of the operational semantics.
    /// Resume with [`Resume::Ack`].
    CallMarker {
        /// The channel whose protocol folds here.
        chan: ChannelName,
    },
}

impl Suspend {
    /// The channel this suspension concerns.
    pub fn channel(&self) -> &ChannelName {
        match self {
            Suspend::SampleSend { chan, .. }
            | Suspend::SampleRecv { chan, .. }
            | Suspend::BranchSend { chan, .. }
            | Suspend::BranchRecv { chan }
            | Suspend::CallMarker { chan } => chan,
        }
    }
}

/// The value with which a suspended coroutine is resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resume {
    /// The concrete sample for a [`Suspend::SampleSend`] or
    /// [`Suspend::SampleRecv`].
    Sample(Sample),
    /// The selection for a [`Suspend::BranchRecv`].
    Branch(bool),
    /// Acknowledgement for [`Suspend::BranchSend`] and
    /// [`Suspend::CallMarker`].
    Ack,
}

/// The observable state of a coroutine after a step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Suspended at a channel operation.
    Suspended(Suspend),
    /// Finished with a value; `log_weight` is the coroutine's accumulated
    /// log-density.
    Done {
        /// The coroutine's return value.
        value: Value,
        /// The accumulated log-weight.
        log_weight: f64,
    },
}

/// Errors raised by a coroutine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoroutineError {
    /// An embedded expression failed to evaluate.
    Eval(EvalError),
    /// The coroutine was resumed with the wrong kind of [`Resume`] value, or
    /// resumed/stepped while in an unexpected state.
    Protocol(String),
    /// Reference to an unknown procedure.
    UnknownProc(String),
}

impl fmt::Display for CoroutineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoroutineError::Eval(e) => write!(f, "{e}"),
            CoroutineError::Protocol(m) => write!(f, "coroutine protocol error: {m}"),
            CoroutineError::UnknownProc(m) => write!(f, "unknown procedure: {m}"),
        }
    }
}

impl std::error::Error for CoroutineError {}

impl From<EvalError> for CoroutineError {
    fn from(e: EvalError) -> Self {
        CoroutineError::Eval(e)
    }
}

/// A continuation frame: when the current command finishes with a value,
/// restore the binding stack to `depth`/`base`, bind the value to the
/// `Bind` node's variable, and continue with its `rest`.
///
/// Three machine words — an index into the shared program plus two stack
/// indices; no environment is captured because the bindings live on the
/// coroutine's reusable [`ValueStack`].
#[derive(Debug, Clone, Copy)]
struct BindFrame {
    /// A [`CmdNode::Bind`] node in the shared program.
    node: CmdId,
    /// Stack length at the time the frame was pushed.
    depth: usize,
    /// Scope base at the time the frame was pushed.
    base: usize,
}

/// What the coroutine is waiting for while suspended.
#[derive(Debug, Clone)]
enum Pending {
    /// Suspended at a sample site, waiting for the concrete value to score.
    Sample { dist: Distribution },
    /// Suspended at a [`CmdNode::Branch`] node, waiting for the peer's
    /// selection.
    BranchRecv { node: CmdId },
    /// Suspended at a [`CmdNode::Branch`] node after announcing `selection`,
    /// waiting for the acknowledgement.
    BranchSend { node: CmdId, selection: bool },
    /// Suspended at a [`CmdNode::Call`] node, emitting its fold markers one
    /// by one; `next_mark` indexes into the node's pre-computed mark list.
    /// The evaluated arguments wait in the coroutine's `pending_args`
    /// buffer.
    CallAck {
        node: CmdId,
        next_mark: usize,
        callee: ProcId,
    },
}

/// Internal control state.
#[derive(Debug, Clone)]
enum Control {
    Run { cmd: CmdId },
    Return { value: Value },
    AwaitResume(Pending),
    Finished,
}

/// A resumable model or guide coroutine over a shared compiled program.
#[derive(Debug, Clone)]
pub struct Coroutine {
    program: Arc<CompiledProgram>,
    frames: Vec<BindFrame>,
    stack: ValueStack,
    /// Evaluated arguments of the call currently awaiting its fold markers
    /// (at most one call is pending at a time), reused across calls.
    pending_args: Vec<Value>,
    control: Control,
    log_weight: f64,
    steps: u64,
}

impl Coroutine {
    /// Creates (but does not start) a coroutine running `proc_name` with the
    /// given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::UnknownProc`] if the procedure does not
    /// exist and [`CoroutineError::Protocol`] on an argument-count mismatch.
    pub fn spawn(
        program: &Arc<CompiledProgram>,
        proc_name: &Ident,
        args: Vec<Value>,
    ) -> Result<Self, CoroutineError> {
        let mut co = Coroutine {
            program: Arc::clone(program),
            frames: Vec::new(),
            stack: ValueStack::new(),
            pending_args: Vec::new(),
            control: Control::Finished,
            log_weight: 0.0,
            steps: 0,
        };
        co.arm(proc_name, &args)?;
        Ok(co)
    }

    /// Re-arms this coroutine to run `proc_name` from its entry point,
    /// reusing the frame, binding-stack, and argument buffers — the
    /// allocation-free way to run one program many times.
    ///
    /// # Errors
    ///
    /// Same contract as [`Coroutine::spawn`].
    pub fn respawn(&mut self, proc_name: &Ident, args: &[Value]) -> Result<(), CoroutineError> {
        self.arm(proc_name, args)
    }

    fn arm(&mut self, proc_name: &Ident, args: &[Value]) -> Result<(), CoroutineError> {
        let id = self
            .program
            .proc_id(proc_name)
            .ok_or_else(|| CoroutineError::UnknownProc(proc_name.to_string()))?;
        self.check_arity(id, args.len())?;
        self.frames.clear();
        self.stack.clear();
        self.pending_args.clear();
        self.log_weight = 0.0;
        self.steps = 0;
        for (i, v) in args.iter().enumerate() {
            let x = self.program.proc(id).params[i];
            self.stack.push(x, v.clone());
        }
        self.control = Control::Run {
            cmd: self.program.proc(id).body,
        };
        Ok(())
    }

    /// Checks that `got` arguments match the procedure's parameter count.
    fn check_arity(&self, callee: ProcId, got: usize) -> Result<(), CoroutineError> {
        let proc = self.program.proc(callee);
        if proc.params.len() == got {
            Ok(())
        } else {
            Err(CoroutineError::Protocol(format!(
                "procedure '{}' expects {} argument(s), got {}",
                proc.name,
                proc.params.len(),
                got
            )))
        }
    }

    /// The shared program this coroutine executes.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// The coroutine's accumulated log-weight so far.
    pub fn log_weight(&self) -> f64 {
        self.log_weight
    }

    /// The number of interpreter steps taken so far (used by the overhead
    /// ablation benchmark).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Runs the coroutine until it suspends or finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if called while the coroutine is
    /// awaiting a [`Resume`] value or already finished.
    pub fn start(&mut self) -> Result<Step, CoroutineError> {
        match self.control {
            Control::Run { .. } => self.drive(),
            _ => Err(CoroutineError::Protocol(
                "start called on a coroutine that is not at its entry point".into(),
            )),
        }
    }

    /// Resumes a suspended coroutine with the value it was waiting for and
    /// runs it until the next suspension (or completion).
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if the coroutine is not
    /// suspended or `resume` has the wrong shape for the pending operation.
    pub fn resume(&mut self, resume: Resume) -> Result<Step, CoroutineError> {
        let pending = match std::mem::replace(&mut self.control, Control::Finished) {
            Control::AwaitResume(p) => p,
            other => {
                self.control = other;
                return Err(CoroutineError::Protocol(
                    "resume called on a coroutine that is not suspended".into(),
                ));
            }
        };
        match (pending, resume) {
            (Pending::Sample { dist }, Resume::Sample(sample)) => {
                // Score the sample; values outside the support zero out the
                // weight (the coroutine keeps running so the joint executor
                // can finish and report the zero-weight particle).
                self.log_weight += dist.log_density(&sample);
                self.control = Control::Return {
                    value: Value::from_sample(sample),
                };
            }
            (Pending::BranchRecv { node }, Resume::Branch(sel)) => {
                self.control = Control::Run {
                    cmd: self.branch_arm(node, sel),
                };
            }
            (Pending::BranchSend { node, selection }, Resume::Ack) => {
                self.control = Control::Run {
                    cmd: self.branch_arm(node, selection),
                };
            }
            (
                Pending::CallAck {
                    node,
                    next_mark,
                    callee,
                },
                Resume::Ack,
            ) => {
                let CmdNode::Call { marks, .. } = self.program.node(node) else {
                    unreachable!("CallAck always references a Call node");
                };
                if let Some(chan) = marks.get(next_mark) {
                    let suspend = Suspend::CallMarker { chan: *chan };
                    self.control = Control::AwaitResume(Pending::CallAck {
                        node,
                        next_mark: next_mark + 1,
                        callee,
                    });
                    return Ok(Step::Suspended(suspend));
                }
                let body = self.enter_callee(callee);
                self.control = Control::Run { cmd: body };
            }
            (pending, resume) => {
                return Err(CoroutineError::Protocol(format!(
                    "resume value {resume:?} does not match the pending operation {pending:?}"
                )));
            }
        }
        self.drive()
    }

    fn branch_arm(&self, node: CmdId, selection: bool) -> CmdId {
        let CmdNode::Branch {
            then_cmd, else_cmd, ..
        } = self.program.node(node)
        else {
            unreachable!("branch pendings always reference a Branch node");
        };
        if selection {
            *then_cmd
        } else {
            *else_cmd
        }
    }

    /// Moves the pending call's evaluated arguments into a fresh procedure
    /// scope (raising the lookup base so the callee cannot see its caller's
    /// bindings) and returns the callee's entry node.  Arity was checked
    /// when the arguments were evaluated.
    fn enter_callee(&mut self, callee: ProcId) -> CmdId {
        let base = self.stack.len();
        for (i, v) in self.pending_args.drain(..).enumerate() {
            let x = self.program.proc(callee).params[i];
            self.stack.push(x, v);
        }
        self.stack.set_base(base);
        self.program.proc(callee).body
    }

    /// Runs until suspension or completion.
    fn drive(&mut self) -> Result<Step, CoroutineError> {
        loop {
            self.steps += 1;
            let control = std::mem::replace(&mut self.control, Control::Finished);
            match control {
                Control::Finished => {
                    return Err(CoroutineError::Protocol(
                        "coroutine already finished".into(),
                    ))
                }
                Control::AwaitResume(p) => {
                    // Re-install and report the suspension (drive should not
                    // be called in this state, but be forgiving).
                    self.control = Control::AwaitResume(p);
                    return Err(CoroutineError::Protocol(
                        "coroutine is awaiting a resume value".into(),
                    ));
                }
                Control::Return { value } => match self.frames.pop() {
                    None => {
                        self.control = Control::Finished;
                        return Ok(Step::Done {
                            value,
                            log_weight: self.log_weight,
                        });
                    }
                    Some(BindFrame { node, depth, base }) => {
                        let CmdNode::Bind { var, rest, .. } = self.program.node(node) else {
                            unreachable!("bind frames always reference a Bind node");
                        };
                        let (var, rest) = (*var, *rest);
                        // Leave whatever scopes the first command opened and
                        // bind its value in the frame's own scope.
                        self.stack.truncate(depth);
                        self.stack.set_base(base);
                        self.stack.push(var, value);
                        self.control = Control::Run { cmd: rest };
                    }
                },
                Control::Run { cmd } => match self.program.node(cmd) {
                    CmdNode::Ret(e) => {
                        let value = eval_expr_in(&mut self.stack, e)?;
                        self.control = Control::Return { value };
                    }
                    CmdNode::Bind { first, .. } => {
                        self.frames.push(BindFrame {
                            node: cmd,
                            depth: self.stack.len(),
                            base: self.stack.base(),
                        });
                        self.control = Control::Run { cmd: *first };
                    }
                    CmdNode::Call {
                        callee,
                        args,
                        marks,
                    } => {
                        // Arguments evaluate before the callee resolves,
                        // matching the tree-walking interpreter's error
                        // order for programs that are both ill-scoped and
                        // call a missing procedure.
                        self.pending_args.clear();
                        for a in args {
                            let v = eval_expr_in(&mut self.stack, a)?;
                            self.pending_args.push(v);
                        }
                        let callee = match callee {
                            CalleeRef::Resolved(id) => *id,
                            CalleeRef::Unknown(name) => {
                                return Err(CoroutineError::UnknownProc(name.to_string()))
                            }
                        };
                        // Arity is checked before any fold marker is
                        // emitted, matching the big-step evaluator's order.
                        self.check_arity(callee, self.pending_args.len())?;
                        if let Some(chan) = marks.first() {
                            let suspend = Suspend::CallMarker { chan: *chan };
                            self.control = Control::AwaitResume(Pending::CallAck {
                                node: cmd,
                                next_mark: 1,
                                callee,
                            });
                            return Ok(Step::Suspended(suspend));
                        }
                        let body = self.enter_callee(callee);
                        self.control = Control::Run { cmd: body };
                    }
                    CmdNode::Sample {
                        dir,
                        chan,
                        dist,
                        declared,
                    } => {
                        check_declared(*declared, chan)?;
                        let d = match dist {
                            DistNode::Const(d) => d.clone(),
                            DistNode::Ctor(de) => eval_dist_in(&mut self.stack, de)?,
                            DistNode::Opaque(e) => match eval_expr_in(&mut self.stack, e)? {
                                Value::Dist(d) => d,
                                other => {
                                    return Err(CoroutineError::Eval(EvalError::Dynamic(format!(
                                        "sample requires a distribution, found {other}"
                                    ))))
                                }
                            },
                        };
                        let suspend = match dir {
                            Dir::Send => Suspend::SampleSend {
                                chan: *chan,
                                dist: d.clone(),
                            },
                            Dir::Recv => Suspend::SampleRecv {
                                chan: *chan,
                                dist: d.clone(),
                            },
                        };
                        self.control = Control::AwaitResume(Pending::Sample { dist: d });
                        return Ok(Step::Suspended(suspend));
                    }
                    CmdNode::Branch {
                        dir,
                        chan,
                        pred,
                        declared,
                        ..
                    } => {
                        check_declared(*declared, chan)?;
                        match dir {
                            Dir::Send => {
                                let selection = match pred {
                                    Some(p) => eval_expr_in(&mut self.stack, p)?
                                        .as_bool()
                                        .ok_or_else(|| {
                                            CoroutineError::Eval(EvalError::Dynamic(
                                                "non-Boolean branch predicate".into(),
                                            ))
                                        })?,
                                    None => {
                                        return Err(CoroutineError::Eval(EvalError::Dynamic(
                                            "send-branch without a predicate".into(),
                                        )))
                                    }
                                };
                                let suspend = Suspend::BranchSend {
                                    chan: *chan,
                                    selection,
                                };
                                self.control = Control::AwaitResume(Pending::BranchSend {
                                    node: cmd,
                                    selection,
                                });
                                return Ok(Step::Suspended(suspend));
                            }
                            Dir::Recv => {
                                let suspend = Suspend::BranchRecv { chan: *chan };
                                self.control =
                                    Control::AwaitResume(Pending::BranchRecv { node: cmd });
                                return Ok(Step::Suspended(suspend));
                            }
                        }
                    }
                },
            }
        }
    }
}

fn check_declared(declared: bool, chan: &ChannelName) -> Result<(), CoroutineError> {
    if declared {
        Ok(())
    } else {
        Err(CoroutineError::Protocol(format!(
            "channel '{chan}' is not declared by the current procedure"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn compile(src: &str) -> Arc<CompiledProgram> {
        CompiledProgram::compile_shared(&parse_program(src).unwrap())
    }

    fn guide_program() -> Arc<CompiledProgram> {
        compile(
            r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
    }

    #[test]
    fn guide_coroutine_walkthrough() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // First suspension: sending the Gamma(1,1) sample.
        let step = co.start().unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { chan, dist }) => {
                assert_eq!(chan.as_str(), "latent");
                assert_eq!(dist, &Distribution::gamma(1.0, 1.0).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Resume with a concrete value; next it waits for the selection.
        let step = co.resume(Resume::Sample(Sample::Real(3.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        // Take the else branch: one more sample send, then done.
        let step = co.resume(Resume::Branch(false)).unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { dist, .. }) => {
                assert_eq!(dist, &Distribution::uniform());
            }
            other => panic!("unexpected {other:?}"),
        }
        let step = co.resume(Resume::Sample(Sample::Real(0.25))).unwrap();
        match step {
            Step::Done { value, log_weight } => {
                assert_eq!(value, Value::Unit);
                let expected = Distribution::gamma(1.0, 1.0).unwrap().log_density_f64(3.0)
                    + Distribution::uniform().log_density_f64(0.25);
                assert!((log_weight - expected).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(co.steps_taken() > 0);
        assert!(Arc::ptr_eq(co.program(), &prog));
    }

    #[test]
    fn respawn_reuses_buffers_and_resets_state() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        co.resume(Resume::Sample(Sample::Real(3.0))).unwrap();
        co.resume(Resume::Branch(true)).unwrap();
        let first_weight = co.log_weight();
        assert!(first_weight.is_finite() && first_weight != 0.0);
        // Re-arm: the weight and step counters reset, and a second run over
        // the same path produces exactly the same result.
        co.respawn(&"Guide1".into(), &[]).unwrap();
        assert_eq!(co.log_weight(), 0.0);
        assert_eq!(co.steps_taken(), 0);
        co.start().unwrap();
        co.resume(Resume::Sample(Sample::Real(3.0))).unwrap();
        let step = co.resume(Resume::Branch(true)).unwrap();
        assert!(matches!(step, Step::Done { .. }));
        assert_eq!(co.log_weight().to_bits(), first_weight.to_bits());
        // Respawn validates like spawn.
        assert!(co.respawn(&"Nope".into(), &[]).is_err());
        assert!(co.respawn(&"Guide1".into(), &[Value::Real(1.0)]).is_err());
    }

    #[test]
    fn then_branch_skips_second_sample() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        co.resume(Resume::Sample(Sample::Real(1.0))).unwrap();
        let step = co.resume(Resume::Branch(true)).unwrap();
        assert!(matches!(step, Step::Done { .. }));
    }

    #[test]
    fn out_of_support_sample_zeroes_weight_but_continues() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        let step = co.resume(Resume::Sample(Sample::Real(-1.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        assert_eq!(co.log_weight(), f64::NEG_INFINITY);
    }

    #[test]
    fn call_markers_are_emitted_per_channel() {
        let prog = compile(
            r#"
            proc Outer() consume latent provide obs {
              let _ <- call Inner();
              return ()
            }
            proc Inner() consume latent provide obs {
              let x <- sample recv latent (Unif);
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"Outer".into(), vec![]).unwrap();
        let step = co.start().unwrap();
        let first_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => *chan,
            other => panic!("unexpected {other:?}"),
        };
        let step = co.resume(Resume::Ack).unwrap();
        let second_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => *chan,
            other => panic!("unexpected {other:?}"),
        };
        let mut chans = vec![
            first_chan.as_str().to_string(),
            second_chan.as_str().to_string(),
        ];
        chans.sort();
        assert_eq!(chans, vec!["latent".to_string(), "obs".to_string()]);
        // After both markers the callee body runs.
        let step = co.resume(Resume::Ack).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::SampleRecv { .. })));
    }

    #[test]
    fn callee_scope_hides_caller_bindings() {
        // `Inner` references `hidden`, which is bound in the caller but must
        // not be visible in the callee's scope: the flat binding stack's
        // scope base has to hide it, matching the per-call environments of
        // the tree-walking interpreter.
        let prog = compile(
            r#"
            proc Outer() provide latent {
              let hidden <- sample send latent (Unif);
              let x <- call Inner();
              return x
            }
            proc Inner() : real provide latent {
              return hidden
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"Outer".into(), vec![]).unwrap();
        co.start().unwrap();
        let step = co.resume(Resume::Sample(Sample::Real(0.5))).unwrap();
        // The call emits one fold marker (for `latent`), then the callee
        // body evaluates `hidden` — which must be an unbound-variable error.
        assert!(matches!(step, Step::Suspended(Suspend::CallMarker { .. })));
        let result = co.resume(Resume::Ack);
        assert!(
            matches!(result, Err(CoroutineError::Eval(EvalError::Dynamic(ref m))) if m.contains("unbound variable 'hidden'")),
            "callee saw its caller's bindings: {result:?}"
        );
    }

    #[test]
    fn protocol_errors() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // Resuming before starting is an error.
        assert!(co.resume(Resume::Ack).is_err());
        co.start().unwrap();
        // Starting twice is an error.
        assert!(co.start().is_err());
        // Wrong resume kind.
        assert!(co.resume(Resume::Branch(true)).is_err());
        // Unknown procedure / wrong arity at spawn time.
        assert!(Coroutine::spawn(&prog, &"Nope".into(), vec![]).is_err());
        assert!(Coroutine::spawn(&prog, &"Guide1".into(), vec![Value::Real(1.0)]).is_err());
    }

    #[test]
    fn undeclared_channel_is_rejected_at_runtime() {
        let prog = compile(
            r#"
            proc P() consume latent {
              let _ <- sample recv other (Unif);
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"P".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::Protocol(_))));
    }

    #[test]
    fn unknown_callee_is_rejected_when_executed() {
        let prog = compile(
            r#"
            proc P() consume latent {
              let _ <- call Missing();
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"P".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::UnknownProc(_))));
        // Argument evaluation precedes callee resolution: a call that is
        // both ill-scoped and unresolvable reports the evaluation error.
        let prog = compile(
            r#"
            proc Q() consume latent {
              let _ <- call Missing(undefined_var);
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"Q".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::Eval(_))));
    }

    #[test]
    fn coroutines_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let prog = guide_program();
        let co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        assert_send(&co);
    }

    #[test]
    fn suspend_channel_accessor() {
        let s = Suspend::BranchRecv {
            chan: "latent".into(),
        };
        assert_eq!(s.channel().as_str(), "latent");
        let s = Suspend::SampleSend {
            chan: "obs".into(),
            dist: Distribution::uniform(),
        };
        assert_eq!(s.channel().as_str(), "obs");
    }
}
