//! Runtime values and environments.

use ppl_dist::{Distribution, Sample};
use ppl_syntax::ast::{BaseType, Expr, Ident};
use std::collections::HashMap;
use std::fmt;

/// A runtime value of the deterministic fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value `triv`.
    Unit,
    /// A Boolean.
    Bool(bool),
    /// A real number.
    Real(f64),
    /// A natural number.
    Nat(u64),
    /// A primitive distribution value.
    Dist(Distribution),
    /// A closure `clo(V, λ(x. e))`.
    Closure {
        /// Captured environment.
        env: Env,
        /// Parameter name.
        param: Ident,
        /// Function body.
        body: Box<Expr>,
    },
}

impl Value {
    /// The Boolean payload, if this is a Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view (`Real` and `Nat` both convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Nat(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The natural-number payload, if any.
    pub fn as_nat(&self) -> Option<u64> {
        match self {
            Value::Nat(n) => Some(*n),
            _ => None,
        }
    }

    /// The distribution payload, if any.
    pub fn as_dist(&self) -> Option<&Distribution> {
        match self {
            Value::Dist(d) => Some(d),
            _ => None,
        }
    }

    /// Converts a sample message payload into a value.
    pub fn from_sample(s: Sample) -> Value {
        match s {
            Sample::Bool(b) => Value::Bool(b),
            Sample::Real(r) => Value::Real(r),
            Sample::Nat(n) => Value::Nat(n),
        }
    }

    /// Converts this value into a sample payload, if it is scalar.
    pub fn to_sample(&self) -> Option<Sample> {
        match self {
            Value::Bool(b) => Some(Sample::Bool(*b)),
            Value::Real(r) => Some(Sample::Real(*r)),
            Value::Nat(n) => Some(Sample::Nat(*n)),
            _ => None,
        }
    }

    /// Well-typedness of a value at a scalar base type (the `v : τ` judgment
    /// of Fig. 13, scalar cases).
    pub fn has_type(&self, ty: &BaseType) -> bool {
        match (self, ty) {
            (Value::Unit, BaseType::Unit) => true,
            (Value::Bool(_), BaseType::Bool) => true,
            (Value::Real(r), BaseType::UnitInterval) => *r > 0.0 && *r < 1.0,
            (Value::Real(r), BaseType::PosReal) => *r > 0.0 && r.is_finite(),
            (Value::Real(r), BaseType::Real) => r.is_finite(),
            (Value::Nat(n), BaseType::FinNat(m)) => (*n as usize) < *m,
            (Value::Nat(_), BaseType::Nat) => true,
            (Value::Dist(d), BaseType::Dist(carrier)) => {
                carrier_of_kind(d.kind()) == **carrier || {
                    // A distribution is well-typed at any carrier its kind
                    // refines to (e.g. dist(ureal) <: nothing — kinds are
                    // exact, so require equality).
                    false
                }
            }
            (Value::Closure { .. }, BaseType::Arrow(..)) => true,
            _ => false,
        }
    }
}

/// The carrier base type of a distribution kind.
pub fn carrier_of_kind(kind: ppl_dist::DistKind) -> BaseType {
    match kind {
        ppl_dist::DistKind::Bool => BaseType::Bool,
        ppl_dist::DistKind::UnitInterval => BaseType::UnitInterval,
        ppl_dist::DistKind::PosReal => BaseType::PosReal,
        ppl_dist::DistKind::Real => BaseType::Real,
        ppl_dist::DistKind::FinNat(n) => BaseType::FinNat(n),
        ppl_dist::DistKind::Nat => BaseType::Nat,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Dist(d) => write!(f, "{d}"),
            Value::Closure { param, .. } => write!(f, "<closure {param}>"),
        }
    }
}

/// A runtime environment `V` mapping program variables to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    vars: HashMap<Ident, Value>,
}

impl Env {
    /// The empty environment `∅`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of the environment extended with a binding
    /// (`V[x ↦ v]`).
    pub fn extended(&self, x: Ident, v: Value) -> Env {
        let mut next = self.clone();
        next.vars.insert(x, v);
        next
    }

    /// Adds a binding in place.
    pub fn insert(&mut self, x: Ident, v: Value) {
        self.vars.insert(x, v);
    }

    /// Looks up a variable.
    pub fn lookup(&self, x: &Ident) -> Option<&Value> {
        self.vars.get(x)
    }

    /// Builds an environment from name/value pairs.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Ident, Value)>) -> Env {
        let mut env = Env::new();
        for (x, v) in bindings {
            env.insert(x, v);
        }
        env
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trip() {
        for v in [Value::Bool(true), Value::Real(2.5), Value::Nat(7)] {
            let s = v.to_sample().unwrap();
            assert_eq!(Value::from_sample(s), v);
        }
        assert!(Value::Unit.to_sample().is_none());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Real(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Nat(3).as_f64(), Some(3.0));
        assert_eq!(Value::Nat(3).as_nat(), Some(3));
        assert!(Value::Real(1.0).as_bool().is_none());
        assert!(Value::Dist(Distribution::uniform()).as_dist().is_some());
    }

    #[test]
    fn value_typing() {
        assert!(Value::Real(0.5).has_type(&BaseType::UnitInterval));
        assert!(!Value::Real(1.5).has_type(&BaseType::UnitInterval));
        assert!(Value::Real(1.5).has_type(&BaseType::PosReal));
        assert!(Value::Real(-1.5).has_type(&BaseType::Real));
        assert!(!Value::Real(-1.5).has_type(&BaseType::PosReal));
        assert!(Value::Nat(2).has_type(&BaseType::FinNat(3)));
        assert!(!Value::Nat(3).has_type(&BaseType::FinNat(3)));
        assert!(Value::Nat(100).has_type(&BaseType::Nat));
        assert!(Value::Unit.has_type(&BaseType::Unit));
        assert!(Value::Bool(false).has_type(&BaseType::Bool));
        assert!(
            Value::Dist(Distribution::uniform()).has_type(&BaseType::dist(BaseType::UnitInterval))
        );
        assert!(!Value::Dist(Distribution::uniform()).has_type(&BaseType::dist(BaseType::Real)));
    }

    #[test]
    fn env_operations() {
        let env = Env::new();
        assert!(env.is_empty());
        let env2 = env.extended("x".into(), Value::Real(1.0));
        assert!(env.lookup(&"x".into()).is_none());
        assert_eq!(env2.lookup(&"x".into()), Some(&Value::Real(1.0)));
        assert_eq!(env2.len(), 1);
        let env3 =
            Env::from_bindings([("a".into(), Value::Nat(1)), ("b".into(), Value::Bool(true))]);
        assert_eq!(env3.len(), 2);
    }
}
