//! Shared, index-addressed compiled programs.
//!
//! The coroutine interpreter used to walk the parsed [`Program`] AST
//! directly, which forced every continuation frame to own a clone of the
//! `Cmd` subtree it would run next — a deep copy per `bind`, per branch arm,
//! and per procedure call, multiplied by thousands of joint executions per
//! inference run.  A [`CompiledProgram`] is the zero-copy replacement: each
//! procedure body is flattened once into a table of [`CmdNode`]s addressed
//! by [`CmdId`], procedure references are pre-resolved to [`ProcId`]s, and
//! the `fold`-marker channels of every call site are pre-computed from the
//! callee's header.  The whole structure is immutable and lives behind an
//! [`Arc`], so any number of coroutines — on any number of threads — execute
//! the same compiled program by index without copying a single AST node.
//!
//! Compilation is *infallible* by design: malformed references (an unknown
//! callee, a channel not declared by the enclosing procedure) are recorded
//! in the table and reported as runtime errors only if the offending node is
//! actually executed, exactly as the tree-walking interpreter behaved.

use ppl_dist::Distribution;
use ppl_semantics::eval::eval_dist;
use ppl_semantics::value::Env;
use ppl_syntax::ast::{ChannelName, Cmd, Dir, DistExpr, Expr, Ident, Proc, Program};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a procedure in a [`CompiledProgram`].
pub type ProcId = usize;

/// Index of a command node in a [`CompiledProgram`]'s node table.
pub type CmdId = usize;

/// A procedure compiled to table form.
#[derive(Debug, Clone)]
pub struct CompiledProc {
    /// The procedure name (for error messages and reflection).
    pub name: Ident,
    /// Parameter names in declaration order.
    pub params: Vec<Ident>,
    /// The channel the procedure consumes, if any.
    pub consumes: Option<ChannelName>,
    /// The channel the procedure provides, if any.
    pub provides: Option<ChannelName>,
    /// The entry node of the body.
    pub body: CmdId,
}

/// A pre-resolved (or knowingly unresolved) procedure reference.
#[derive(Debug, Clone)]
pub enum CalleeRef {
    /// The callee exists; calls jump straight to its table entry.
    Resolved(ProcId),
    /// No procedure of this name exists — executing the call reports
    /// `UnknownProc`, matching the tree-walking interpreter.
    Unknown(Ident),
}

/// A sample site's distribution expression, pre-compiled.
///
/// The tree-walking path re-evaluated the full distribution expression at
/// every execution of every sample site.  Compilation splits the cases
/// once, up front:
///
/// * **`Const`** — every parameter is a closed expression and construction
///   succeeds: the [`Distribution`] is built at compile time and handed out
///   per execution by an allocation-free clone (categorical weights are
///   shared behind an `Arc`).
/// * **`Ctor`** — a distribution constructor with variable parameters: the
///   parameters are evaluated straight into the constructor at runtime (no
///   intermediate environment or collection), preserving the evaluation
///   order — and therefore the error behaviour — of the original
///   expression.  Closed-but-invalid constructors (e.g. `Ber(2.0)`) also
///   stay in this form so their `BadDistribution` error still surfaces at
///   execution, exactly as before.
/// * **`Opaque`** — not a constructor application (a variable bound to a
///   distribution value, a conditional choosing between distributions, …):
///   evaluated as a general expression at runtime.
#[derive(Debug, Clone)]
pub enum DistNode {
    /// Constant parameters, folded at compile time.
    Const(Distribution),
    /// A constructor whose parameters are evaluated at runtime.
    Ctor(DistExpr),
    /// A general expression that must evaluate to a distribution value.
    Opaque(Expr),
}

impl DistNode {
    fn compile(e: &Expr) -> DistNode {
        let Expr::Dist(d) = e else {
            return DistNode::Opaque(e.clone());
        };
        if e.free_vars().is_empty() {
            if let Ok(dist) = eval_dist(&Env::new(), d) {
                return DistNode::Const(dist);
            }
        }
        DistNode::Ctor(d.clone())
    }
}

/// One flattened command node.
///
/// Control joins (`Bind`/`Branch`) hold [`CmdId`] indices instead of owned
/// subtrees, so continuation frames can reference "the rest of the program"
/// as a single integer.  Channel operations carry a pre-computed `declared`
/// flag — the compile-time answer to the interpreter's per-step
/// "is this channel declared by the current procedure?" check.
#[derive(Debug, Clone)]
pub enum CmdNode {
    /// `ret(e)`.
    Ret(Expr),
    /// `bnd(first; var. rest)`.
    Bind {
        /// The bound variable.
        var: Ident,
        /// The first command.
        first: CmdId,
        /// The continuation.
        rest: CmdId,
    },
    /// `call(f; ē)` with the fold-marker channels pre-computed from the
    /// callee's header (consumed channel first, then provided).
    Call {
        /// The callee.
        callee: CalleeRef,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Channels on which a `fold` marker must be exchanged before the
        /// callee body runs.
        marks: Vec<ChannelName>,
    },
    /// `sample_dir{chan}(e)`.
    Sample {
        /// Direction relative to this coroutine.
        dir: Dir,
        /// The channel.
        chan: ChannelName,
        /// The distribution expression, pre-compiled (constant parameters
        /// folded).
        dist: DistNode,
        /// Whether `chan` is declared by the enclosing procedure.
        declared: bool,
    },
    /// `cond_dir{chan}(e?; m₁; m₂)`.
    Branch {
        /// Direction relative to this coroutine.
        dir: Dir,
        /// The channel.
        chan: ChannelName,
        /// The predicate (send direction only).
        pred: Option<Expr>,
        /// The then-arm entry node.
        then_cmd: CmdId,
        /// The else-arm entry node.
        else_cmd: CmdId,
        /// Whether `chan` is declared by the enclosing procedure.
        declared: bool,
    },
}

/// An immutable, `Arc`-shareable compiled form of a [`Program`].
#[derive(Debug)]
pub struct CompiledProgram {
    procs: Vec<CompiledProc>,
    nodes: Vec<CmdNode>,
    by_name: HashMap<Ident, ProcId>,
}

impl CompiledProgram {
    /// Compiles a parsed program into shared table form.
    ///
    /// Compilation never fails; see the module docs for how malformed
    /// references are deferred to runtime.
    pub fn compile(program: &Program) -> CompiledProgram {
        let mut by_name: HashMap<Ident, ProcId> = HashMap::new();
        for (id, p) in program.procs.iter().enumerate() {
            // First declaration wins, matching `Program::proc` lookup order.
            by_name.entry(p.name).or_insert(id);
        }
        let mut compiled = CompiledProgram {
            procs: Vec::with_capacity(program.procs.len()),
            nodes: Vec::new(),
            by_name,
        };
        for p in &program.procs {
            let body = compiled.flatten(program, p, &p.body);
            compiled.procs.push(CompiledProc {
                name: p.name,
                params: p.params.iter().map(|(x, _)| *x).collect(),
                consumes: p.consumes,
                provides: p.provides,
                body,
            });
        }
        compiled
    }

    /// Convenience: compile straight into an [`Arc`].
    pub fn compile_shared(program: &Program) -> Arc<CompiledProgram> {
        Arc::new(CompiledProgram::compile(program))
    }

    fn flatten(&mut self, program: &Program, proc: &Proc, cmd: &Cmd) -> CmdId {
        let node = match cmd {
            Cmd::Ret(e) => CmdNode::Ret(e.clone()),
            Cmd::Bind { var, first, rest } => {
                let first = self.flatten(program, proc, first);
                let rest = self.flatten(program, proc, rest);
                CmdNode::Bind {
                    var: *var,
                    first,
                    rest,
                }
            }
            Cmd::Call { proc: callee, args } => match self.by_name.get(callee) {
                Some(&id) => {
                    let header = &program.procs[id];
                    let marks = header
                        .consumes
                        .iter()
                        .chain(header.provides.iter())
                        .cloned()
                        .collect();
                    CmdNode::Call {
                        callee: CalleeRef::Resolved(id),
                        args: args.clone(),
                        marks,
                    }
                }
                None => CmdNode::Call {
                    callee: CalleeRef::Unknown(*callee),
                    args: args.clone(),
                    marks: Vec::new(),
                },
            },
            Cmd::Sample { dir, chan, dist } => CmdNode::Sample {
                dir: *dir,
                chan: *chan,
                dist: DistNode::compile(dist),
                declared: declares(proc, chan),
            },
            Cmd::Branch {
                dir,
                chan,
                pred,
                then_cmd,
                else_cmd,
            } => {
                let then_cmd = self.flatten(program, proc, then_cmd);
                let else_cmd = self.flatten(program, proc, else_cmd);
                CmdNode::Branch {
                    dir: *dir,
                    chan: *chan,
                    pred: pred.clone(),
                    then_cmd,
                    else_cmd,
                    declared: declares(proc, chan),
                }
            }
        };
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Looks up a procedure id by name.
    pub fn proc_id(&self, name: &Ident) -> Option<ProcId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a compiled procedure by name — the entry-point metadata
    /// (parameter arity, consumed and provided channel names) that a query
    /// layer needs to build a [`JointSpec`](crate::JointSpec) and validate
    /// a call *before* spawning any coroutine.
    pub fn proc_named(&self, name: &Ident) -> Option<&CompiledProc> {
        self.proc_id(name).map(|id| self.proc(id))
    }

    /// The compiled procedure at `id`.
    pub fn proc(&self, id: ProcId) -> &CompiledProc {
        &self.procs[id]
    }

    /// The command node at `id`.
    pub fn node(&self, id: CmdId) -> &CmdNode {
        &self.nodes[id]
    }

    /// Number of procedures.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Number of flattened command nodes (all procedures together).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn declares(proc: &Proc, chan: &ChannelName) -> bool {
    proc.consumes.as_ref() == Some(chan) || proc.provides.as_ref() == Some(chan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    #[test]
    fn flattening_resolves_calls_and_channel_roles() {
        let prog = parse_program(
            r#"
            proc Outer() consume latent provide obs {
              let _ <- call Inner();
              return ()
            }
            proc Inner() consume latent provide obs {
              let x <- sample recv latent (Unif);
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let compiled = CompiledProgram::compile(&prog);
        assert_eq!(compiled.num_procs(), 2);
        let outer = compiled.proc_id(&"Outer".into()).unwrap();
        let inner = compiled.proc_id(&"Inner".into()).unwrap();
        assert_eq!(compiled.proc(outer).name.as_str(), "Outer");
        // Walk Outer's body: a Bind whose first is the pre-resolved call.
        let body = compiled.node(compiled.proc(outer).body);
        let CmdNode::Bind { first, .. } = body else {
            panic!("expected bind, got {body:?}");
        };
        let CmdNode::Call { callee, marks, .. } = compiled.node(*first) else {
            panic!("expected call");
        };
        assert!(matches!(callee, CalleeRef::Resolved(id) if *id == inner));
        let mark_names: Vec<_> = marks.iter().map(|c| c.as_str()).collect();
        assert_eq!(mark_names, ["latent", "obs"]);
        // Inner's sample nodes carry pre-resolved declaredness.
        let inner_body = compiled.node(compiled.proc(inner).body);
        let CmdNode::Bind { first, .. } = inner_body else {
            panic!("expected bind");
        };
        assert!(matches!(
            compiled.node(*first),
            CmdNode::Sample { declared: true, .. }
        ));
    }

    #[test]
    fn proc_named_exposes_entry_point_metadata() {
        let prog = parse_program(
            r#"
            proc M(a : real, b : preal) consume lat provide data {
              let x <- sample recv lat (Normal(a, b));
              let _ <- sample send data (Normal(x, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let compiled = CompiledProgram::compile(&prog);
        let meta = compiled.proc_named(&"M".into()).expect("M exists");
        assert_eq!(meta.params.len(), 2);
        assert_eq!(meta.consumes.as_ref().map(|c| c.as_str()), Some("lat"));
        assert_eq!(meta.provides.as_ref().map(|c| c.as_str()), Some("data"));
        assert!(compiled.proc_named(&"Nope".into()).is_none());
    }

    #[test]
    fn unknown_callee_and_undeclared_channel_are_deferred() {
        let prog = parse_program(
            r#"
            proc P() consume latent {
              let _ <- sample recv other (Unif);
              let _ <- call Nope();
              return ()
            }
        "#,
        )
        .unwrap();
        let compiled = CompiledProgram::compile(&prog);
        let p = compiled.proc_id(&"P".into()).unwrap();
        let CmdNode::Bind { first, rest, .. } = compiled.node(compiled.proc(p).body) else {
            panic!("expected bind");
        };
        assert!(matches!(
            compiled.node(*first),
            CmdNode::Sample {
                declared: false,
                ..
            }
        ));
        let CmdNode::Bind { first, .. } = compiled.node(*rest) else {
            panic!("expected bind");
        };
        assert!(matches!(
            compiled.node(*first),
            CmdNode::Call {
                callee: CalleeRef::Unknown(_),
                ..
            }
        ));
        assert!(compiled.proc_id(&"Nope".into()).is_none());
    }

    #[test]
    fn compiled_program_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let prog = parse_program(
            r#"
            proc P() provide latent {
              let x <- sample send latent (Unif);
              return x
            }
        "#,
        )
        .unwrap();
        let compiled = CompiledProgram::compile_shared(&prog);
        assert_send_sync(&compiled);
        assert!(compiled.num_nodes() >= 3);
    }
}
