//! Quickstart: write a model and a guide, let guide-type inference certify
//! that they are compatible (absolutely continuous), and run importance
//! sampling on the posterior.
//!
//! Run with `cargo run --example quickstart`.

use guide_ppl::Session;
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A conjugate normal–normal model: latent x ~ N(0, 1), one noisy
    // observation y ~ N(x, 1).
    let model = r#"
        proc Model() : real consume latent provide obs {
          let x <- sample recv latent (Normal(0.0, 1.0));
          let _ <- sample send obs (Normal(x, 1.0));
          return x
        }
    "#;
    // The guide proposes x from a wider normal.
    let guide = r#"
        proc Guide() provide latent {
          let x <- sample send latent (Normal(0.0, 1.5));
          return ()
        }
    "#;

    // Parse, type-check, infer guide types, and check compatibility.
    let session = Session::from_sources(model, "Model", guide, "Guide")?;
    println!("latent protocol : {}", session.latent_protocol());
    println!("compatible      : {}", session.compatibility().compatible);

    // Condition on y = 1.0 and approximate the posterior of x.
    let mut rng = Pcg32::seed_from_u64(2021);
    let posterior = session.importance_sampling(vec![Sample::Real(1.0)], 20_000, &mut rng)?;
    let mean = posterior
        .posterior_mean_of_sample(0)
        .expect("x is always sampled");
    println!("posterior mean  : {mean:.3}   (analytic answer: 0.500)");
    println!("effective sample size: {:.0}", posterior.ess);
    println!("log evidence    : {:.3}", posterior.log_evidence);

    // The same pair compiled to Pyro (coroutine style).
    let compiled = session.compile_to_pyro(guide_ppl::Style::Coroutine);
    println!(
        "generated Pyro code: {} non-blank lines",
        compiled.generated_loc
    );
    Ok(())
}
