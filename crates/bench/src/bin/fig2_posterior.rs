//! Regenerates **Fig. 2** of the paper: the prior and posterior densities of
//! the latent variable `@x` of the Fig. 1 model, conditioned on the
//! observation `@z = 0.8`.
//!
//! Run with `cargo run -p ppl-bench --bin fig2_posterior --release`.

use ppl_bench::fig2_series;

fn main() {
    let series = fig2_series(200_000, 35, 20_210_620);
    println!("Fig. 2: densities of @x under the prior and the posterior (@z = 0.8)");
    println!("{:>6}  {:>9}  {:>9}   bars", "x", "prior", "posterior");
    for p in &series {
        let bar_len = (p.posterior * 40.0).round() as usize;
        let prior_len = (p.prior * 40.0).round() as usize;
        println!(
            "{:>6.2}  {:>9.4}  {:>9.4}   {}  (prior {})",
            p.x,
            p.prior,
            p.posterior,
            "#".repeat(bar_len.min(60)),
            "·".repeat(prior_len.min(60))
        );
    }
    let width = series.get(1).map(|p| p.x - series[0].x).unwrap_or(0.2);
    let prior_mean: f64 = series.iter().map(|p| p.x * p.prior * width).sum();
    let post_mean: f64 = series.iter().map(|p| p.x * p.posterior * width).sum();
    println!("\nprior mean of @x    : {prior_mean:.3}");
    println!("posterior mean of @x: {post_mean:.3}");
}
