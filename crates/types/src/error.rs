//! Type-error reporting for both the base-type checker and the guide-type
//! checker.

use std::fmt;

/// Stable machine-readable type-error codes.
///
/// These are part of the wire format of `ppl-serve`'s model-admission
/// endpoint: clients match on them, so once shipped a code's meaning never
/// changes. New failure classes get new codes.
pub mod code {
    /// Fallback for checks without a more specific class.
    pub const CHECK: &str = "type.check";
    /// A variable is used but not bound.
    pub const UNBOUND_VAR: &str = "type.unbound_var";
    /// A `call` names a procedure that is not defined.
    pub const UNKNOWN_PROC: &str = "type.unknown_proc";
    /// A `call` passes the wrong number of arguments.
    pub const ARITY: &str = "type.arity";
    /// Two procedures share a name.
    pub const DUP_PROC: &str = "type.dup_proc";
    /// A procedure's body does not produce its declared result type.
    pub const RESULT_MISMATCH: &str = "type.result_mismatch";
    /// A channel is used but not declared by the enclosing procedure.
    pub const CHANNEL_UNDECLARED: &str = "type.channel.undeclared";
    /// A procedure consumes and provides the same channel.
    pub const CHANNEL_SAME: &str = "type.channel.same";
    /// A callee touches a channel foreign to its caller.
    pub const CHANNEL_FOREIGN: &str = "type.channel.foreign";
    /// The two arms of a branch disagree on the channel protocol.
    pub const BRANCH_PROTOCOL: &str = "type.branch.protocol";
    /// The two arms of a branch produce incompatible values.
    pub const BRANCH_VALUE_JOIN: &str = "type.branch.value_join";
    /// A `sample` expression is not a distribution.
    pub const SAMPLE_NOT_DIST: &str = "type.sample.not_dist";
    /// The model and guide do not agree on the latent protocol
    /// (the absolute-continuity admission check of the paper's Thm. 5.2).
    pub const GUIDE_MISMATCH: &str = "type.guide_mismatch";
}

/// A type error produced by the base-type checker or the guide-type
/// inference algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Human-readable description of the error.
    pub message: String,
    /// The procedure in which the error occurred, when known.
    pub in_proc: Option<String>,
    /// Stable machine-readable code (see [`code`]).
    pub code: &'static str,
    /// 1-based (line, column) of the enclosing procedure declaration,
    /// when the program came from source text.
    pub position: Option<(usize, usize)>,
}

impl TypeError {
    /// Creates an error without procedure context, with the generic
    /// [`code::CHECK`] code.
    pub fn new(message: impl Into<String>) -> Self {
        TypeError {
            message: message.into(),
            in_proc: None,
            code: code::CHECK,
            position: None,
        }
    }

    /// Attaches the name of the procedure being checked.
    pub fn in_proc(mut self, name: impl Into<String>) -> Self {
        self.in_proc = Some(name.into());
        self
    }

    /// Prefixes the message with context (e.g. which parameter was being
    /// checked) while keeping the code, position, and procedure — unlike
    /// rewrapping with [`TypeError::new`], which would erase them.
    pub fn context(mut self, prefix: impl fmt::Display) -> Self {
        self.message = format!("{prefix}: {}", self.message);
        self
    }

    /// Tags the error with a stable machine-readable code from [`code`].
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = code;
        self
    }

    /// Attaches the source position of the enclosing procedure declaration.
    /// `(0, 0)` (a programmatically built [`ppl_syntax::Proc`]) is treated
    /// as unknown.
    pub fn at(mut self, pos: (usize, usize)) -> Self {
        if pos != (0, 0) {
            self.position = Some(pos);
        }
        self
    }

    /// Stable machine-readable code identifying the error class.
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// 1-based (line, column) of the enclosing procedure declaration,
    /// when known.
    pub fn position(&self) -> Option<(usize, usize)> {
        self.position
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.in_proc, self.position) {
            (Some(p), Some((line, col))) => write!(
                f,
                "type error in procedure '{p}' at {line}:{col}: {}",
                self.message
            ),
            (Some(p), None) => write!(f, "type error in procedure '{p}': {}", self.message),
            (None, Some((line, col))) => {
                write!(f, "type error at {line}:{col}: {}", self.message)
            }
            (None, None) => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_proc() {
        let e = TypeError::new("mismatch");
        assert_eq!(e.to_string(), "type error: mismatch");
        let e = e.in_proc("Model");
        assert!(e.to_string().contains("'Model'"));
    }

    #[test]
    fn codes_and_positions() {
        let e = TypeError::new("mismatch");
        assert_eq!(e.code(), code::CHECK);
        assert_eq!(e.position(), None);
        let e = e
            .with_code(code::GUIDE_MISMATCH)
            .at((4, 7))
            .in_proc("Model");
        assert_eq!(e.code(), "type.guide_mismatch");
        assert_eq!(e.position(), Some((4, 7)));
        assert!(e.to_string().contains("at 4:7"));
        // A (0, 0) position means "unknown" and is not attached.
        assert_eq!(TypeError::new("x").at((0, 0)).position(), None);
    }
}
