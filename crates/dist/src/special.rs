//! Special functions used by the log-density computations: `ln Γ`,
//! `ln B`, and a numerically stable log-sum-exp.

use std::f64::consts::PI;

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/GSL's classic set);
/// accurate to roughly 15 significant digits over the positive reals.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// The natural logarithm of the gamma function `ln Γ(x)` for `x > 0`
/// (Lanczos approximation, with the reflection formula for `x < 0.5`).
///
/// Returns `f64::INFINITY` at zero and `f64::NAN` for negative integers or
/// NaN input, mirroring the poles of `Γ`.
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 && x.fract() == 0.0 {
        // Poles of Γ at the non-positive integers.
        return if x == 0.0 { f64::INFINITY } else { f64::NAN };
    }
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1 − x) = π / sin(π x).
        let sin_pi_x = (PI * x).sin();
        return PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The natural logarithm of the beta function
/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)` for `a, b > 0`.
pub fn log_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Slice-level [`ln_gamma`]: fills `out[i] = ln_gamma(xs[i])` for every
/// element, bit-for-bit identical to the scalar call.
///
/// Written as a straight-line loop over `&[f64]` so the common all-positive
/// case autovectorises; the element-wise contract makes it safe anywhere the
/// scalar function is used.
///
/// # Panics
///
/// Panics when `xs` and `out` have different lengths.
pub fn ln_gamma_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "ln_gamma_slice length mismatch");
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = ln_gamma(x);
    }
}

/// Numerically stable `ln Σᵢ exp(xᵢ)`.
///
/// The maximum is factored out before exponentiating, so inputs in the
/// hundreds or thousands neither overflow nor underflow.  The empty sum is
/// `ln 0 = -∞`, as is a slice containing only `-∞` entries.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY; // empty, or every weight is zero
    }
    if max.is_infinite() {
        return max; // +∞ dominates
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_closed_forms() {
        // Γ(n) = (n − 1)! for integers.
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-10);
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let expected = 0.5 * std::f64::consts::PI.ln() - 2f64.ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.0).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
    }

    #[test]
    fn log_beta_matches_closed_forms() {
        // B(1, 1) = 1, B(2, 3) = 1/12, B(a, 1) = 1/a.
        assert!((log_beta(1.0, 1.0) - 0.0).abs() < 1e-12);
        assert!((log_beta(2.0, 3.0) + 12f64.ln()).abs() < 1e-12);
        assert!((log_beta(7.0, 1.0) + 7f64.ln()).abs() < 1e-12);
        // Symmetry.
        assert!((log_beta(2.5, 4.5) - log_beta(4.5, 2.5)).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_overflow_safe() {
        // Naive exp would overflow at 1000.
        let xs = [1_000.0, 1_000.0];
        assert!((log_sum_exp(&xs) - (1_000.0 + 2f64.ln())).abs() < 1e-10);
        // ... and underflow at -1000.
        let xs = [-1_000.0, -1_000.0, -1_000.0];
        assert!((log_sum_exp(&xs) - (-1_000.0 + 3f64.ln())).abs() < 1e-10);
        // A huge spread: the small term is negligible but must not poison
        // the result.
        let xs = [800.0, -800.0];
        assert!((log_sum_exp(&xs) - 800.0).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_slice_is_bit_identical_to_scalar() {
        let xs = [
            0.5,
            1.0,
            1.5,
            7.25,
            1e-8,
            1e6,
            -0.5,
            -2.5,
            0.0,
            -3.0,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,       // smallest normal
            f64::MIN_POSITIVE / 4.0, // subnormal
            5e-324,                  // smallest subnormal
        ];
        let mut out = vec![0.0; xs.len()];
        ln_gamma_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o.to_bits(), ln_gamma(x).to_bits(), "ln_gamma({x})");
        }
        // The empty slice is a no-op.
        ln_gamma_slice(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ln_gamma_slice_rejects_mismatched_lengths() {
        ln_gamma_slice(&[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    fn log_sum_exp_handles_subnormals_and_infinities() {
        // Subnormal log-weights behave like any other finite entry.
        let sub: f64 = 5e-324;
        let xs = [sub, 0.0];
        let naive = (sub.exp() + 1.0).ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
        // −∞ entries contribute zero mass even next to subnormals.
        let xs = [f64::NEG_INFINITY, sub, f64::NEG_INFINITY];
        assert!((log_sum_exp(&xs) - sub.exp().ln()).abs() < 1e-12);
        // +∞ dominates everything.
        assert_eq!(log_sum_exp(&[f64::INFINITY, 0.0]), f64::INFINITY);
    }

    #[test]
    fn log_sum_exp_edge_cases() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
        // Zero-weight entries are absorbed.
        let xs = [0.0, f64::NEG_INFINITY];
        assert!((log_sum_exp(&xs) - 0.0).abs() < 1e-12);
        // Matches the naive computation in a safe range.
        let xs = [0.1, -0.3, 1.7];
        let naive: f64 = xs.iter().map(|&x: &f64| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }
}
