//! Coroutine runtime for the guide-types PPL.
//!
//! The paper compiles model and guide programs to Pyro and connects them
//! with `greenlet` coroutines; this crate provides the equivalent substrate
//! natively:
//!
//! * [`program`] — [`CompiledProgram`]: an `Arc`-shared, index-addressed
//!   form of the AST with pre-resolved procedure references and channel
//!   roles, compiled once and executed by any number of particles on any
//!   number of threads;
//! * [`coroutine`] — resumable interpreters over a compiled program that
//!   suspend at every channel operation, holding only node indices and O(1)
//!   scope-chain environments in their continuation frames;
//! * [`joint`] — the driver that runs a model coroutine and a guide
//!   coroutine against each other, conditioning the model's observation
//!   channel on data and recording the latent guidance trace;
//! * `block` (internal) — the vectorised executor behind
//!   [`JointExecutor::run_block_with_scratch`], which steps a whole block
//!   of particles in lockstep over the shared compiled program with
//!   structure-of-arrays lane buffers, falling back to the scalar
//!   coroutine path whenever a program shape it cannot vectorise appears.
//!
//! # Example
//!
//! ```
//! use ppl_runtime::{JointExecutor, JointSpec, LatentSource};
//! use ppl_dist::{Sample, rng::Pcg32};
//! use ppl_syntax::parse_program;
//!
//! let model = parse_program(r#"
//!     proc Model() : real consume latent provide obs {
//!       let x <- sample recv latent (Normal(0.0, 1.0));
//!       let _ <- sample send obs (Normal(x, 1.0));
//!       return x
//!     }
//! "#).unwrap();
//! let guide = parse_program(r#"
//!     proc Guide() provide latent {
//!       let x <- sample send latent (Normal(0.0, 2.0));
//!       return ()
//!     }
//! "#).unwrap();
//! let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
//! let mut rng = Pcg32::seed_from_u64(0);
//! let result = exec.run(&JointSpec::new("Model", "Guide"), LatentSource::FromGuide, &mut rng)?;
//! assert!(result.log_importance_weight().is_finite());
//! # Ok::<(), ppl_runtime::RuntimeError>(())
//! ```

pub(crate) mod block;
pub mod cancel;
pub mod coroutine;
#[cfg(feature = "faults")]
pub mod faults;
pub mod joint;
pub mod program;
pub mod stats;

pub use cancel::CancelToken;
pub use coroutine::{Coroutine, CoroutineError, Resume, Step, Suspend};
pub use joint::{JointExecutor, JointResult, JointScratch, JointSpec, LatentSource, RuntimeError};
pub use program::{CalleeRef, CmdId, CmdNode, CompiledProc, CompiledProgram, DistNode, ProcId};
