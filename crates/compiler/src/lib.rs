//! Prototype compiler from the guide-types PPL to Pyro.
//!
//! The compiler's role in the paper's evaluation is twofold: the generated
//! code runs on Pyro's inference engines (here *substituted* by the native
//! Rust engines in `ppl-inference`, see `DESIGN.md`), and its size and
//! generation time appear in Table 2 as GLOC and part of CG.
//!
//! # Example
//!
//! ```
//! use ppl_compiler::{compile_pair, Style};
//! use ppl_syntax::parse_program;
//!
//! let model = parse_program(
//!     "proc M() consume latent provide obs {
//!        let x <- sample recv latent (Unif);
//!        let _ <- sample send obs (Normal(x, 1.0));
//!        return () }",
//! ).unwrap();
//! let guide = parse_program(
//!     "proc G() provide latent {
//!        let x <- sample send latent (Unif);
//!        return () }",
//! ).unwrap();
//! let out = compile_pair(&model, "M", &guide, "G", Style::Coroutine);
//! assert!(out.model_code.contains("pyro"));
//! assert!(out.generated_loc > 0);
//! ```

pub mod pyro;

pub use pyro::{compile_pair, count_loc, CompiledPair, Style};
