//! Baseline: a trace-type checker in the spirit of Lew et al. (POPL 2020),
//! *Trace Types and Denotational Semantics for Sound Programmable Inference*.
//!
//! The paper compares its guide-type system against trace types in Table 1:
//! trace types record the exact set (sequence) of sample sites a program
//! draws, which works for straight-line programs, bounded loops, and
//! branches that do not change the set of samples, but cannot express
//! (i) general conditionals that determine which random variables exist and
//! (ii) general recursion.
//!
//! This crate implements that baseline faithfully enough to reproduce the
//! `TP?` column of Table 1: a model is accepted iff a finite trace type can
//! be computed for it under those restrictions.

use ppl_syntax::ast::{BaseType, Cmd, Ident, Proc, Program};
use ppl_types::{base_type_of_cmd, CheckCtx, ProcSignature, Sigma, TypeError, TypingCtx};
use std::fmt;

/// One entry of a trace type: a sample site with the carrier type of the
/// value drawn there.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteEntry {
    /// The channel the site communicates on.
    pub channel: String,
    /// The carrier type of the sampled value.
    pub carrier: BaseType,
}

/// A trace type: the exact sequence of sample sites of a program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceType {
    /// The sites in program order.
    pub sites: Vec<SiteEntry>,
}

impl TraceType {
    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if there are no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    fn concat(mut self, other: TraceType) -> TraceType {
        self.sites.extend(other.sites);
        self
    }
}

impl fmt::Display for TraceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}:{}", s.channel, s.carrier)?;
        }
        write!(f, "}}")
    }
}

/// Why a program is not expressible with trace types.
#[derive(Debug, Clone, PartialEq)]
pub enum Unsupported {
    /// A conditional whose branches draw different sets of samples.
    BranchDependentSupport {
        /// A rendering of the two branch trace types.
        detail: String,
    },
    /// (Mutual) recursion between procedures.
    Recursion {
        /// The procedure at which the cycle was detected.
        proc: String,
    },
    /// The program is ill-typed at the base-type level.
    IllTyped(String),
    /// The feature is outside both systems (e.g. stochastic memoization).
    OutOfScope(String),
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::BranchDependentSupport { detail } => {
                write!(f, "a conditional determines the set of samples: {detail}")
            }
            Unsupported::Recursion { proc } => {
                write!(
                    f,
                    "general recursion (via '{proc}') is not supported by trace types"
                )
            }
            Unsupported::IllTyped(m) => write!(f, "ill-typed program: {m}"),
            Unsupported::OutOfScope(m) => write!(f, "out of scope: {m}"),
        }
    }
}

/// The verdict of the baseline checker.
pub type TraceTypeResult = Result<TraceType, Unsupported>;

/// Attempts to compute a trace type for a procedure of a program.
pub fn check_proc(program: &Program, entry: &Ident) -> TraceTypeResult {
    let mut sigma = Sigma::new();
    for p in &program.procs {
        sigma.insert(p.name, ProcSignature::for_proc(p));
    }
    let proc = program
        .proc(entry)
        .ok_or_else(|| Unsupported::IllTyped(format!("unknown procedure '{entry}'")))?;
    let mut stack = vec![*entry];
    trace_type_of_proc(program, &sigma, proc, &mut stack)
}

fn trace_type_of_proc(
    program: &Program,
    sigma: &Sigma,
    proc: &Proc,
    call_stack: &mut Vec<Ident>,
) -> TraceTypeResult {
    let ctx = CheckCtx {
        sigma,
        consumes: proc.consumes,
        provides: proc.provides,
    };
    let gamma = TypingCtx::from_params(&proc.params);
    trace_type_of_cmd(program, sigma, &ctx, &gamma, &proc.body, call_stack)
}

fn trace_type_of_cmd(
    program: &Program,
    sigma: &Sigma,
    ctx: &CheckCtx<'_>,
    gamma: &TypingCtx,
    cmd: &Cmd,
    call_stack: &mut Vec<Ident>,
) -> TraceTypeResult {
    match cmd {
        Cmd::Ret(_) => Ok(TraceType::default()),
        Cmd::Bind { var, first, rest } => {
            let first_ty = trace_type_of_cmd(program, sigma, ctx, gamma, first, call_stack)?;
            let binder_ty = base_type_of_cmd(ctx, gamma, first).map_err(ill_typed)?;
            let inner = gamma.extended(*var, binder_ty);
            let rest_ty = trace_type_of_cmd(program, sigma, ctx, &inner, rest, call_stack)?;
            Ok(first_ty.concat(rest_ty))
        }
        Cmd::Sample { chan, dist, .. } => {
            let carrier = match ppl_types::infer_expr(gamma, dist).map_err(ill_typed)? {
                BaseType::Dist(c) => *c,
                other => {
                    return Err(Unsupported::IllTyped(format!(
                        "sample at a non-distribution type {other}"
                    )))
                }
            };
            Ok(TraceType {
                sites: vec![SiteEntry {
                    channel: chan.to_string(),
                    carrier,
                }],
            })
        }
        Cmd::Branch {
            then_cmd, else_cmd, ..
        } => {
            let t = trace_type_of_cmd(program, sigma, ctx, gamma, then_cmd, call_stack)?;
            let e = trace_type_of_cmd(program, sigma, ctx, gamma, else_cmd, call_stack)?;
            if t == e {
                Ok(t)
            } else {
                Err(Unsupported::BranchDependentSupport {
                    detail: format!("then-branch {t}, else-branch {e}"),
                })
            }
        }
        Cmd::Call { proc: callee, args } => {
            if call_stack.contains(callee) {
                return Err(Unsupported::Recursion {
                    proc: callee.to_string(),
                });
            }
            let callee_proc = program
                .proc(callee)
                .ok_or_else(|| Unsupported::IllTyped(format!("unknown procedure '{callee}'")))?;
            if callee_proc.params.len() != args.len() {
                return Err(Unsupported::IllTyped(format!(
                    "arity mismatch calling '{callee}'"
                )));
            }
            call_stack.push(*callee);
            let result = trace_type_of_proc(program, sigma, callee_proc, call_stack);
            call_stack.pop();
            result
        }
    }
}

fn ill_typed(e: TypeError) -> Unsupported {
    Unsupported::IllTyped(e.message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    #[test]
    fn straight_line_model_is_accepted() {
        // A Bayesian linear-regression-style straight-line model.
        let prog = parse_program(
            r#"
            proc Lr() consume latent provide obs {
              let slope <- sample recv latent (Normal(0.0, 10.0));
              let intercept <- sample recv latent (Normal(0.0, 10.0));
              let _ <- sample send obs (Normal(slope * 1.0 + intercept, 1.0));
              let _ <- sample send obs (Normal(slope * 2.0 + intercept, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let tt = check_proc(&prog, &"Lr".into()).unwrap();
        assert_eq!(tt.len(), 4);
        assert_eq!(tt.sites[0].channel, "latent");
        assert_eq!(tt.sites[2].channel, "obs");
        assert!(tt.to_string().contains("latent:real"));
    }

    #[test]
    fn support_preserving_branch_is_accepted() {
        let prog = parse_program(
            r#"
            proc P() consume latent provide obs {
              let b <- sample recv latent (Ber(0.5));
              let x <- sample recv latent (Normal(if b then 1.0 else -1.0, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        assert!(check_proc(&prog, &"P".into()).is_ok());
    }

    #[test]
    fn support_affecting_branch_is_rejected() {
        // The Fig. 1 model: the else branch draws an extra Beta sample.
        let prog = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let v <- sample recv latent (Gamma(2.0, 1.0));
              if send latent (v < 2.0) {
                let _ <- sample send obs (Normal(-1.0, 1.0));
                return v
              } else {
                let m <- sample recv latent (Beta(3.0, 1.0));
                let _ <- sample send obs (Normal(m, 1.0));
                return v
              }
            }
        "#,
        )
        .unwrap();
        match check_proc(&prog, &"Model".into()) {
            Err(Unsupported::BranchDependentSupport { detail }) => {
                assert!(detail.contains("then-branch"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let prog = parse_program(
            r#"
            proc PcfgGen(k : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < k) {
                let v <- sample recv latent (Normal(0.0, 1.0));
                return v
              } else {
                let lhs <- call PcfgGen(k);
                let rhs <- call PcfgGen(k);
                return lhs + rhs
              }
            }
        "#,
        )
        .unwrap();
        match check_proc(&prog, &"PcfgGen".into()) {
            Err(Unsupported::Recursion { proc }) => assert_eq!(proc, "PcfgGen"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_recursive_calls_are_inlined() {
        let prog = parse_program(
            r#"
            proc Main() consume latent provide obs {
              let _ <- call Sub();
              let _ <- call Sub();
              return ()
            }
            proc Sub() consume latent provide obs {
              let x <- sample recv latent (Unif);
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        )
        .unwrap();
        let tt = check_proc(&prog, &"Main".into()).unwrap();
        assert_eq!(tt.len(), 4);
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let prog = parse_program(
            r#"
            proc A() consume latent {
              let _ <- call B();
              return ()
            }
            proc B() consume latent {
              let _ <- call A();
              return ()
            }
        "#,
        )
        .unwrap();
        assert!(matches!(
            check_proc(&prog, &"A".into()),
            Err(Unsupported::Recursion { .. })
        ));
    }

    #[test]
    fn errors_and_display() {
        let prog = parse_program("proc P() { return () }").unwrap();
        assert!(check_proc(&prog, &"Nope".into()).is_err());
        let u = Unsupported::OutOfScope("stochastic memoization".into());
        assert!(u.to_string().contains("out of scope"));
        let r = Unsupported::Recursion { proc: "F".into() };
        assert!(r.to_string().contains("recursion"));
        let b = Unsupported::BranchDependentSupport { detail: "x".into() };
        assert!(b.to_string().contains("conditional"));
        assert!(Unsupported::IllTyped("m".into())
            .to_string()
            .contains("ill-typed"));
        assert!(TraceType::default().is_empty());
    }
}
