//! Loopback integration tests for the serving layer.
//!
//! The acceptance-critical property: a `POST /v1/query` response is
//! **bit-identical** to serialising an in-process [`Query::run`] for the
//! same (model, observations, method, seed) — across all three inference
//! methods.  The HTTP layer, worker threads, and JSON codec add transport,
//! never perturbation.

use guide_ppl::{Method, Session};
use ppl_inference::{ParamSpec, ViConfig};
use ppl_serve::http::ClientConn;
use ppl_serve::{api, App, Json, Registry, Server};
use std::sync::Arc;

fn boot(cache: usize, workers: usize) -> (Arc<App>, Server) {
    let app = App::new(Registry::from_benchmarks(), cache);
    let server = Server::bind("127.0.0.1:0", workers, app.handler()).expect("bind port 0");
    (app, server)
}

/// Serialises an in-process run exactly as the HTTP route would.
fn in_process_response(
    model: &str,
    observations: Vec<ppl_dist::Sample>,
    guide_args: Vec<ppl_semantics::value::Value>,
    method: &Method,
    seed: u64,
) -> String {
    let session = Session::from_benchmark(model).expect("benchmark session");
    let posterior = session
        .query()
        .observe(observations)
        .seed(seed)
        .guide_args(guide_args)
        .run(method)
        .expect("in-process run");
    api::query_response_json(model, method, seed, &posterior, 0)
        .write()
        .expect("serialise")
}

#[test]
fn query_responses_are_bit_identical_to_in_process_runs_for_all_methods() {
    let (_app, server) = boot(0, 3); // cache disabled: every request runs
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    // Importance sampling on normal-normal (no guide parameters).
    let expected = in_process_response(
        "normal-normal",
        vec![ppl_dist::Sample::Real(1.0)],
        vec![],
        &Method::Importance { particles: 1_500 },
        42,
    );
    let (status, _, body) = conn
        .send(
            "POST",
            "/v1/query",
            Some(
                r#"{"model":"normal-normal","observations":[1.0],
                    "method":{"algorithm":"importance","particles":1500},"seed":42}"#,
            ),
        )
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        String::from_utf8(body).unwrap(),
        expected,
        "IS bit-identity"
    );

    // Metropolis–Hastings on the same model.
    let expected = in_process_response(
        "normal-normal",
        vec![ppl_dist::Sample::Real(1.0)],
        vec![],
        &Method::Mh {
            iterations: 1_000,
            burn_in: 100,
        },
        7,
    );
    let (status, _, body) = conn
        .send(
            "POST",
            "/v1/query",
            Some(
                r#"{"model":"normal-normal","observations":[1.0],
                    "method":{"algorithm":"mh","iterations":1000,"burn_in":100},"seed":7}"#,
            ),
        )
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        String::from_utf8(body).unwrap(),
        expected,
        "MH bit-identity"
    );

    // Variational inference on weight; the wire request omits `params`, so
    // the server uses the registry's initial variational parameters — the
    // in-process side builds the same specs from the benchmark registry.
    let b = ppl_models::benchmark("weight").unwrap();
    let params: Vec<ParamSpec> = b
        .guide_params
        .iter()
        .map(|p| {
            if p.positive {
                ParamSpec::positive(p.name, p.init)
            } else {
                ParamSpec::unconstrained(p.name, p.init)
            }
        })
        .collect();
    let method = Method::Vi {
        params,
        config: ViConfig {
            iterations: 40,
            samples_per_iteration: 5,
            learning_rate: 0.08,
            ..ViConfig::default()
        },
        draw_particles: Some(300),
    };
    let expected = in_process_response(
        "weight",
        vec![ppl_dist::Sample::Real(9.0), ppl_dist::Sample::Real(9.0)],
        vec![],
        &method,
        11,
    );
    let (status, _, body) = conn
        .send(
            "POST",
            "/v1/query",
            Some(
                r#"{"model":"weight","observations":[9.0,9.0],
                    "method":{"algorithm":"vi","iterations":40,"samples_per_iteration":5,
                              "learning_rate":0.08,"draw_particles":300},"seed":11}"#,
            ),
        )
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        String::from_utf8(body).unwrap(),
        expected,
        "VI bit-identity"
    );

    server.shutdown();
}

#[test]
fn invalid_observations_are_structured_400s_never_500s() {
    let (_app, server) = boot(8, 2);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();
    let cases = [
        // Wrong carrier: bool where the protocol wants a real.
        (
            r#"{"model":"ex-1","observations":[true],
                "method":{"algorithm":"importance","particles":100}}"#,
            "obs.carrier",
        ),
        // Wrong count.
        (
            r#"{"model":"ex-1","observations":[0.8,0.8,0.8,0.8],
                "method":{"algorithm":"importance","particles":100}}"#,
            "obs.count",
        ),
        // Kind mismatch: a typed nat where the protocol wants a real
        // (carriers are never coerced).
        (
            r#"{"model":"weight","observations":[{"nat":9},9.0],
                "method":{"algorithm":"importance","particles":100}}"#,
            "obs.carrier",
        ),
    ];
    for (request, code) in cases {
        let (status, _, body) = conn.send("POST", "/v1/query", Some(request)).unwrap();
        assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
        let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let got = parsed
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(got.starts_with(code), "expected {code}, got {got}");
        assert!(parsed.get("error").unwrap().get("position").is_some());
    }
    server.shutdown();
}

#[test]
fn models_metrics_and_keep_alive_work_over_one_connection() {
    let (app, server) = boot(8, 2);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    let (status, _, body) = conn.send("GET", "/v1/models", None).unwrap();
    assert_eq!(status, 200);
    let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let models = parsed.get("models").unwrap().as_arr().unwrap();
    assert!(models.len() >= 15);
    let ex1 = models
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some("ex-1"))
        .expect("ex-1 listed");
    assert!(ex1.get("latent_protocol").unwrap().as_str().is_some());
    assert!(ex1.get("observation_protocol").unwrap().as_str().is_some());

    // Two queries and a metrics read on the same keep-alive connection.
    let query = r#"{"model":"ex-1","observations":[0.8],
                    "method":{"algorithm":"importance","particles":150},"seed":5}"#;
    let (s1, _, b1) = conn.send("POST", "/v1/query", Some(query)).unwrap();
    let (s2, _, b2) = conn.send("POST", "/v1/query", Some(query)).unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "cache hit is byte-identical");
    let (status, _, body) = conn.send("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    // The /metrics request itself is recorded after it responds, so the
    // total covers the three requests before it.
    assert!(parsed.get("requests_total").unwrap().as_f64().unwrap() >= 3.0);
    let cache = parsed.get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
    assert!(cache.get("hit_rate").unwrap().as_f64().unwrap() > 0.0);
    assert!(parsed
        .get("latency_ms")
        .unwrap()
        .get("histogram")
        .unwrap()
        .get("counts")
        .unwrap()
        .as_arr()
        .is_some());
    assert_eq!(app.cache.len(), 1);

    // 404 and 405 answers also arrive on the same connection.
    let (status, _, _) = conn.send("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = conn.send("DELETE", "/v1/query", None).unwrap();
    assert_eq!(status, 405);

    server.shutdown();
}

#[test]
fn batch_over_http_matches_per_query_responses() {
    let (_app, server) = boot(16, 2);
    let addr = server.local_addr();
    let mut conn = ClientConn::connect(addr).unwrap();
    let (status, _, batch_body) = conn
        .send(
            "POST",
            "/v1/batch",
            Some(
                r#"{"model":"normal-normal",
                    "observation_sets":[[0.0],[0.5],[1.0]],
                    "seeds":[100,101,102],
                    "method":{"algorithm":"importance","particles":250}}"#,
            ),
        )
        .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&batch_body));
    let parsed = Json::parse(std::str::from_utf8(&batch_body).unwrap()).unwrap();
    assert_eq!(parsed.get("count").unwrap().as_f64(), Some(3.0));
    let results = parsed.get("results").unwrap().as_arr().unwrap();
    for (i, (obs, seed)) in [(0.0, 100u64), (0.5, 101), (1.0, 102)].iter().enumerate() {
        let (status, _, body) = conn
            .send(
                "POST",
                "/v1/query",
                Some(&format!(
                    r#"{{"model":"normal-normal","observations":[{obs:?}],
                        "method":{{"algorithm":"importance","particles":250}},"seed":{seed}}}"#
                )),
            )
            .unwrap();
        assert_eq!(status, 200);
        let solo = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(results[i], solo, "batch item {i} matches its solo query");
    }
    server.shutdown();
}

#[test]
fn oversized_request_heads_are_rejected_not_buffered() {
    let (_app, server) = boot(4, 2);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();
    // A 16 KiB request line blows the 8 KiB head-line bound: the server
    // answers 400 and closes instead of buffering it.
    let long_path = format!("/{}", "a".repeat(16 * 1024));
    let (status, _, _) = conn.send("GET", &long_path, None).unwrap();
    assert_eq!(status, 400);
    // The server is still healthy for well-formed clients.
    let (status, _, _) =
        ppl_serve::http::http_request(server.local_addr(), "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_joins_and_stops_accepting() {
    let (_app, server) = boot(4, 2);
    let addr = server.local_addr();
    // A request completes before shutdown...
    let (status, _, _) = ppl_serve::http::http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    // ...and afterwards the port no longer serves: either the connection
    // is refused outright or the accept loop is gone and nothing answers.
    match ClientConn::connect(addr) {
        Err(_) => {}
        Ok(mut conn) => {
            assert!(conn.send("GET", "/healthz", None).is_err());
        }
    }
}
