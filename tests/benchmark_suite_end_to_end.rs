//! End-to-end inference over the whole benchmark registry: every
//! expressible benchmark runs its designated inference algorithm through
//! the validated query layer with small budgets and produces sane results.

use guide_ppl::inference::{ParamSpec, ViConfig};
use guide_ppl::{Method, Posterior, Session};
use ppl_models::{all_benchmarks, benchmark, InferenceKind};

#[test]
fn importance_sampling_runs_on_every_is_benchmark() {
    for b in all_benchmarks() {
        if !b.expressible || b.inference != InferenceKind::ImportanceSampling {
            continue;
        }
        let session = Session::from_benchmark(b.name).unwrap();
        let result = session
            .query()
            .observe(b.observations.clone())
            .seed(0xC0FFEE)
            .run(&Method::Importance { particles: 500 })
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(result.num_draws(), 500, "{}", b.name);
        let is = result.as_importance().unwrap();
        assert!(
            is.normalized_weights.is_some(),
            "{}: all particles had zero weight",
            b.name
        );
        assert!(result.ess() >= 1.0, "{}: ess {}", b.name, result.ess());
        assert!(result.log_evidence().unwrap().is_finite(), "{}", b.name);
    }
}

#[test]
fn variational_inference_runs_on_every_vi_benchmark() {
    for b in all_benchmarks() {
        if !b.expressible || b.inference != InferenceKind::VariationalInference {
            continue;
        }
        let session = Session::from_benchmark(b.name).unwrap();
        let params: Vec<ParamSpec> = b
            .guide_params
            .iter()
            .map(|p| {
                if p.positive {
                    ParamSpec::positive(p.name, p.init)
                } else {
                    ParamSpec::unconstrained(p.name, p.init)
                }
            })
            .collect();
        let method = Method::vi(
            params,
            ViConfig {
                iterations: 60,
                samples_per_iteration: 6,
                learning_rate: 0.08,
                fd_epsilon: 1e-4,
                ..ViConfig::default()
            },
        );
        let result = session
            .query()
            .observe(b.observations.clone())
            .seed(0xBEEF)
            .run(&method)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let vi = result.as_vi().unwrap();
        assert_eq!(vi.fit.params.len(), b.guide_params.len(), "{}", b.name);
        assert!(vi.fit.final_elbo().is_finite(), "{}", b.name);
        // Positivity constraints are respected.
        for (value, spec) in vi.fit.params.iter().zip(&b.guide_params) {
            if spec.positive {
                assert!(
                    *value > 0.0,
                    "{}: parameter {} went non-positive",
                    b.name,
                    spec.name
                );
            }
        }
        // The fitted guide yields posterior draws like every other engine.
        assert!(result.num_draws() > 0, "{}", b.name);
        assert!(result.summarize_sample(0).is_some(), "{}", b.name);
    }
}

#[test]
fn mcmc_runs_on_the_outlier_benchmark() {
    let b = benchmark("outlier").unwrap();
    assert_eq!(b.inference, InferenceKind::Mcmc);
    let session = Session::from_benchmark("outlier").unwrap();
    // The MCMC guide takes the old is_outlier as an argument and computes
    // data-dependent proposals — the advanced path: the query validates
    // the observations, then drives GuidedMh directly.
    use guide_ppl::inference::GuidedMh;
    use guide_ppl::semantics::{Trace, Value};
    use ppl_dist::rng::Pcg32;
    let query = session
        .query()
        .observe(b.observations.clone())
        .build()
        .unwrap();
    let extract = |trace: &Trace| -> Vec<Value> {
        vec![Value::Bool(
            trace
                .provider_samples()
                .get(1)
                .and_then(|s| s.as_bool())
                .unwrap_or(false),
        )]
    };
    let mut rng = Pcg32::seed_from_u64(21);
    let result = GuidedMh::new(2_000, 500, &extract)
        .run(query.executor(), query.spec(), &mut rng)
        .unwrap();
    assert!(!result.chain.is_empty());
    assert!(result.acceptance_rate > 0.01);
    // Independence MH through the typed method also works, with the old
    // is_outlier pinned via the query's guide arguments.
    let pinned = session
        .query()
        .observe(b.observations.clone())
        .guide_args(vec![Value::Bool(false)])
        .seed(22)
        .run(&Method::Mh {
            iterations: 2_000,
            burn_in: 500,
        })
        .unwrap();
    assert_eq!(pinned.num_draws(), 1_500);
}

#[test]
fn posterior_quality_spot_checks() {
    // coin: Beta(2,2) prior with 3 heads / 1 tail → posterior mean 5/8.
    let session = Session::from_benchmark("coin").unwrap();
    let b = benchmark("coin").unwrap();
    let result = session
        .query()
        .observe(b.observations.clone())
        .seed(13)
        .run(&Method::Importance { particles: 40_000 })
        .unwrap();
    let mean = result.mean_of_sample(0).unwrap();
    assert!((mean - 0.625).abs() < 0.02, "coin posterior mean {mean}");

    // sprinkler: observing wet grass raises P(rain) well above its prior 0.2.
    let session = Session::from_benchmark("sprinkler").unwrap();
    let b = benchmark("sprinkler").unwrap();
    let result = session
        .query()
        .observe(b.observations.clone())
        .seed(14)
        .run(&Method::Importance { particles: 40_000 })
        .unwrap();
    let p_rain = result
        .probability(&|d| d.samples[0].as_bool() == Some(true))
        .unwrap();
    assert!(p_rain > 0.25 && p_rain < 0.95, "P(rain | wet) = {p_rain}");

    // geometric: observing 2.0 through N(n, 1) keeps the posterior mean of
    // the counter near 1–3.
    let session = Session::from_benchmark("geometric").unwrap();
    let b = benchmark("geometric").unwrap();
    let result = session
        .query()
        .observe(b.observations.clone())
        .seed(15)
        .run(&Method::Importance { particles: 20_000 })
        .unwrap();
    let mean_n = result.expectation(&|d| d.value).unwrap();
    assert!(
        mean_n > 0.5 && mean_n < 3.5,
        "geometric posterior mean {mean_n}"
    );
}
