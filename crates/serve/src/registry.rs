//! The compiled-session registry: builtin benchmarks plus user-submitted
//! models.
//!
//! At boot the server walks `ppl_models`' benchmark registry, runs the
//! full pipeline on every expressible model–guide pair — parse, guide-type
//! inference, compatibility check, compilation to shared
//! `CompiledProgram`s — and keeps each resulting [`Session`] behind an
//! `Arc`.  Request handling therefore never parses or type-checks
//! anything: a query borrows the pre-compiled session, and all its
//! particles (across all worker threads) execute the same immutable
//! program tables, exactly as PR 2's zero-copy core intends.
//!
//! PR 6 adds a second population: **user models** admitted through
//! `POST /v1/models` (see [`crate::ingest`]).  They live in a bounded,
//! interior-mutable side table keyed by their deterministic content-hash
//! id.  When the table is full the least-recently-used user model is
//! evicted; builtins are immortal.  Evicting a model never poisons the
//! response cache: cache keys embed the content-hash id, so a re-submitted
//! model (same id ⇒ same sources ⇒ same deterministic results) may safely
//! reuse cached bytes.
//!
//! Each entry also carries the *rendered protocols* (latent and
//! observation) so `GET /v1/models` can tell clients what a request must
//! look like before they try one — the paper's static-certification
//! discipline, published as API metadata.

use guide_ppl::Session;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity of the user-model table (overridable with
/// [`Registry::with_user_capacity`] / the `--user-models` flag).
pub const DEFAULT_USER_MODEL_CAPACITY: usize = 32;

/// Per-request execution cap for user-submitted models.  Builtins keep the
/// full [`crate::api::MAX_REQUEST_EXECUTIONS`] budget; untrusted models get
/// a tenth of it, folded into the same accounting in `decode_request`.
pub const MAX_USER_MODEL_EXECUTIONS: u64 = crate::api::MAX_REQUEST_EXECUTIONS / 10;

/// A variational parameter default for a registry model's guide (mirrors
/// `ppl_models::GuideParam`, owned).
#[derive(Debug, Clone)]
pub struct ParamDefault {
    /// Parameter name.
    pub name: String,
    /// Initial value.
    pub init: f64,
    /// Whether the parameter is constrained positive.
    pub positive: bool,
}

/// Where a model entered the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelOrigin {
    /// Compiled at boot from the benchmark registry; never evicted.
    Builtin,
    /// Admitted over HTTP through `POST /v1/models`; subject to LRU
    /// eviction.
    User,
}

impl ModelOrigin {
    /// The wire spelling used in listings and `/metrics`.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelOrigin::Builtin => "builtin",
            ModelOrigin::User => "user",
        }
    }
}

/// One servable model: a compiled session plus the metadata the API
/// publishes about it.
#[derive(Debug)]
pub struct ModelEntry {
    /// Stable lookup id: the registry name for builtins, the content-hash
    /// id (`m-<16 hex>`) for user models.  Cache fingerprints embed this,
    /// so it must be unique for the lifetime of the process.
    pub id: String,
    /// Display name (registry name, or the name the submitter chose).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The compiled, type-checked session.
    pub session: Arc<Session>,
    /// The latent protocol, rendered.
    pub latent_protocol: String,
    /// The observation protocol, rendered; `None` when the model has no
    /// observation channel.
    pub observation_protocol: Option<String>,
    /// The benchmark's reference observation count (a hint for clients;
    /// branchy protocols admit other counts too).
    pub default_observation_count: usize,
    /// The algorithm the paper's evaluation uses for this model.
    pub default_method: &'static str,
    /// Default guide arguments (the registry's initial variational
    /// parameter values), used when a request supplies none.
    pub guide_param_defaults: Vec<ParamDefault>,
    /// Whether the model is a builtin or was submitted by a user.
    pub origin: ModelOrigin,
    /// Per-request execution budget for this model (folded into the
    /// global `MAX_REQUEST_EXECUTIONS` accounting).
    pub max_request_executions: u64,
    /// Times this exact model (same content hash) was submitted.
    pub submissions: AtomicU64,
    /// Times this model served a `/v1/query` or `/v1/batch` request.
    pub queries: AtomicU64,
    /// Times this model served a `POST /v1/fit` request (including
    /// idempotent reuses of an existing artifact).
    pub fits: AtomicU64,
    /// Joint executions run on cache misses (particles, MH iterations,
    /// VI samples) — the numerator of the model's throughput gauge.
    pub executions: AtomicU64,
    /// Wall-clock nanoseconds spent running those executions.
    pub execution_nanos: AtomicU64,
}

impl ModelEntry {
    /// Records one query against this model.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries served so far.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Records one fit request against this model.
    pub fn record_fit(&self) {
        self.fits.fetch_add(1, Ordering::Relaxed);
    }

    /// Fit requests served so far.
    pub fn fit_count(&self) -> u64 {
        self.fits.load(Ordering::Relaxed)
    }

    /// Submissions seen so far (1 for builtins).
    pub fn submission_count(&self) -> u64 {
        self.submissions.load(Ordering::Relaxed)
    }

    /// Records one inference run: `executions` joint executions taking
    /// `nanos` wall-clock nanoseconds (cache hits run nothing and record
    /// nothing).
    pub fn record_execution(&self, executions: u64, nanos: u64) {
        self.executions.fetch_add(executions, Ordering::Relaxed);
        self.execution_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Joint executions per second across the model's recorded runs, or
    /// `None` before any run.  Approximate (two relaxed counters), which
    /// is fine for a throughput gauge.
    pub fn executions_per_sec(&self) -> Option<f64> {
        let nanos = self.execution_nanos.load(Ordering::Relaxed);
        if nanos == 0 {
            return None;
        }
        Some(self.executions.load(Ordering::Relaxed) as f64 / (nanos as f64 / 1e9))
    }
}

/// A user-model slot: the entry plus its LRU bookkeeping.
#[derive(Debug)]
struct UserSlot {
    entry: Arc<ModelEntry>,
    /// Monotonic tick of the last lookup (or insertion).
    last_used: u64,
    /// Monotonic tick of the first insertion (for stable listing order).
    inserted: u64,
}

#[derive(Debug, Default)]
struct UserModels {
    slots: HashMap<String, UserSlot>,
    tick: u64,
}

/// The registry of compiled sessions: immutable builtins built at boot,
/// plus a bounded, lock-protected table of user-submitted models.
#[derive(Debug, Default)]
pub struct Registry {
    builtins: Vec<Arc<ModelEntry>>,
    by_name: HashMap<String, usize>,
    user: Mutex<UserModels>,
    user_capacity: usize,
    evictions: AtomicU64,
}

impl Registry {
    /// Builds sessions for every expressible benchmark in `ppl_models`.
    ///
    /// Benchmarks that are registered but not expressible (`dp`) are
    /// skipped; an expressible benchmark whose pipeline fails would be a
    /// bug in the model library, so it panics rather than silently serving
    /// a partial catalogue.
    pub fn from_benchmarks() -> Registry {
        let mut registry = Registry {
            user_capacity: DEFAULT_USER_MODEL_CAPACITY,
            ..Registry::default()
        };
        for b in ppl_models::all_benchmarks() {
            if !b.expressible {
                continue;
            }
            let session = Session::from_benchmark(b.name)
                .unwrap_or_else(|e| panic!("registry model '{}' failed the pipeline: {e}", b.name));
            registry.push(ModelEntry {
                id: b.name.to_string(),
                name: b.name.to_string(),
                description: b.description.to_string(),
                latent_protocol: session.latent_protocol(),
                observation_protocol: session.observation_protocol(),
                default_observation_count: b.observations.len(),
                default_method: b.inference.abbreviation(),
                guide_param_defaults: b
                    .guide_params
                    .iter()
                    .map(|p| ParamDefault {
                        name: p.name.to_string(),
                        init: p.init,
                        positive: p.positive,
                    })
                    .collect(),
                session: Arc::new(session),
                origin: ModelOrigin::Builtin,
                max_request_executions: crate::api::MAX_REQUEST_EXECUTIONS,
                submissions: AtomicU64::new(1),
                queries: AtomicU64::new(0),
                fits: AtomicU64::new(0),
                executions: AtomicU64::new(0),
                execution_nanos: AtomicU64::new(0),
            });
        }
        registry
    }

    /// Sets the user-model capacity (0 disables submissions entirely).
    pub fn with_user_capacity(mut self, capacity: usize) -> Registry {
        self.user_capacity = capacity;
        self
    }

    /// The user-model capacity.
    pub fn user_capacity(&self) -> usize {
        self.user_capacity
    }

    /// Adds a builtin entry (later entries shadow earlier ones by name).
    pub fn push(&mut self, entry: ModelEntry) {
        self.by_name.insert(entry.id.clone(), self.builtins.len());
        self.builtins.push(Arc::new(entry));
    }

    /// Looks up a model by builtin name or user-model id.  A user-model
    /// hit refreshes its LRU position.
    pub fn get(&self, name_or_id: &str) -> Option<Arc<ModelEntry>> {
        if let Some(&i) = self.by_name.get(name_or_id) {
            return Some(Arc::clone(&self.builtins[i]));
        }
        let mut user = self.user.lock().expect("registry poisoned");
        user.tick += 1;
        let tick = user.tick;
        user.slots.get_mut(name_or_id).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.entry)
        })
    }

    /// Registers a user model under its content-hash id.
    ///
    /// Idempotent: re-submitting the same id returns the existing entry
    /// (with its submission counter bumped) and reports `created = false`.
    /// When the table is at capacity the least-recently-used user model is
    /// evicted first — builtins are never candidates.  Returns `None` when
    /// the capacity is zero.
    pub fn insert_user(&self, entry: ModelEntry) -> Option<(Arc<ModelEntry>, bool)> {
        if self.user_capacity == 0 {
            return None;
        }
        let mut user = self.user.lock().expect("registry poisoned");
        user.tick += 1;
        let tick = user.tick;
        if let Some(slot) = user.slots.get_mut(&entry.id) {
            slot.last_used = tick;
            slot.entry.submissions.fetch_add(1, Ordering::Relaxed);
            return Some((Arc::clone(&slot.entry), false));
        }
        while user.slots.len() >= self.user_capacity {
            // Scan-on-evict, like the response cache: the table is small
            // (tens of entries) and eviction is rare.
            let victim = user
                .slots
                .iter()
                .min_by_key(|(id, slot)| (slot.last_used, (*id).clone()))
                .map(|(id, _)| id.clone())
                .expect("non-empty over-capacity table");
            user.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let arc = Arc::new(entry);
        user.slots.insert(
            arc.id.clone(),
            UserSlot {
                entry: Arc::clone(&arc),
                last_used: tick,
                inserted: tick,
            },
        );
        Some((arc, true))
    }

    /// Removes a user model by id.  Builtins cannot be removed.
    pub fn remove_user(&self, id: &str) -> bool {
        let mut user = self.user.lock().expect("registry poisoned");
        user.slots.remove(id).is_some()
    }

    /// All entries: builtins in registry order, then user models in
    /// insertion order.
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        let mut out: Vec<Arc<ModelEntry>> = self.builtins.iter().map(Arc::clone).collect();
        let user = self.user.lock().expect("registry poisoned");
        let mut slots: Vec<&UserSlot> = user.slots.values().collect();
        slots.sort_by_key(|s| s.inserted);
        out.extend(slots.into_iter().map(|s| Arc::clone(&s.entry)));
        out
    }

    /// Number of servable models (builtin + user).
    pub fn len(&self) -> usize {
        self.builtins.len() + self.user_len()
    }

    /// Number of builtin models.
    pub fn builtin_len(&self) -> usize {
        self.builtins.len()
    }

    /// Number of user models currently resident.
    pub fn user_len(&self) -> usize {
        self.user.lock().expect("registry poisoned").slots.len()
    }

    /// User models evicted since boot.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_entry(id: &str) -> ModelEntry {
        let session = Session::from_benchmark("ex-1").unwrap();
        ModelEntry {
            id: id.to_string(),
            name: format!("user-{id}"),
            description: "test user model".into(),
            latent_protocol: session.latent_protocol(),
            observation_protocol: session.observation_protocol(),
            default_observation_count: 0,
            default_method: "IS",
            guide_param_defaults: Vec::new(),
            session: Arc::new(session),
            origin: ModelOrigin::User,
            max_request_executions: MAX_USER_MODEL_EXECUTIONS,
            submissions: AtomicU64::new(1),
            queries: AtomicU64::new(0),
            fits: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            execution_nanos: AtomicU64::new(0),
        }
    }

    #[test]
    fn registry_compiles_every_expressible_benchmark_once() {
        let registry = Registry::from_benchmarks();
        assert!(registry.len() >= 15, "{} models", registry.len());
        let ex1 = registry.get("ex-1").expect("ex-1 registered");
        assert!(!ex1.latent_protocol.is_empty());
        assert!(ex1.observation_protocol.is_some());
        assert_eq!(ex1.default_method, "IS");
        assert_eq!(ex1.default_observation_count, 1);
        assert_eq!(ex1.origin, ModelOrigin::Builtin);
        assert_eq!(
            ex1.max_request_executions,
            crate::api::MAX_REQUEST_EXECUTIONS
        );
        // The inexpressible benchmark is not served.
        assert!(registry.get("dp").is_none());
        assert!(registry.get("unknown").is_none());
        // `weight` carries VI parameter defaults for argument-less requests.
        let weight = registry.get("weight").expect("weight registered");
        assert_eq!(weight.guide_param_defaults.len(), 2);
        assert_eq!(weight.guide_param_defaults[0].name, "mu");
    }

    #[test]
    fn user_models_are_idempotent_and_evict_lru_only() {
        let registry = Registry::from_benchmarks().with_user_capacity(2);
        let builtin_count = registry.builtin_len();
        let (a, created) = registry.insert_user(user_entry("m-a")).unwrap();
        assert!(created);
        assert_eq!(a.submission_count(), 1);
        // Idempotent re-submit: same entry back, counter bumped.
        let (a2, created) = registry.insert_user(user_entry("m-a")).unwrap();
        assert!(!created);
        assert_eq!(a2.id, "m-a");
        assert_eq!(a2.submission_count(), 2);
        registry.insert_user(user_entry("m-b")).unwrap();
        assert_eq!(registry.user_len(), 2);
        // Touch m-a so m-b becomes the LRU victim.
        registry.get("m-a").unwrap();
        registry.insert_user(user_entry("m-c")).unwrap();
        assert_eq!(registry.user_len(), 2);
        assert_eq!(registry.evictions(), 1);
        assert!(registry.get("m-b").is_none(), "LRU user model evicted");
        assert!(registry.get("m-a").is_some());
        assert!(registry.get("m-c").is_some());
        // Builtins are untouched by eviction pressure.
        assert_eq!(registry.builtin_len(), builtin_count);
        assert!(registry.get("ex-1").is_some());
        // Listings put builtins first, then user models by insertion.
        let entries = registry.entries();
        assert_eq!(entries.len(), builtin_count + 2);
        assert_eq!(entries[builtin_count].id, "m-a");
        assert_eq!(entries[builtin_count + 1].id, "m-c");
        // Removal works for user models only.
        assert!(registry.remove_user("m-a"));
        assert!(!registry.remove_user("m-a"));
        assert!(!registry.remove_user("ex-1"));
        assert!(registry.get("ex-1").is_some());
    }

    #[test]
    fn zero_capacity_disables_submissions() {
        let registry = Registry::from_benchmarks().with_user_capacity(0);
        assert!(registry.insert_user(user_entry("m-a")).is_none());
        assert_eq!(registry.user_len(), 0);
    }
}
