//! Recursion: the probabilistic context-free grammar of Fig. 6.  Guide-type
//! inference derives a *parameterised recursive* protocol
//! (`R[X] = ℝ(0,1) ∧ ((ℝ ∧ X) & R[R[X]])`), and the model and guide can be
//! run jointly even though the number of latent variables is unbounded.
//!
//! Run with `cargo run --example pcfg_recursion`.

use guide_ppl::Session;
use ppl_dist::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("ex-2")?;

    // Show the inferred type-operator definitions — the guide types of §4.
    println!("inferred type operators (model):");
    for def in session.model_types().defs.iter() {
        println!("  typedef {}[{}] = {}", def.name, def.param, def.body);
    }
    println!("\nlatent protocol: {}", session.latent_protocol());

    // The PCFG has no observations: importance sampling recovers the prior
    // over generated expression values; report the distribution of the
    // number of leaves (recursion depth proxy).
    let mut rng = Pcg32::seed_from_u64(6);
    let result = session.importance_sampling(vec![], 20_000, &mut rng)?;
    let mean_sites = result
        .posterior_expectation(|p| Some(p.samples.len() as f64))
        .expect("weights are positive");
    println!("\naverage number of latent samples per tree: {mean_sites:.2}");
    let deep = result
        .posterior_probability(|p| p.samples.len() > 8)
        .expect("weights are positive");
    println!("probability of more than 8 latent samples: {deep:.3}");
    Ok(())
}
