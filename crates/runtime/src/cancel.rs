//! Cooperative cancellation and deadlines for joint executions.
//!
//! Inference runs can be long (millions of joint executions), and a server
//! wrapping the engine must be able to stop one *without* killing the
//! worker thread that carries it.  The mechanism here is a [`CancelToken`]:
//! a cheap, cloneable handle combining an optional shared cancel flag
//! (raised by [`CancelToken::cancel`], e.g. when the server drains) with an
//! optional absolute deadline.  The executor stores one token and polls it
//! at the natural work boundaries — once per scalar joint execution, once
//! per particle block, and once per op inside the vectorised block loop —
//! so an expired or cancelled request surfaces as a structured
//! [`RuntimeError`] within one block-step of wall time.
//!
//! The default token ([`CancelToken::none`]) carries neither flag nor
//! deadline, and its [`check`](CancelToken::check) compiles down to two
//! `Option` tests — the hot loops pay nothing when cancellation is unused,
//! which is what keeps the throughput benchmarks honest.
//!
//! Cancellation is *cooperative and lossy by design*: a cancelled run
//! returns an error instead of a result, and callers must not publish
//! partial work (the serving layer never writes a cancelled request's
//! result to its cache or artifact store).  Tokens deliberately do not
//! participate in result determinism: a run that completes before its
//! deadline is bit-identical to the same run with no deadline at all.

use crate::joint::RuntimeError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap cooperative-cancellation handle: an optional shared flag plus an
/// optional absolute deadline.
///
/// Clones share the flag (an `Arc<AtomicBool>`) but each clone owns its
/// deadline, so one server-wide drain token can fan out into per-request
/// tokens via [`CancelToken::with_deadline`]: raising the drain flag
/// cancels every request at once, while each request's own deadline expires
/// independently.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never cancels and never expires; its
    /// [`check`](CancelToken::check) is trivially `Ok` at the cost of two
    /// `Option` discriminant tests.
    pub fn none() -> Self {
        CancelToken::default()
    }

    /// A cancellable token with no deadline.  Raise it with
    /// [`CancelToken::cancel`]; all clones observe the flag.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A copy of this token sharing the same cancel flag but carrying
    /// `deadline` as its own absolute expiry.
    pub fn with_deadline(&self, deadline: Instant) -> Self {
        CancelToken {
            flag: self.flag.clone(),
            deadline: Some(deadline),
        }
    }

    /// A copy of this token sharing the same cancel flag and expiring
    /// `budget` from now.
    pub fn deadline_in(&self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Raises the shared cancel flag; every clone's next
    /// [`check`](CancelToken::check) returns [`RuntimeError::Cancelled`].
    /// No-op on a token built without a flag ([`CancelToken::none`]).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the shared cancel flag has been raised (does not consult the
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Whether this token carries a cancel flag or a deadline at all —
    /// i.e. whether polling it can ever fail.
    pub fn is_armed(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some()
    }

    /// Polls the token: [`RuntimeError::Cancelled`] when the shared flag is
    /// raised, [`RuntimeError::DeadlineExceeded`] when the deadline has
    /// passed, `Ok(())` otherwise.
    ///
    /// The flag is consulted before the deadline, so an explicit cancel
    /// (server drain) wins over a coincident expiry.
    #[inline]
    pub fn check(&self) -> Result<(), RuntimeError> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return Err(RuntimeError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(RuntimeError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fails() {
        let token = CancelToken::none();
        assert!(!token.is_armed());
        assert!(!token.is_cancelled());
        token.cancel(); // no-op
        assert!(token.check().is_ok());
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(clone.check().is_ok());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(RuntimeError::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let token = CancelToken::none().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_armed());
        assert_eq!(token.check(), Err(RuntimeError::DeadlineExceeded));
        let future = CancelToken::none().deadline_in(Duration::from_secs(3600));
        assert!(future.check().is_ok());
    }

    #[test]
    fn derived_deadline_tokens_share_the_flag() {
        let drain = CancelToken::new();
        let request = drain.deadline_in(Duration::from_secs(3600));
        assert!(request.check().is_ok());
        drain.cancel();
        // The explicit cancel wins over the (distant) deadline.
        assert_eq!(request.check(), Err(RuntimeError::Cancelled));
    }
}
