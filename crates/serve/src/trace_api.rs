//! The `GET /v1/trace` routes: read-only access to the flight
//! recorder's ring of completed request traces.
//!
//! * `GET /v1/trace` — the retained traces, newest first, as summaries;
//! * `GET /v1/trace/{trace_id}` — one full trace: per-phase span
//!   timings, engine diagnostics (ESS, acceptance rate, ELBO tail), and
//!   request annotations.
//!
//! Every completed request whose response carried an `X-Ppl-Trace-Id`
//! header is addressable here until the ring (capacity
//! [`crate::api::TRACE_RING_CAPACITY`], oldest evicted first) rolls
//! over.

use crate::api::{ApiError, App};
use crate::http::Response;
use crate::json::Json;
use ppl_obs::{CompletedTrace, PHASES};

fn phase_ms(trace: &CompletedTrace) -> Json {
    Json::Obj(
        PHASES
            .iter()
            .filter(|phase| trace.phase_nanos[phase.index()] > 0)
            .map(|phase| {
                (
                    phase.as_str().to_string(),
                    Json::num_or_null(trace.phase_nanos[phase.index()] as f64 / 1e6),
                )
            })
            .collect(),
    )
}

fn trace_json(trace: &CompletedTrace) -> Json {
    let mut fields = vec![
        ("trace_id".to_string(), Json::str(trace.id.clone())),
        ("route".to_string(), Json::str(trace.route)),
        ("status".to_string(), Json::Num(f64::from(trace.status))),
        ("seq".to_string(), Json::Num(trace.seq as f64)),
        (
            "total_ms".to_string(),
            Json::num_or_null(trace.total_nanos as f64 / 1e6),
        ),
        ("spans_ms".to_string(), phase_ms(trace)),
    ];
    if !trace.engine.is_empty() {
        fields.push((
            "engine".to_string(),
            Json::Obj(
                trace
                    .engine
                    .iter()
                    .map(|(name, value)| (name.clone(), Json::num_or_null(*value)))
                    .collect(),
            ),
        ));
    }
    for (key, value) in &trace.notes {
        fields.push((key.to_string(), Json::str(value.clone())));
    }
    Json::Obj(fields)
}

/// `GET /v1/trace`: the retained traces, newest first.
pub(crate) fn list_traces(app: &App) -> Response {
    let traces = app.obs.recent();
    let body = Json::Obj(vec![
        ("count".into(), Json::Num(traces.len() as f64)),
        ("capacity".into(), Json::Num(app.obs.ring_capacity() as f64)),
        ("enabled".into(), Json::Bool(app.obs.enabled())),
        (
            "traces".into(),
            Json::Arr(traces.iter().map(trace_json).collect()),
        ),
    ]);
    Response::json(200, body.write().expect("finite"))
}

/// `GET /v1/trace/{trace_id}`: one full trace, or `404 trace.unknown`
/// when the id was never recorded or has been evicted.
pub(crate) fn get_trace(app: &App, id: &str) -> Result<Response, ApiError> {
    let trace = app.obs.get(id).ok_or_else(|| {
        ApiError::new(
            404,
            "trace.unknown",
            format!("no retained trace '{id}' (evicted, never recorded, or tracing disabled)"),
        )
    })?;
    Ok(Response::json(
        200,
        trace_json(&trace).write().expect("finite"),
    ))
}
