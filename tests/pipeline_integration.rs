//! End-to-end pipeline integration tests: parse → guide-type inference →
//! compatibility check → compilation → inference, across the paper's
//! example programs (Figs. 1–6) and the benchmark registry.

use guide_ppl::{Method, Posterior, Session, SessionError, Style};
use ppl_dist::Sample;
use ppl_models::sources;

#[test]
fn fig5_pair_passes_the_whole_pipeline() {
    let session = Session::from_sources(sources::EX1_MODEL, "Model", sources::EX1_GUIDE, "Guide1")
        .expect("the Fig. 5 pair is well-typed and compatible");
    // The protocol of eq. (3): ℝ+ ∧ (1 & (ℝ(0,1) ∧ 1)).
    let protocol = session.latent_protocol();
    assert!(protocol.contains("preal"), "{protocol}");
    assert!(protocol.contains("&"), "{protocol}");
    assert!(protocol.contains("ureal"), "{protocol}");
    // The obs protocol of eq. (4): ℝ ∧ 1 (unfold the top-level operator).
    let obs_ty = session
        .compatibility()
        .model_obs
        .clone()
        .expect("the model provides obs");
    let unfolded = match &obs_ty {
        guide_ppl::types::GuideType::App(op, arg) => session
            .model_types()
            .defs
            .unfold(op, arg)
            .expect("obs operator is defined"),
        other => other.clone(),
    };
    assert_eq!(unfolded.to_string(), "real /\\ 1");

    // Compilation to both Pyro styles succeeds and produces plausible code.
    let coro = session.compile_to_pyro(Style::Coroutine);
    let plain = session.compile_to_pyro(Style::Plain);
    assert!(coro.generated_loc > plain.generated_loc);
    assert!(coro.model_code.contains("greenlet"));

    // Inference: posterior mass moves toward the else branch under z = 0.8.
    let posterior = session
        .query()
        .observe(vec![Sample::Real(0.8)])
        .seed(1)
        .run(&Method::Importance { particles: 20_000 })
        .unwrap();
    let p_else = posterior
        .probability(&|d| d.samples[0].as_f64() >= 2.0)
        .unwrap();
    assert!(p_else > 0.5, "posterior else-branch probability {p_else}");
}

#[test]
fn fig3_unsound_is_guide_is_rejected_statically() {
    let err = Session::from_sources(
        sources::EX1_MODEL,
        "Model",
        sources::EX1_BAD_GUIDE,
        "Guide1Bad",
    )
    .unwrap_err();
    match err {
        SessionError::Incompatible {
            model_latent,
            guide_latent,
        } => {
            // The model's @x is ℝ+-valued, the bad guide proposes ℕ.
            assert!(model_latent.contains("preal"), "{model_latent}");
            assert!(guide_latent.contains("nat"), "{guide_latent}");
        }
        other => panic!("expected an incompatibility, got {other}"),
    }
}

#[test]
fn fig4_unsound_vi_guide_is_rejected_statically() {
    // Guide2' proposes @x from a Normal (support ℝ) instead of ℝ+.
    let guide2_prime = r#"
        proc Guide2p(t1 : real, t2 : preal) provide latent {
          let v <- sample send latent (Normal(t1, t2));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
    "#;
    assert!(matches!(
        Session::from_sources(sources::EX1_MODEL, "Model", guide2_prime, "Guide2p"),
        Err(SessionError::Incompatible { .. })
    ));
    // Guide2 (Gamma/Beta with positive parameters) is accepted.
    let guide2 = r#"
        proc Guide2(t1 : preal, t2 : preal, t3 : preal, t4 : preal) provide latent {
          let v <- sample send latent (Gamma(t1, t2));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Beta(t3, t4));
            return ()
          }
        }
    "#;
    assert!(Session::from_sources(sources::EX1_MODEL, "Model", guide2, "Guide2").is_ok());
}

#[test]
fn guide_with_wrong_branch_structure_is_rejected() {
    // A guide that never samples @y even when the model needs it.
    let guide = r#"
        proc GuideMissing() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            return ()
          }
        }
    "#;
    assert!(matches!(
        Session::from_sources(sources::EX1_MODEL, "Model", guide, "GuideMissing"),
        Err(SessionError::Incompatible { .. })
    ));
}

#[test]
fn every_expressible_benchmark_builds_a_session_and_compiles() {
    for b in ppl_models::all_benchmarks() {
        if !b.expressible {
            continue;
        }
        let session = Session::from_benchmark(b.name).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let compiled = session.compile_to_pyro(Style::Coroutine);
        assert!(compiled.generated_loc > 10, "{}", b.name);
        assert!(
            compiled.model_code.contains("pyro"),
            "{}: generated code should target Pyro",
            b.name
        );
    }
}

#[test]
fn recursive_benchmarks_infer_recursive_operators() {
    for name in ["ex-2", "gp-dsl", "marsaglia", "ptrace", "geometric"] {
        let session = Session::from_benchmark(name).unwrap();
        let has_recursive_def = session
            .model_types()
            .defs
            .iter()
            .any(|def| def.body.mentions_op(&def.name));
        assert!(
            has_recursive_def,
            "{name}: expected a recursive type operator"
        );
    }
}

#[test]
fn type_inference_is_fast_in_practice() {
    // §6: "type inference completes in several milliseconds on all of the
    // benchmarks"; allow a generous bound to avoid flakiness on slow CI.
    let start = std::time::Instant::now();
    for b in ppl_models::all_benchmarks() {
        if !b.expressible {
            continue;
        }
        let model = b.parsed_model().unwrap().unwrap();
        let guide = b.parsed_guide().unwrap().unwrap();
        ppl_types::infer_program(&model).unwrap();
        ppl_types::infer_program(&guide).unwrap();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 2_000,
        "type inference over the whole suite took {elapsed:?}"
    );
}

#[test]
fn mcmc_and_is_agree_on_the_normal_normal_posterior() {
    let session = Session::from_benchmark("normal-normal").unwrap();
    let query = session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .seed(10)
        .build()
        .unwrap();
    // The same validated query answers under either algorithm, behind the
    // same `Posterior` interface.
    let is = query
        .run(&Method::Importance { particles: 20_000 })
        .unwrap();
    let mh = query
        .run(&Method::Mh {
            iterations: 20_000,
            burn_in: 2_000,
        })
        .unwrap();
    let is_mean = is.mean_of_sample(0).unwrap();
    let mh_mean = mh.mean_of_sample(0).unwrap();
    assert!((is_mean - 0.5).abs() < 0.05, "IS mean {is_mean}");
    assert!((mh_mean - 0.5).abs() < 0.05, "MH mean {mh_mean}");
    assert!((is_mean - mh_mean).abs() < 0.08);
    assert_eq!(is.method(), "IS");
    assert_eq!(mh.method(), "MCMC");
}
