//! Batched serving determinism: `Session::run_batch` drives many
//! observation sets through one compiled model and is **bit-identical** to
//! running the queries one by one, at every batch thread count — each
//! query's randomness comes from its own seed, so scheduling cannot leak
//! into results.

use guide_ppl::inference::{ParamSpec, ViConfig};
use guide_ppl::{Method, Posterior, PosteriorResult, Query, Session, SessionError};
use ppl_dist::Sample;

/// FNV-1a over the bit patterns of every number that defines a posterior.
fn fingerprint(result: &PosteriorResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |w: u64| {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match result {
        PosteriorResult::Importance(r) => {
            word(r.log_evidence.to_bits());
            word(r.ess.to_bits());
            for p in &r.particles {
                word(p.log_weight.to_bits());
                for s in &p.samples {
                    word(s.as_f64().to_bits());
                }
            }
        }
        PosteriorResult::Mcmc(r) => {
            word(r.acceptance_rate.to_bits());
            for state in &r.chain {
                word(state.log_model.to_bits());
                for s in &state.samples {
                    word(s.as_f64().to_bits());
                }
            }
        }
        PosteriorResult::Vi(r) => {
            for p in &r.fit.params {
                word(p.to_bits());
            }
            for e in &r.fit.elbo_trace {
                word(e.to_bits());
            }
            word(r.draws.log_evidence.to_bits());
        }
    }
    h
}

fn queries(session: &Session) -> Vec<Query> {
    // Five observation sets with distinct seeds — a request batch.
    [0.2, 0.5, 1.0, 1.5, 2.5]
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            session
                .query()
                .observe(vec![Sample::Real(y)])
                .seed(1_000 + i as u64)
                .build()
                .unwrap()
        })
        .collect()
}

#[test]
fn batched_importance_sampling_is_bit_identical_to_individual_runs() {
    let session = Session::from_benchmark("normal-normal").unwrap();
    let queries = queries(&session);
    let method = Method::Importance { particles: 400 };
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| fingerprint(&q.run(&method).unwrap()))
        .collect();
    for threads in [1usize, 4] {
        let batch = session
            .run_batch_threaded(&queries, &method, threads)
            .unwrap();
        assert_eq!(batch.len(), queries.len());
        let got: Vec<u64> = batch.iter().map(fingerprint).collect();
        assert_eq!(got, expected, "batch_threads = {threads}");
    }
    // The default entry point is the single-threaded batch.
    let batch = session.run_batch(&queries, &method).unwrap();
    let got: Vec<u64> = batch.iter().map(fingerprint).collect();
    assert_eq!(got, expected);
}

#[test]
fn batched_mh_and_vi_are_bit_identical_too() {
    let session = Session::from_benchmark("normal-normal").unwrap();
    let queries = queries(&session);
    let mh = Method::Mh {
        iterations: 500,
        burn_in: 100,
    };
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| fingerprint(&q.run(&mh).unwrap()))
        .collect();
    let batch = session.run_batch_threaded(&queries, &mh, 4).unwrap();
    assert_eq!(batch.iter().map(fingerprint).collect::<Vec<_>>(), expected);

    let session = Session::from_benchmark("weight").unwrap();
    let b = ppl_models::benchmark("weight").unwrap();
    let vi_queries: Vec<Query> = (0..4)
        .map(|i| {
            session
                .query()
                .observe(b.observations.clone())
                .seed(7 + i)
                .build()
                .unwrap()
        })
        .collect();
    let vi = Method::Vi {
        params: vec![
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ],
        config: ViConfig {
            iterations: 15,
            samples_per_iteration: 6,
            ..ViConfig::default()
        },
        draw_particles: Some(200),
    };
    let expected: Vec<u64> = vi_queries
        .iter()
        .map(|q| fingerprint(&q.run(&vi).unwrap()))
        .collect();
    let batch = session.run_batch_threaded(&vi_queries, &vi, 3).unwrap();
    assert_eq!(batch.iter().map(fingerprint).collect::<Vec<_>>(), expected);
}

#[test]
fn inner_engine_threads_compose_with_batch_threads() {
    // Each query may itself run its particle loop in parallel; both levels
    // are substream-seeded, so nothing drifts.
    let session = Session::from_benchmark("normal-normal").unwrap();
    let method = Method::Importance { particles: 300 };
    let build = |threads: usize| -> Vec<Query> {
        [0.3, 0.9, 1.7, 2.1]
            .iter()
            .enumerate()
            .map(|(i, &y)| {
                session
                    .query()
                    .observe(vec![Sample::Real(y)])
                    .seed(50 + i as u64)
                    .threads(threads)
                    .build()
                    .unwrap()
            })
            .collect()
    };
    let sequential: Vec<u64> = session
        .run_batch(&build(1), &method)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    let nested: Vec<u64> = session
        .run_batch_threaded(&build(2), &method, 2)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(sequential, nested);
}

#[test]
fn the_lowest_index_failure_wins_at_every_thread_count() {
    let session = Session::from_benchmark("normal-normal").unwrap();
    let good = |seed: u64| {
        session
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(seed)
            .build()
            .unwrap()
    };
    // Queries 1 and 3 fail method validation (guide takes no arguments).
    let bad = || {
        session
            .query()
            .observe(vec![Sample::Real(1.0)])
            .guide_args(vec![guide_ppl::semantics::Value::Real(0.0)])
            .build()
            .unwrap()
    };
    let queries = vec![good(1), bad(), good(2), bad()];
    let method = Method::Importance { particles: 50 };
    let mut errors = Vec::new();
    for threads in [1usize, 4] {
        let err = session
            .run_batch_threaded(&queries, &method, threads)
            .unwrap_err();
        assert!(matches!(err, SessionError::Query(_)), "{err:?}");
        errors.push(err.to_string());
    }
    assert_eq!(errors[0], errors[1], "winning error depends on threads");
}

#[test]
fn batch_results_stay_interchangeable_behind_the_posterior_trait() {
    let session = Session::from_benchmark("normal-normal").unwrap();
    let queries = queries(&session);
    let batch = session
        .run_batch(&queries, &Method::Importance { particles: 2_000 })
        .unwrap();
    // Posterior means shift monotonically with the observation (conjugate
    // normal-normal: E[x | y] = y / 2).
    let means: Vec<f64> = batch.iter().map(|p| p.mean_of_sample(0).unwrap()).collect();
    for pair in means.windows(2) {
        assert!(pair[0] < pair[1] + 0.1, "means not increasing: {means:?}");
    }
    for (p, y) in batch.iter().zip([0.2, 0.5, 1.0, 1.5, 2.5]) {
        let mean = p.mean_of_sample(0).unwrap();
        assert!(
            (mean - y / 2.0).abs() < 0.15,
            "observation {y}: mean {mean}"
        );
    }
}
