//! A minimal, dependency-free SHA-256 (FIPS 180-4).
//!
//! Only used to derive content-hash identifiers — model ids (`m-…`) in the
//! serving layer and fitted-guide artifact ids (`a-…`) in this crate — not
//! a general-purpose crypto surface.  The incremental [`Sha256::update`] /
//! [`Sha256::finalize`] API mirrors the usual digest shape so id recipes
//! can hash length-prefixed fields without intermediate allocation.

/// Incremental SHA-256 hasher state.
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    /// Creates a fresh hasher (FIPS 180-4 initial state).
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Feeds `data` into the hash; may be called repeatedly.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    /// Pads the message and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // The padding bytes above must not count towards the message
        // length, but `update` already added them; the length word was
        // captured before padding, so just write it.
        let block_tail = bit_length.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&block_tail);
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        let empty = Sha256::new().finalize();
        assert_eq!(
            hex(empty),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let mut h = Sha256::new();
        h.update(b"abc");
        assert_eq!(
            hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (exercises padding across a boundary).
        let mut h = Sha256::new();
        h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            hex(h.finalize()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Incremental updates agree with one-shot hashing.
        let mut h = Sha256::new();
        h.update(b"ab");
        h.update(b"c");
        assert_eq!(
            hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }
}
