//! Run-level inference-quality diagnostics.
//!
//! [`Diagnostics`] is the typed view of what an engine knows about the
//! quality of one run — the figures the serving tier surfaces per
//! request (behind `"diagnostics": true`) and folds into its
//! engine-quality gauges.  The engine-side fields are assembled from
//! [`Posterior`](crate::Posterior) by the provided
//! [`diag`](crate::Posterior::diag) method; the runtime-counter fields
//! are `None` until a caller that measured counter deltas around the run
//! (the serving layer) fills them in.

/// Typed run-quality figures for one posterior.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Producing algorithm (`"IS"`, `"MCMC"`, `"VI"`).
    pub method: &'static str,
    /// Number of retained posterior draws.
    pub num_draws: usize,
    /// Effective sample size — the headline weight-degeneracy figure for
    /// importance-style engines.
    pub ess: f64,
    /// Log model-evidence estimate, when the engine provides one.
    pub log_evidence: Option<f64>,
    /// MH acceptance rate (MCMC engines only).
    pub acceptance_rate: Option<f64>,
    /// Final ELBO — mean over the trailing tenth of the trajectory (VI
    /// engines only).
    pub final_elbo: Option<f64>,
    /// Trailing ELBO trajectory values, oldest first (VI engines only;
    /// at most the last eight optimisation steps).  A flat tail means
    /// the fit converged; a climbing one means it was stopped short.
    pub elbo_tail: Vec<f64>,
    /// Vectorised-executor lane splits during the run (delta, filled by
    /// callers that measured `ppl_runtime::stats` around the run).
    pub lane_splits: Option<u64>,
    /// Lane re-convergences during the run (delta, see `lane_splits`).
    pub lane_reconverges: Option<u64>,
    /// Cooperative deadline polls during the run (delta, see
    /// `lane_splits`).
    pub cancel_checks: Option<u64>,
}

#[cfg(test)]
mod tests {
    use crate::importance::ImportanceResult;
    use crate::mcmc::McmcResult;
    use crate::Posterior;

    #[test]
    fn importance_diag_carries_ess_and_evidence() {
        let result = ImportanceResult {
            particles: Vec::new(),
            normalized_weights: Some(Vec::new()),
            ess: 12.5,
            log_evidence: -3.25,
        };
        let diag = result.diag();
        assert_eq!(diag.method, "IS");
        assert_eq!(diag.ess, 12.5);
        assert_eq!(diag.log_evidence, Some(-3.25));
        assert_eq!(diag.acceptance_rate, None);
        assert_eq!(diag.final_elbo, None);
        assert!(diag.elbo_tail.is_empty());
        assert_eq!(diag.cancel_checks, None);
    }

    #[test]
    fn mcmc_diag_carries_acceptance() {
        let result = McmcResult {
            chain: Vec::new(),
            acceptance_rate: 0.42,
        };
        let diag = result.diag();
        assert_eq!(diag.method, "MCMC");
        assert_eq!(diag.acceptance_rate, Some(0.42));
        assert_eq!(diag.log_evidence, None);
    }
}
