//! A strict, std-only JSON parser and writer.
//!
//! The build environment is offline, so `serde` is not available; this
//! module implements the subset of JSON the serving protocol and the
//! artifact store need — which
//! is all of RFC 8259, minus nothing — in plain `std`:
//!
//! * [`Json::parse`] is a recursive-descent parser over the input bytes
//!   that reports every error with its **byte position** ([`JsonError`]),
//!   enforces strict JSON grammar (no trailing commas, no leading zeros,
//!   no bare `NaN`/`Infinity`), decodes `\uXXXX` escapes including
//!   surrogate pairs, and bounds nesting depth so malformed input cannot
//!   overflow the stack;
//! * [`Json::write`] emits compact JSON with round-trippable float
//!   formatting (Rust's shortest-representation `{:?}`, so `-0.0` and
//!   exponent forms survive a parse/write cycle bit-exactly) and rejects
//!   non-finite numbers, which JSON cannot represent;
//! * object members keep **insertion order**, so serialised responses are
//!   deterministic byte-for-byte — the property the serving layer's exact
//!   result cache is built on.

use std::fmt;

/// Maximum nesting depth the parser accepts.  Deeper documents error
/// (`json.depth`) instead of risking stack exhaustion on adversarial
/// input.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always finite: the parser rejects overflow and the writer
    /// rejects non-finite values).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order (duplicates keep the last
    /// occurrence on lookup but are preserved verbatim on write).
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax or encoding error, with the byte position at which it was
/// detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Zero-based byte offset into the input (for parse errors) or the
    /// already-written output length (for write errors).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number, mapping non-finite values (which JSON cannot represent)
    /// to `null` — the convention every numeric field of the serving
    /// protocol uses for `NaN`/`±∞` statistics.
    pub fn num_or_null(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// Member lookup on an object (last duplicate wins); `None` on
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if this is a number
    /// that is one (integral, in `[0, 2^53]` so exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(x) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.  Exactly one value, with nothing but
    /// whitespace after it.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte position of the first
    /// syntax error; the parser never panics on any input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// Serialises the value as compact JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value contains a non-finite number,
    /// which JSON cannot represent (use [`Json::num_or_null`] to map those
    /// to `null` up front).
    pub fn write(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write_into(&mut out)?;
        Ok(out)
    }

    fn write_into(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if !x.is_finite() {
                    return Err(JsonError {
                        offset: out.len(),
                        message: format!("JSON cannot represent the non-finite number {x}"),
                    });
                }
                // Exactly-representable integers print without a trailing
                // `.0` (counts and seeds read as integers on the wire);
                // negative zero keeps the fractional form so its sign bit
                // survives the round trip.  Everything else uses Rust's
                // shortest round-trippable `{:?}` representation, always a
                // valid JSON number for finite values (`1.5`, `1e300`).
                if x.fract() == 0.0
                    && x.abs() <= 9.007_199_254_740_992e15
                    && x.to_bits() != (-0.0f64).to_bits()
                {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!(
                "unexpected character '{}'",
                (other as char).escape_default()
            ))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!(
                                "invalid escape '\\{}'",
                                (other as char).escape_default()
                            )));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str,
                    // so the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let start = self.pos - 2;
        let high = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&high) {
            // A high surrogate must be followed by `\uDC00`–`\uDFFF`.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let c = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| JsonError {
                        offset: start,
                        message: "invalid surrogate pair".into(),
                    });
                }
            }
            return Err(JsonError {
                offset: start,
                message: "unpaired high surrogate in \\u escape".into(),
            });
        }
        if (0xDC00..=0xDFFF).contains(&high) {
            return Err(JsonError {
                offset: start,
                message: "unpaired low surrogate in \\u escape".into(),
            });
        }
        char::from_u32(high).ok_or_else(|| JsonError {
            offset: start,
            message: "invalid \\u escape".into(),
        })
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a non-zero digit followed by digits
        // (strict JSON rejects leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let x: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })?;
        if !x.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number '{text}' overflows an IEEE double"),
            });
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let doc = r#" { "a": [1, -2.5, 1e3, 0.0, -0.0], "b": {"nested": true},
                       "s": "q\"\\\/\b\f\n\r\tA😀", "n": null } "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap(),
            &Json::Bool(true)
        );
        assert_eq!(
            v.get("s").unwrap().as_str().unwrap(),
            "q\"\\/\u{8}\u{c}\n\r\tA😀"
        );
        assert_eq!(v.get("n").unwrap(), &Json::Null);
    }

    #[test]
    fn writes_round_trippable_compact_json() {
        let v = Json::Obj(vec![
            ("x".into(), Json::Num(-0.0)),
            ("big".into(), Json::Num(1e300)),
            ("s".into(), Json::str("a\"b\\c\nd\u{1}")),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        let text = v.write().unwrap();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // -0.0 survives bit-exactly.
        assert_eq!(
            back.get("x").unwrap().as_f64().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn writer_rejects_non_finite_numbers() {
        assert!(Json::Num(f64::NAN).write().is_err());
        assert!(Json::Num(f64::INFINITY).write().is_err());
        assert_eq!(Json::num_or_null(f64::NAN), Json::Null);
        assert_eq!(Json::num_or_null(1.5), Json::Num(1.5));
    }

    #[test]
    fn errors_carry_byte_positions() {
        let err = Json::parse("{\"a\": 01}").unwrap_err();
        assert_eq!(err.offset, 7, "{err}");
        let err = Json::parse("[1, ]").unwrap_err();
        assert_eq!(err.offset, 4, "{err}");
        let err = Json::parse("nul").unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.to_string().starts_with("byte 0:"));
    }
}
