//! The benchmark-model library of the guide-types PPL evaluation.
//!
//! Each [`Benchmark`] bundles the PPL source of a model, a matching guide,
//! conditioning observations, and metadata (which inference algorithm the
//! paper uses for it, variational parameters, handwritten baselines).  The
//! registry reproduces the benchmark suite of §6:
//!
//! * the Table 1 expressiveness set (`lr`, `gmm`, `kalman`, `sprinkler`,
//!   `hmm`, `branching`, `marsaglia`, `dp`, `ptrace`, `aircraft`, `weight`,
//!   `vae`, `ex-1`, `ex-2`, `gp-dsl`);
//! * the Table 2 performance subset (`ex-1`, `branching`, `gmm` with IS;
//!   `weight`, `vae` with VI) together with handwritten baselines;
//! * a few additional models used by the examples and tests (`outlier`,
//!   `normal-normal`, `geometric`, `burglary`, `coin`, `seasons`).
//!
//! # Example
//!
//! ```
//! use ppl_models::{all_benchmarks, benchmark};
//!
//! assert!(all_benchmarks().len() >= 15);
//! let ex1 = benchmark("ex-1").unwrap();
//! let model = ex1.parsed_model().unwrap().unwrap();
//! assert!(model.proc_named("Model").is_some());
//! ```

pub mod handwritten;
pub mod sources;

use ppl_dist::Sample;
use ppl_syntax::{parse_program, ParseError, Program};

/// Which inference algorithm the paper's evaluation runs on a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceKind {
    /// Importance sampling.
    ImportanceSampling,
    /// Variational inference.
    VariationalInference,
    /// Markov-chain Monte Carlo (used by the additional `outlier` model).
    Mcmc,
}

impl InferenceKind {
    /// The abbreviation used in Table 2.
    pub fn abbreviation(&self) -> &'static str {
        match self {
            InferenceKind::ImportanceSampling => "IS",
            InferenceKind::VariationalInference => "VI",
            InferenceKind::Mcmc => "MCMC",
        }
    }
}

/// A variational parameter of a guide (name, initial value, positivity
/// constraint); mirrors `ppl_inference::ParamSpec` without a dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct GuideParam {
    /// Parameter name.
    pub name: &'static str,
    /// Initial value.
    pub init: f64,
    /// Whether the parameter must remain positive.
    pub positive: bool,
}

/// A benchmark model with its guide and experimental configuration.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (matches Table 1, e.g. `"ex-1"`).
    pub name: &'static str,
    /// One-line description (the Table 1 "Description" column).
    pub description: &'static str,
    /// Whether the model is expressible in the coroutine-based PPL at all
    /// (`dp` is not — it needs stochastic memoization).
    pub expressible: bool,
    /// PPL source of the model program (empty when not expressible).
    pub model_src: &'static str,
    /// PPL source of the guide program.
    pub guide_src: &'static str,
    /// Entry procedure of the model.
    pub model_proc: &'static str,
    /// Entry procedure of the guide.
    pub guide_proc: &'static str,
    /// Conditioning observations for the model's `obs` channel.
    pub observations: Vec<Sample>,
    /// The inference algorithm used in the evaluation.
    pub inference: InferenceKind,
    /// Variational parameters of the guide (empty unless VI).
    pub guide_params: Vec<GuideParam>,
    /// Whether the benchmark is part of the paper's Table 1 selection.
    pub in_table1: bool,
}

impl Benchmark {
    /// Parses the model program; `Ok(None)` when the benchmark is not
    /// expressible.
    ///
    /// # Errors
    ///
    /// Returns the parser error if the stored source is malformed (a bug in
    /// this crate, exercised by tests).
    pub fn parsed_model(&self) -> Result<Option<Program>, ParseError> {
        if !self.expressible {
            return Ok(None);
        }
        parse_program(self.model_src).map(Some)
    }

    /// Parses the guide program; `Ok(None)` when the benchmark is not
    /// expressible.
    ///
    /// # Errors
    ///
    /// Returns the parser error if the stored source is malformed.
    pub fn parsed_guide(&self) -> Result<Option<Program>, ParseError> {
        if !self.expressible {
            return Ok(None);
        }
        parse_program(self.guide_src).map(Some)
    }

    /// The number of non-blank source lines of the model (the Table 1 "LOC"
    /// column).
    pub fn model_loc(&self) -> usize {
        self.model_src
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }

    /// Initial guide arguments as plain reals (VI benchmarks only).
    pub fn initial_guide_args(&self) -> Vec<f64> {
        self.guide_params.iter().map(|p| p.init).collect()
    }
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The whole registry.
pub fn all_benchmarks() -> Vec<Benchmark> {
    use sources::*;
    let real = |xs: &[f64]| xs.iter().map(|&x| Sample::Real(x)).collect::<Vec<_>>();
    vec![
        Benchmark {
            name: "lr",
            description: "Bayesian Linear Regression",
            expressible: true,
            model_src: LR_MODEL,
            guide_src: LR_GUIDE,
            model_proc: "Lr",
            guide_proc: "LrGuide",
            observations: real(&[2.1, 3.9, 6.2, 8.1, 9.8]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "gmm",
            description: "Gaussian Mixture Model",
            expressible: true,
            model_src: GMM_MODEL,
            guide_src: GMM_GUIDE,
            model_proc: "Gmm",
            guide_proc: "GmmGuide",
            observations: real(&[-2.2, -1.6, 2.3, 2.8]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "kalman",
            description: "Kalman Smoother",
            expressible: true,
            model_src: KALMAN_MODEL,
            guide_src: KALMAN_GUIDE,
            model_proc: "Kalman",
            guide_proc: "KalmanGuide",
            observations: real(&[0.4, 1.1, 1.7]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "sprinkler",
            description: "Bayesian Network",
            expressible: true,
            model_src: SPRINKLER_MODEL,
            guide_src: SPRINKLER_GUIDE,
            model_proc: "Sprinkler",
            guide_proc: "SprinklerGuide",
            observations: vec![Sample::Bool(true)],
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "hmm",
            description: "Hidden Markov Model",
            expressible: true,
            model_src: HMM_MODEL,
            guide_src: HMM_GUIDE,
            model_proc: "Hmm",
            guide_proc: "HmmGuide",
            observations: real(&[0.9, 1.2, -0.8]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "branching",
            description: "Random Control Flow",
            expressible: true,
            model_src: BRANCHING_MODEL,
            guide_src: BRANCHING_GUIDE,
            model_proc: "Branching",
            guide_proc: "BranchingGuide",
            observations: real(&[3.0]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "marsaglia",
            description: "Marsaglia Algorithm",
            expressible: true,
            model_src: MARSAGLIA_MODEL,
            guide_src: MARSAGLIA_GUIDE,
            model_proc: "Marsaglia",
            guide_proc: "MarsagliaGuide",
            observations: real(&[1.5]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "dp",
            description: "Dirichlet Process",
            expressible: false,
            model_src: "",
            guide_src: "",
            model_proc: "",
            guide_proc: "",
            observations: vec![],
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "ptrace",
            description: "Poisson Trace",
            expressible: true,
            model_src: PTRACE_MODEL,
            guide_src: PTRACE_GUIDE,
            model_proc: "Ptrace",
            guide_proc: "PtraceGuide",
            observations: real(&[4.0]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "aircraft",
            description: "Aircraft Detection",
            expressible: true,
            model_src: AIRCRAFT_MODEL,
            guide_src: AIRCRAFT_GUIDE,
            model_proc: "Aircraft",
            guide_proc: "AircraftGuide",
            observations: real(&[3.2, -1.1]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "weight",
            description: "Unreliable Weigh",
            expressible: true,
            model_src: WEIGHT_MODEL,
            guide_src: WEIGHT_GUIDE,
            model_proc: "WeightModel",
            guide_proc: "WeightGuide",
            observations: real(&[9.0, 9.0]),
            inference: InferenceKind::VariationalInference,
            guide_params: vec![
                GuideParam {
                    name: "mu",
                    init: 2.0,
                    positive: false,
                },
                GuideParam {
                    name: "sigma",
                    init: 1.0,
                    positive: true,
                },
            ],
            in_table1: true,
        },
        Benchmark {
            name: "vae",
            description: "Variational Autoencoder",
            expressible: true,
            model_src: VAE_MODEL,
            guide_src: VAE_GUIDE,
            model_proc: "Vae",
            guide_proc: "VaeGuide",
            observations: real(&[1.0, 0.0, -0.5, 0.3]),
            inference: InferenceKind::VariationalInference,
            guide_params: vec![
                GuideParam {
                    name: "m1",
                    init: 0.0,
                    positive: false,
                },
                GuideParam {
                    name: "s1",
                    init: 1.0,
                    positive: true,
                },
                GuideParam {
                    name: "m2",
                    init: 0.0,
                    positive: false,
                },
                GuideParam {
                    name: "s2",
                    init: 1.0,
                    positive: true,
                },
            ],
            in_table1: true,
        },
        Benchmark {
            name: "ex-1",
            description: "Fig. 5 (conditional model)",
            expressible: true,
            model_src: EX1_MODEL,
            guide_src: EX1_GUIDE,
            model_proc: "Model",
            guide_proc: "Guide1",
            observations: real(&[0.8]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "ex-2",
            description: "Fig. 6 (recursive PCFG)",
            expressible: true,
            model_src: EX2_MODEL,
            guide_src: EX2_GUIDE,
            model_proc: "Pcfg",
            guide_proc: "PcfgGuide",
            observations: vec![],
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "gp-dsl",
            description: "Gaussian Process DSL",
            expressible: true,
            model_src: GP_DSL_MODEL,
            guide_src: GP_DSL_GUIDE,
            model_proc: "GpDsl",
            guide_proc: "GpDslGuide",
            observations: real(&[1.2, 1.5]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: true,
        },
        Benchmark {
            name: "outlier",
            description: "Linear-regression outlier flag (MCMC, §2.2)",
            expressible: true,
            model_src: OUTLIER_MODEL,
            guide_src: OUTLIER_GUIDE,
            model_proc: "OutlierModel",
            guide_proc: "OutlierGuide",
            observations: real(&[9.5]),
            inference: InferenceKind::Mcmc,
            guide_params: vec![],
            in_table1: false,
        },
        Benchmark {
            name: "normal-normal",
            description: "Conjugate normal-normal model",
            expressible: true,
            model_src: NORMAL_NORMAL_MODEL,
            guide_src: NORMAL_NORMAL_GUIDE,
            model_proc: "NormalNormal",
            guide_proc: "NormalNormalGuide",
            observations: real(&[1.0]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: false,
        },
        Benchmark {
            name: "geometric",
            description: "Recursive geometric counter",
            expressible: true,
            model_src: GEOMETRIC_MODEL,
            guide_src: GEOMETRIC_GUIDE,
            model_proc: "GeoModel",
            guide_proc: "GeoGuide",
            observations: real(&[2.0]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: false,
        },
        Benchmark {
            name: "burglary",
            description: "Burglary/alarm Bayesian network",
            expressible: true,
            model_src: BURGLARY_MODEL,
            guide_src: BURGLARY_GUIDE,
            model_proc: "Burglary",
            guide_proc: "BurglaryGuide",
            observations: vec![Sample::Bool(true)],
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: false,
        },
        Benchmark {
            name: "coin",
            description: "Beta-Bernoulli coin bias",
            expressible: true,
            model_src: COIN_MODEL,
            guide_src: COIN_GUIDE,
            model_proc: "Coin",
            guide_proc: "CoinGuide",
            observations: vec![
                Sample::Bool(true),
                Sample::Bool(true),
                Sample::Bool(false),
                Sample::Bool(true),
            ],
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: false,
        },
        Benchmark {
            name: "seasons",
            description: "Categorical season mixture",
            expressible: true,
            model_src: SEASONS_MODEL,
            guide_src: SEASONS_GUIDE,
            model_proc: "Seasons",
            guide_proc: "SeasonsGuide",
            observations: real(&[18.5]),
            inference: InferenceKind::ImportanceSampling,
            guide_params: vec![],
            in_table1: false,
        },
    ]
}

/// Names of the Table 2 performance benchmarks, with their algorithm.
pub fn table2_benchmarks() -> Vec<(&'static str, InferenceKind)> {
    vec![
        ("ex-1", InferenceKind::ImportanceSampling),
        ("branching", InferenceKind::ImportanceSampling),
        ("gmm", InferenceKind::ImportanceSampling),
        ("weight", InferenceKind::VariationalInference),
        ("vae", InferenceKind::VariationalInference),
    ]
}

/// The handwritten importance-sampling baseline for a Table 2 benchmark.
pub fn handwritten_is(name: &str) -> Option<handwritten::HandwrittenIs> {
    match name {
        "ex-1" => Some(handwritten::EX1_HANDWRITTEN),
        "branching" => Some(handwritten::BRANCHING_HANDWRITTEN),
        "gmm" => Some(handwritten::GMM_HANDWRITTEN),
        _ => None,
    }
}

/// The handwritten variational-inference baseline for a Table 2 benchmark.
pub fn handwritten_vi(name: &str) -> Option<handwritten::HandwrittenVi> {
    match name {
        "weight" => Some(handwritten::WEIGHT_HANDWRITTEN),
        "vae" => Some(handwritten::VAE_HANDWRITTEN),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_types::{check_model_guide, infer_program};

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_benchmarks();
        assert!(all.len() >= 20, "found {}", all.len());
        let table1: Vec<_> = all.iter().filter(|b| b.in_table1).collect();
        assert_eq!(table1.len(), 15, "Table 1 selection");
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate benchmark names");
        assert!(benchmark("ex-1").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn every_expressible_benchmark_parses_and_infers_guide_types() {
        for b in all_benchmarks() {
            if !b.expressible {
                assert_eq!(b.name, "dp");
                assert!(b.parsed_model().unwrap().is_none());
                continue;
            }
            let model = b
                .parsed_model()
                .unwrap_or_else(|e| panic!("{}: model parse error: {e}", b.name))
                .unwrap();
            let guide = b
                .parsed_guide()
                .unwrap_or_else(|e| panic!("{}: guide parse error: {e}", b.name))
                .unwrap();
            assert!(model.proc_named(b.model_proc).is_some(), "{}", b.name);
            assert!(guide.proc_named(b.guide_proc).is_some(), "{}", b.name);
            let menv = infer_program(&model)
                .unwrap_or_else(|e| panic!("{}: model type error: {e}", b.name));
            let genv = infer_program(&guide)
                .unwrap_or_else(|e| panic!("{}: guide type error: {e}", b.name));
            let compat =
                check_model_guide(&menv, &b.model_proc.into(), &genv, &b.guide_proc.into())
                    .unwrap_or_else(|e| panic!("{}: compatibility error: {e}", b.name));
            assert!(compat.compatible, "{}: incompatible guide type", b.name);
            assert!(compat.model_branch_free, "{}: branch-freeness", b.name);
            assert!(b.model_loc() > 3, "{}", b.name);
        }
    }

    #[test]
    fn table1_expressiveness_matches_the_paper() {
        // Expected (T?, TP?) per Table 1.
        let expected: Vec<(&str, bool, bool)> = vec![
            ("lr", true, true),
            ("gmm", true, true),
            ("kalman", true, true),
            ("sprinkler", true, true),
            ("hmm", true, true),
            ("branching", true, false),
            ("marsaglia", true, false),
            ("dp", false, false),
            ("ptrace", true, false),
            ("aircraft", true, true),
            ("weight", true, true),
            ("vae", true, true),
            ("ex-1", true, false),
            ("ex-2", true, false),
            ("gp-dsl", true, false),
        ];
        for (name, expect_ours, expect_tracetypes) in expected {
            let b = benchmark(name).unwrap();
            let ours = b.expressible
                && b.parsed_model()
                    .unwrap()
                    .is_some_and(|m| infer_program(&m).is_ok());
            assert_eq!(ours, expect_ours, "{name}: T? column");
            let tp = if !b.expressible {
                false
            } else {
                let model = b.parsed_model().unwrap().unwrap();
                ppl_tracetypes::check_proc(&model, &b.model_proc.into()).is_ok()
            };
            assert_eq!(tp, expect_tracetypes, "{name}: TP? column");
        }
    }

    #[test]
    fn table2_subset_has_handwritten_baselines() {
        for (name, kind) in table2_benchmarks() {
            let b = benchmark(name).unwrap();
            assert_eq!(b.inference, kind, "{name}");
            match kind {
                InferenceKind::ImportanceSampling => {
                    let h = handwritten_is(name).unwrap_or_else(|| panic!("{name}"));
                    assert!(h.loc > 5);
                }
                InferenceKind::VariationalInference => {
                    let h = handwritten_vi(name).unwrap_or_else(|| panic!("{name}"));
                    assert!(h.loc > 5);
                    assert!(!b.guide_params.is_empty());
                    assert_eq!(b.initial_guide_args().len(), b.guide_params.len());
                }
                InferenceKind::Mcmc => unreachable!(),
            }
        }
        assert!(handwritten_is("weight").is_none());
        assert!(handwritten_vi("ex-1").is_none());
    }

    #[test]
    fn importance_sampling_smoke_test_on_selected_benchmarks() {
        use ppl_dist::rng::Pcg32;
        use ppl_inference::ImportanceSampler;
        use ppl_runtime::{JointExecutor, JointSpec};
        for name in [
            "ex-1",
            "branching",
            "coin",
            "normal-normal",
            "geometric",
            "gmm",
        ] {
            let b = benchmark(name).unwrap();
            let model = b.parsed_model().unwrap().unwrap();
            let guide = b.parsed_guide().unwrap().unwrap();
            let exec = JointExecutor::new(&model, &guide, b.observations.clone());
            let spec = JointSpec::new(b.model_proc, b.guide_proc);
            let mut rng = Pcg32::seed_from_u64(17);
            let result = ImportanceSampler::new(300)
                .run(&exec, &spec, &mut rng)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(result.ess > 1.0, "{name}: ess {}", result.ess);
        }
    }

    #[test]
    fn inference_kind_abbreviations() {
        assert_eq!(InferenceKind::ImportanceSampling.abbreviation(), "IS");
        assert_eq!(InferenceKind::VariationalInference.abbreviation(), "VI");
        assert_eq!(InferenceKind::Mcmc.abbreviation(), "MCMC");
    }
}
