//! Overload and robustness coverage: request deadlines, admission-queue
//! shedding, per-endpoint concurrency caps, graceful drain, and (under
//! `--features faults`) the injection harness — handler panics, slow-loris
//! clients, and forced mid-block deadline expiry.
//!
//! The load-bearing invariants:
//!
//! - an expired deadline is a structured `408 query.deadline_exceeded`
//!   that **never** writes to the result cache;
//! - shed traffic is always a `429` with `Retry-After`, never a `500`;
//! - completed responses stay byte-identical with or without a deadline
//!   attached (the deadline is excluded from the cache fingerprint);
//! - drain turns new work into retryable, connection-closing `503`s and
//!   cancels in-flight inference at its next block poll.

use ppl_serve::http::{ClientConn, Handler, Response, Server, ServerConfig};
use ppl_serve::{App, AppLimits, Json, Registry};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot(cache: usize, workers: usize) -> (Arc<App>, Server) {
    let app = App::new(Registry::from_benchmarks(), cache);
    let server = Server::bind("127.0.0.1:0", workers, app.handler()).expect("bind port 0");
    (app, server)
}

fn error_code(body: &[u8]) -> String {
    Json::parse(std::str::from_utf8(body).expect("utf8"))
        .expect("json body")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// A query slow enough (hundreds of ms even in release) that a short
/// deadline always expires mid-run, but bounded well under the
/// per-request execution budget.
const SLOW_QUERY: &str = r#"{"model":"normal-normal","observations":[1.0],
    "method":{"algorithm":"importance","particles":400000},"seed":9,
    "deadline_ms":5}"#;

#[test]
fn expired_deadline_is_a_fast_408_and_never_caches() {
    let (app, server) = boot(16, 2);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();

    let started = Instant::now();
    let (status, _, body) = conn.send("POST", "/v1/query", Some(SLOW_QUERY)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status, 408, "{}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "query.deadline_exceeded");
    // The 5 ms deadline is answered within one block-step, not after the
    // full 400k-particle run; the bound is generous for slow CI machines.
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");

    // The cancelled request must not have cached anything: the same
    // request without a deadline is a MISS, runs fully, and succeeds.
    assert_eq!(app.cache.len(), 0, "cancelled request wrote to the cache");
    let full = SLOW_QUERY.replace(",\n    \"deadline_ms\":5", "");
    assert!(full.len() < SLOW_QUERY.len(), "deadline field was removed");
    let (status, headers, body) = conn.send("POST", "/v1/query", Some(&full)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(header(&headers, "X-Cache"), Some("miss"));

    server.shutdown();
}

#[test]
fn deadline_never_changes_a_completed_response() {
    let (_app, server) = boot(16, 2);
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();
    let plain = r#"{"model":"ex-1","observations":[0.8],
        "method":{"algorithm":"importance","particles":400},"seed":3}"#;
    let with_deadline = r#"{"model":"ex-1","observations":[0.8],
        "method":{"algorithm":"importance","particles":400},"seed":3,
        "deadline_ms":30000}"#;

    let (status, _, body_plain) = conn.send("POST", "/v1/query", Some(plain)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body_plain));
    // The deadline is excluded from the fingerprint, so the deadlined
    // request *hits* the plain request's cache entry byte-for-byte.
    let (status, headers, body_deadlined) =
        conn.send("POST", "/v1/query", Some(with_deadline)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Cache"), Some("hit"));
    assert_eq!(body_plain, body_deadlined, "deadline changed the bytes");
    server.shutdown();
}

#[test]
fn admission_queue_overflow_sheds_429_with_retry_after_never_500() {
    // Transport-level shedding needs no inference: a deliberately slow
    // handler pins the single worker while more connections arrive.
    let sheds = Arc::new(AtomicU64::new(0));
    let handler: Handler = Arc::new(|_req| {
        std::thread::sleep(Duration::from_millis(400));
        Response::json(200, "{\"ok\":true}".to_string())
    });
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        shed_counter: Some(Arc::clone(&sheds)),
        ..ServerConfig::default()
    };
    let server = Server::bind_with_config("127.0.0.1:0", config, handler).expect("bind");
    let addr = server.local_addr();

    // Occupy the worker...
    let busy = std::thread::spawn(move || {
        let mut conn = ClientConn::connect(addr).unwrap();
        conn.send("GET", "/slow", None).unwrap().0
    });
    std::thread::sleep(Duration::from_millis(100));
    // ...fill the one queue slot...
    let queued = std::thread::spawn(move || {
        let mut conn = ClientConn::connect(addr).unwrap();
        conn.send("GET", "/slow", None).unwrap().0
    });
    std::thread::sleep(Duration::from_millis(100));
    // ...and the next connection must be shed at the door: a 429 with
    // Retry-After, not a hang and not a 500.
    let mut conn = ClientConn::connect(addr).unwrap();
    let (status, headers, body) = conn.send("GET", "/slow", None).unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "server.overloaded");
    assert!(header(&headers, "Retry-After").is_some(), "no Retry-After");
    assert_eq!(sheds.load(Ordering::SeqCst), 1);

    // The accepted requests still complete normally.
    assert_eq!(busy.join().unwrap(), 200);
    assert_eq!(queued.join().unwrap(), 200);
    server.shutdown();
}

#[test]
fn per_endpoint_caps_shed_queries_without_touching_health() {
    // A one-slot query cap, occupied by a slow query, sheds the second
    // query while /healthz stays green.
    let app = App::with_limits(
        Registry::from_benchmarks(),
        16,
        ppl_inference::DEFAULT_BLOCK,
        Arc::new(ppl_store::Store::in_memory(8)),
        AppLimits {
            query_concurrency: 1,
            ..AppLimits::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", 3, app.handler()).expect("bind");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut conn = ClientConn::connect(addr).unwrap();
        // No deadline: occupies the one query slot for the full run.
        let body = SLOW_QUERY.replace(",\n    \"deadline_ms\":5", "");
        conn.send("POST", "/v1/query", Some(&body)).unwrap().0
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut conn = ClientConn::connect(addr).unwrap();
    let (status, headers, body) = conn
        .send(
            "POST",
            "/v1/query",
            Some(r#"{"model":"ex-1","observations":[0.8],"method":{"algorithm":"importance","particles":100}}"#),
        )
        .unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "server.overloaded");
    assert!(header(&headers, "Retry-After").is_some());

    let (status, _, _) = conn.send("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "health must not be capped");
    assert_eq!(slow.join().unwrap(), 200);

    // The shed shows up in /metrics.
    let (_, _, body) = conn.send("GET", "/metrics", None).unwrap();
    let metrics = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let serverm = metrics.get("server").expect("server section");
    assert_eq!(
        serverm.get("cap_sheds_total").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        serverm.get("inflight_query").and_then(Json::as_f64),
        Some(0.0),
        "slots leak"
    );
    server.shutdown();
}

#[test]
fn drain_rejects_new_work_and_cancels_in_flight_inference() {
    let (app, server) = boot(16, 3);
    let addr = server.local_addr();

    // A long, deadline-free query that drain must cut short.
    let app2 = Arc::clone(&app);
    let inflight = std::thread::spawn(move || {
        let _ = &app2; // keep the app alive for the request's duration
        let mut conn = ClientConn::connect(addr).unwrap();
        let body = SLOW_QUERY.replace(",\n    \"deadline_ms\":5", "");
        conn.send("POST", "/v1/query", Some(&body)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    app.begin_drain();

    // The in-flight query is cancelled at its next block poll and comes
    // back as a retryable 503, not a 200 and not a 500.
    let (status, _, body) = inflight.join().unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "server.draining");
    assert_eq!(app.cache.len(), 0, "a drained request must not cache");

    // New POSTs are rejected up front with Retry-After + Connection:
    // close; health stays readable for the orchestrator.
    let mut conn = ClientConn::connect(addr).unwrap();
    let (status, headers, body) = conn
        .send(
            "POST",
            "/v1/query",
            Some(r#"{"model":"ex-1","observations":[0.8],"method":{"algorithm":"importance","particles":50}}"#),
        )
        .unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "server.draining");
    assert!(header(&headers, "Retry-After").is_some());
    assert_eq!(header(&headers, "Connection"), Some("close"));
    // The server honoured its own Connection: close.
    assert!(conn.send("GET", "/healthz", None).is_err());
    let mut fresh = ClientConn::connect(addr).unwrap();
    assert_eq!(fresh.send("GET", "/healthz", None).unwrap().0, 200);

    server.shutdown();
}

#[test]
fn slow_loris_client_is_disconnected_by_the_read_timeout() {
    let handler: Handler = Arc::new(|_req| Response::json(200, "{\"ok\":true}".to_string()));
    let config = ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::bind_with_config("127.0.0.1:0", config, handler).expect("bind");
    let addr = server.local_addr();

    // Dribble half a request head, then stall past the read timeout.
    let mut loris = std::net::TcpStream::connect(addr).unwrap();
    loris
        .write_all(b"POST /v1/query HTTP/1.1\r\nContent-")
        .unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    // The server has dropped the connection: the read side sees EOF (or a
    // reset) instead of a response that never comes.
    loris
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut buf = [0u8; 64];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!(
            "server answered a half-request: {:?}",
            String::from_utf8_lossy(&buf[..n])
        ),
    }

    // The stalled client did not take the worker with it.
    let mut conn = ClientConn::connect(addr).unwrap();
    assert_eq!(conn.send("GET", "/healthz", None).unwrap().0, 200);
    server.shutdown();
}

#[cfg(feature = "faults")]
mod faults {
    use super::*;
    use std::sync::Mutex;

    /// The runtime stall hook is process-global; serialise the tests that
    /// touch it (or depend on it being zero).
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn injected_panic_is_a_structured_500_and_counted() {
        let _guard = FAULT_LOCK.lock().unwrap();
        let (app, server) = boot(4, 2);
        let mut conn = ClientConn::connect(server.local_addr()).unwrap();

        let (status, _, body) = conn.send("POST", "/v1/_faults/panic", Some("{}")).unwrap();
        assert_eq!(status, 500);
        assert_eq!(error_code(&body), "server.panic");
        assert_eq!(app.metrics.panics(), 1);

        // The worker survived; the same connection was closed by the
        // transport backstop, but a fresh one serves normally.
        let mut fresh = ClientConn::connect(server.local_addr()).unwrap();
        assert_eq!(fresh.send("GET", "/healthz", None).unwrap().0, 200);
        let (_, _, body) = fresh.send("GET", "/metrics", None).unwrap();
        let metrics = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(
            metrics
                .get("server")
                .and_then(|s| s.get("panics_total"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        server.shutdown();
    }

    #[test]
    fn stalled_ops_force_mid_block_deadline_expiry() {
        let _guard = FAULT_LOCK.lock().unwrap();
        let (app, server) = boot(4, 2);
        let mut conn = ClientConn::connect(server.local_addr()).unwrap();

        // 2 ms per vectorised op: even one block of 64 particles now far
        // outlives a 40 ms deadline, so expiry must be caught *inside* the
        // block (the per-op poll), not only between blocks.
        let (status, _, _) = conn
            .send("POST", "/v1/_faults/stall", Some("{\"micros\":2000}"))
            .unwrap();
        assert_eq!(status, 200);

        let started = Instant::now();
        let (status, _, body) = conn
            .send(
                "POST",
                "/v1/query",
                Some(
                    r#"{"model":"normal-normal","observations":[1.0],
                        "method":{"algorithm":"importance","particles":20000},
                        "seed":1,"deadline_ms":40}"#,
                ),
            )
            .unwrap();
        let elapsed = started.elapsed();

        // Always reset the global stall before asserting.
        let (reset, _, _) = conn
            .send("POST", "/v1/_faults/stall", Some("{\"micros\":0}"))
            .unwrap();
        assert_eq!(reset, 200);

        assert_eq!(status, 408, "{}", String::from_utf8_lossy(&body));
        assert_eq!(error_code(&body), "query.deadline_exceeded");
        // 20 000 particles × ≥1 op × 2 ms ≈ ≥40 s if run to completion;
        // mid-block expiry answers orders of magnitude sooner.
        assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
        assert_eq!(app.cache.len(), 0);
        server.shutdown();
    }
}
