//! Request metrics for the `/metrics` endpoint.
//!
//! Counters are relaxed atomics (they are diagnostics, not
//! synchronisation); request latency feeds a fixed-range
//! [`Histogram`] from `ppl_dist::stats` — the same estimator the posterior
//! summaries use — plus exact running sum/max, all behind one short-lived
//! mutex.

use crate::json::Json;
use ppl_dist::stats::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Upper bound of the latency histogram range, in milliseconds; slower
/// requests land in [`Metrics::latency_overflow`] instead of a bin.
pub const LATENCY_RANGE_MS: f64 = 2_000.0;

/// Number of latency histogram bins.
pub const LATENCY_BINS: usize = 40;

/// The routes the server distinguishes in its per-route counters.
/// `/v1/models/{id}` and `/v1/artifacts/{id}` lifecycle requests are
/// normalised to their `{id}` buckets.
pub const ROUTES: [&str; 10] = [
    "/healthz",
    "/metrics",
    "/v1/models",
    "/v1/models/{id}",
    "/v1/query",
    "/v1/batch",
    "/v1/fit",
    "/v1/artifacts",
    "/v1/artifacts/{id}",
    "other",
];

struct Latency {
    histogram: Histogram,
    overflow: u64,
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

/// Aggregated serving metrics.
pub struct Metrics {
    started: Instant,
    requests_by_route: [AtomicU64; ROUTES.len()],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    latency: Mutex<Latency>,
    /// Handler panics caught and converted to `500 server.panic`.
    panics: AtomicU64,
    /// Requests shed by a per-endpoint concurrency cap (`429`).
    cap_sheds: AtomicU64,
    /// Connections shed at the transport admission queue (`429`).  Behind
    /// an `Arc` so it can be handed to
    /// [`crate::http::ServerConfig::shed_counter`] — the transport layer
    /// sheds before the handler (and therefore these metrics) ever runs.
    queue_sheds: Arc<AtomicU64>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("total_requests", &self.total_requests())
            .finish_non_exhaustive()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics with the clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            requests_by_route: std::array::from_fn(|_| AtomicU64::new(0)),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency: Mutex::new(Latency {
                histogram: Histogram::new(0.0, LATENCY_RANGE_MS, LATENCY_BINS),
                overflow: 0,
                count: 0,
                sum_ms: 0.0,
                max_ms: 0.0,
            }),
            panics: AtomicU64::new(0),
            cap_sheds: AtomicU64::new(0),
            queue_sheds: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Counts one caught handler panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by a per-endpoint concurrency cap.
    pub fn record_cap_shed(&self) {
        self.cap_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Requests shed by per-endpoint concurrency caps so far.
    pub fn cap_sheds(&self) -> u64 {
        self.cap_sheds.load(Ordering::Relaxed)
    }

    /// Connections shed at the transport admission queue so far.
    pub fn queue_sheds(&self) -> u64 {
        self.queue_sheds.load(Ordering::Relaxed)
    }

    /// The shared queue-shed counter, for wiring into
    /// [`crate::http::ServerConfig::shed_counter`].
    pub fn queue_sheds_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.queue_sheds)
    }

    /// Records one handled request: its route (normalised to a [`ROUTES`]
    /// entry), response status, and wall-clock latency.
    pub fn record(&self, path: &str, status: u16, latency_ms: f64) {
        let path = if path.starts_with("/v1/models/") {
            "/v1/models/{id}"
        } else if path.starts_with("/v1/artifacts/") {
            "/v1/artifacts/{id}"
        } else {
            path
        };
        let idx = ROUTES
            .iter()
            .position(|r| *r == path)
            .unwrap_or(ROUTES.len() - 1);
        self.requests_by_route[idx].fetch_add(1, Ordering::Relaxed);
        let status_counter = match status {
            200..=299 => &self.responses_2xx,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        status_counter.fetch_add(1, Ordering::Relaxed);
        let mut latency = self.latency.lock().expect("metrics poisoned");
        if latency_ms >= LATENCY_RANGE_MS {
            latency.overflow += 1;
        } else {
            latency.histogram.add(latency_ms, 1.0);
        }
        latency.count += 1;
        latency.sum_ms += latency_ms;
        latency.max_ms = latency.max_ms.max(latency_ms);
    }

    /// Total requests across every route.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_route
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Requests that fell outside the latency histogram range.
    pub fn latency_overflow(&self) -> u64 {
        self.latency.lock().expect("metrics poisoned").overflow
    }

    /// Renders the metrics document served by `/metrics`.  `cache_hits`,
    /// `cache_misses`, and `cache_len` come from the response cache.
    pub fn render(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> Json {
        let latency = self.latency.lock().expect("metrics poisoned");
        let mean_ms = if latency.count > 0 {
            latency.sum_ms / latency.count as f64
        } else {
            0.0
        };
        let histogram = Json::Obj(vec![
            (
                "range_ms".into(),
                Json::Arr(vec![Json::Num(0.0), Json::Num(LATENCY_RANGE_MS)]),
            ),
            (
                "centers_ms".into(),
                Json::Arr(
                    latency
                        .histogram
                        .centers()
                        .into_iter()
                        .map(Json::num_or_null)
                        .collect(),
                ),
            ),
            (
                "counts".into(),
                Json::Arr(
                    latency
                        .histogram
                        .bin_weights()
                        .iter()
                        .map(|&w| Json::num_or_null(w))
                        .collect(),
                ),
            ),
            ("overflow".into(), Json::Num(latency.overflow as f64)),
        ]);
        let routes = ROUTES
            .iter()
            .zip(&self.requests_by_route)
            .map(|(route, counter)| {
                (
                    route.to_string(),
                    Json::Num(counter.load(Ordering::Relaxed) as f64),
                )
            })
            .collect();
        let cache_total = cache_hits + cache_misses;
        let hit_rate = if cache_total > 0 {
            cache_hits as f64 / cache_total as f64
        } else {
            0.0
        };
        Json::Obj(vec![
            (
                "uptime_seconds".into(),
                Json::num_or_null(self.started.elapsed().as_secs_f64()),
            ),
            (
                "requests_total".into(),
                Json::Num(self.total_requests() as f64),
            ),
            ("requests_by_route".into(), Json::Obj(routes)),
            (
                "responses".into(),
                Json::Obj(vec![
                    (
                        "2xx".into(),
                        Json::Num(self.responses_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "4xx".into(),
                        Json::Num(self.responses_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "5xx".into(),
                        Json::Num(self.responses_5xx.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "latency_ms".into(),
                Json::Obj(vec![
                    ("mean".into(), Json::num_or_null(mean_ms)),
                    ("max".into(), Json::num_or_null(latency.max_ms)),
                    ("histogram".into(), histogram),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(cache_hits as f64)),
                    ("misses".into(), Json::Num(cache_misses as f64)),
                    ("hit_rate".into(), Json::num_or_null(hit_rate)),
                    ("entries".into(), Json::Num(cache_len as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_routes_statuses_and_latency() {
        let m = Metrics::new();
        m.record("/healthz", 200, 0.5);
        m.record("/v1/query", 200, 12.0);
        m.record("/v1/query", 400, 1.0);
        m.record("/nope", 404, 0.1);
        m.record("/v1/models/m-0011223344556677", 200, 0.2);
        m.record("/v1/artifacts/a-0011223344556677", 200, 0.2);
        m.record("/v1/query", 500, LATENCY_RANGE_MS + 1.0);
        assert_eq!(m.total_requests(), 7);
        assert_eq!(m.latency_overflow(), 1);
        let json = m.render(3, 1, 2);
        assert_eq!(
            json.get("requests_by_route").unwrap().get("/v1/query"),
            Some(&Json::Num(3.0))
        );
        assert_eq!(
            json.get("requests_by_route")
                .unwrap()
                .get("/v1/models/{id}"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("requests_by_route")
                .unwrap()
                .get("/v1/artifacts/{id}"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("requests_by_route").unwrap().get("other"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("responses").unwrap().get("4xx"),
            Some(&Json::Num(2.0))
        );
        assert_eq!(
            json.get("responses").unwrap().get("5xx"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            json.get("cache").unwrap().get("hit_rate"),
            Some(&Json::Num(0.75))
        );
        // The document always serialises (every number finite).
        assert!(json.write().is_ok());
    }
}
