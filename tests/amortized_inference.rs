//! End-to-end amortized inference at the core layer: a VI fit is
//! checkpointed as a content-addressed [`Artifact`], and a warm query
//! rebuilt from that artifact reproduces the fresh fit-then-draw result
//! bit-for-bit while running **zero** fit iterations.
//!
//! Everything lives in one `#[test]` because the proof deltas the
//! process-wide `ppl_inference::counters`, and the default test harness
//! runs `#[test]` functions concurrently.

use guide_ppl::{sample_to_artifact_obs, Method, Posterior, PosteriorResult, Session};
use ppl_dist::Sample;
use ppl_inference::{counters, ParamSpec, ViConfig};
use ppl_store::{compute_id, Artifact, FitConfig, FitParam, Store, ARTIFACT_FORMAT_VERSION};

const SEED: u64 = 11;
const DRAWS: usize = 300;

fn weight_specs() -> Vec<ParamSpec> {
    let b = ppl_models::benchmark("weight").unwrap();
    b.guide_params
        .iter()
        .map(|p| {
            if p.positive {
                ParamSpec::positive(p.name, p.init)
            } else {
                ParamSpec::unconstrained(p.name, p.init)
            }
        })
        .collect()
}

fn vi_config() -> ViConfig {
    ViConfig {
        iterations: 40,
        samples_per_iteration: 5,
        learning_rate: 0.08,
        ..ViConfig::default()
    }
}

/// Renders the posterior to comparable bytes: every draw, every weight,
/// every diagnostic, formatted with shortest-round-trip floats so any
/// bit-level difference shows.
fn posterior_bytes(posterior: &PosteriorResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let vi = posterior.as_vi().expect("VI posterior");
    for (name, value) in posterior.diagnostics() {
        let _ = writeln!(out, "{name}={value:?}");
    }
    for (i, p) in vi.fit.params.iter().enumerate() {
        let _ = writeln!(out, "param[{i}]={p:?}");
    }
    posterior.for_each_draw(&mut |draw| {
        let _ = write!(out, "w={:?}:v={:?}:", draw.weight, draw.value);
        for sample in draw.samples {
            let _ = write!(out, "{sample:?},");
        }
        out.push('\n');
    });
    out
}

#[test]
fn warm_artifact_query_is_bit_identical_and_runs_zero_fit_executions() {
    let session = Session::from_benchmark("weight").unwrap();
    let observations = vec![Sample::Real(9.0), Sample::Real(9.0)];
    let specs = weight_specs();
    let config = vi_config();

    // Fresh path: one Method::Vi run (fit + draw from one seeded RNG).
    let fresh = session
        .query()
        .observe(observations.clone())
        .seed(SEED)
        .run(&Method::Vi {
            params: specs.clone(),
            config: config.clone(),
            draw_particles: Some(DRAWS),
        })
        .unwrap();

    // Checkpoint path: fit once, persist the artifact, reload it from
    // disk, rebuild the query from the artifact, draw warm.
    let query = session
        .query()
        .observe(observations.clone())
        .seed(SEED)
        .build()
        .unwrap();
    let fit = query.fit_vi(&specs, &config).unwrap();

    let schema: Vec<FitParam> = specs
        .iter()
        .map(|p| FitParam {
            name: p.name.clone(),
            init: p.init,
            positive: p.positive,
        })
        .collect();
    let fit_config = FitConfig {
        iterations: config.iterations,
        samples_per_iteration: config.samples_per_iteration,
        learning_rate: config.learning_rate,
        fd_epsilon: config.fd_epsilon,
    };
    let obs_lits: Vec<_> = observations.iter().map(sample_to_artifact_obs).collect();
    let model_id = "m-testmodel0000000".to_string();
    let id = compute_id(&model_id, &obs_lits, &[], &schema, &fit_config, SEED);
    let trace_len = fit.result.elbo_trace.len();
    let tail_len = (trace_len / 10).max(1);
    let artifact = Artifact {
        version: ARTIFACT_FORMAT_VERSION,
        id: id.clone(),
        model_id,
        seed: SEED,
        observations: obs_lits,
        model_args: vec![],
        schema: schema.clone(),
        config: fit_config.clone(),
        params: fit.result.params.clone(),
        fit_iterations: trace_len as u64,
        elbo_tail: fit.result.elbo_trace[trace_len - tail_len..].to_vec(),
        rng_state: fit.rng_state,
        rng_inc: fit.rng_inc,
    };

    // The id is a pure function of the fit inputs: recomputing it from
    // the artifact's own fields reproduces it (same-fit ⇒ same-id).
    assert_eq!(
        compute_id(
            &artifact.model_id,
            &artifact.observations,
            &artifact.model_args,
            &artifact.schema,
            &artifact.config,
            artifact.seed,
        ),
        id
    );

    // Round-trip through a persistent store, as a restart would.
    let dir = std::env::temp_dir().join(format!("ppl-amortized-test-{}", std::process::id()));
    let store = Store::open(&dir, 4).unwrap();
    let (stored_id, created) = store.put(artifact).unwrap();
    assert!(created);
    drop(store);
    let reopened = Store::open(&dir, 4).unwrap();
    assert_eq!(reopened.skipped_at_boot(), 0);
    let loaded = reopened.get(&stored_id).expect("artifact survives restart");
    std::fs::remove_dir_all(&dir).ok();

    // Warm path: rebuild the query from the artifact and draw — counting
    // fit executions around it to prove the fit never ran.
    let warm_query = session.query().vi_from_artifact(&loaded).unwrap();
    let fit_before = counters::vi_fit_executions();
    let joint_before = counters::joint_executions();
    let warm = warm_query.run_vi_warm(&loaded, Some(DRAWS)).unwrap();
    assert_eq!(
        counters::vi_fit_executions() - fit_before,
        0,
        "warm query must schedule zero VI fit executions"
    );
    assert_eq!(
        counters::joint_executions() - joint_before,
        DRAWS as u64,
        "warm query schedules only the draw pass"
    );

    assert_eq!(
        posterior_bytes(&warm),
        posterior_bytes(&fresh),
        "warm artifact query must be bit-identical to the fresh fit"
    );

    // The artifact rejects mismatched guides: a schema of the wrong arity
    // fails GuideArity validation instead of producing garbage.
    let mut wrong = (*loaded).clone();
    wrong.schema.push(FitParam {
        name: "extra".into(),
        init: 0.0,
        positive: false,
    });
    wrong.params.push(0.0);
    assert!(session.query().vi_from_artifact(&wrong).is_err());
}
