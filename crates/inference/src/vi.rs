//! Variational inference (§5.2, "VI").
//!
//! The guide is a *parameterised* program `m_{g,θ}`; VI maximises the
//! evidence lower bound
//! `ELBO(θ) = E_{σ ~ q_θ}[ log w_m(σ) − log w_g(σ; θ) ]`,
//! which is well-defined exactly when the guide is absolutely continuous
//! with respect to the posterior — the property certified by the guide
//! types (Theorem 5.2 and Lemma C.3).
//!
//! The gradient estimator is the score-function (REINFORCE) estimator with
//! a mean baseline:
//! `∇_θ ELBO ≈ mean_i [ (f_i − b) · ∇_θ log w_g(σ_i; θ) ]`, where
//! `f_i = log w_m − log w_g` and the per-parameter score derivatives are
//! obtained by re-scoring the *fixed* trace at perturbed parameter values
//! (central finite differences).  Parameters declared positive are
//! optimised in log space.  The optimiser is Adam.
//!
//! *Substitution note* (see `DESIGN.md`): the paper delegates optimisation
//! to Pyro's SVI/autograd; the estimator here exercises the same joint
//! coroutine executions and the same absolute-continuity requirement.

use crate::engine::Engine;
use crate::importance::DEFAULT_BLOCK;
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_runtime::{
    JointExecutor, JointResult, JointScratch, JointSpec, LatentSource, RuntimeError,
};
use ppl_semantics::value::Value;

/// A variational parameter: a name, an initial value, and whether it is
/// constrained to be positive.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter name (for reporting).
    pub name: String,
    /// Initial (constrained-space) value.
    pub init: f64,
    /// If true, the parameter is kept positive by optimising its logarithm.
    pub positive: bool,
}

impl ParamSpec {
    /// A positive-constrained parameter.
    pub fn positive(name: impl Into<String>, init: f64) -> Self {
        ParamSpec {
            name: name.into(),
            init,
            positive: true,
        }
    }

    /// An unconstrained parameter.
    pub fn unconstrained(name: impl Into<String>, init: f64) -> Self {
        ParamSpec {
            name: name.into(),
            init,
            positive: false,
        }
    }
}

/// Configuration of the variational-inference engine.
#[derive(Debug, Clone)]
pub struct ViConfig {
    /// Number of optimisation iterations.
    pub iterations: usize,
    /// Monte-Carlo samples per iteration.
    pub samples_per_iteration: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Finite-difference step for the score derivative.
    pub fd_epsilon: f64,
    /// Worker threads for the per-iteration mini-batch and gradient loops
    /// (1 = sequential; results are bit-identical for every thread count).
    pub num_threads: usize,
    /// Particles stepped in lockstep per vectorised block in the mini-batch
    /// and ELBO-estimation loops (the gradient replays stay scalar).  Results
    /// are bit-identical at every block size; clamped to at least 1.
    pub block: usize,
}

impl Default for ViConfig {
    fn default() -> Self {
        ViConfig {
            iterations: 200,
            samples_per_iteration: 10,
            learning_rate: 0.05,
            fd_epsilon: 1e-4,
            num_threads: 1,
            block: DEFAULT_BLOCK,
        }
    }
}

/// The result of a VI run.
#[derive(Debug, Clone)]
pub struct ViResult {
    /// Final (constrained-space) parameter values, in [`ParamSpec`] order.
    pub params: Vec<f64>,
    /// Parameter names.
    pub names: Vec<String>,
    /// ELBO estimate per iteration (the optimisation trajectory).
    pub elbo_trace: Vec<f64>,
}

impl ViResult {
    /// The final ELBO estimate (mean of the last 10% of iterations).
    pub fn final_elbo(&self) -> f64 {
        let n = self.elbo_trace.len();
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let tail = (n / 10).max(1);
        self.elbo_trace[n - tail..].iter().sum::<f64>() / tail as f64
    }

    /// Looks up a final parameter value by name.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.params[i])
    }
}

/// The variational-inference engine.
#[derive(Debug, Clone)]
pub struct VariationalInference {
    /// Engine configuration.
    pub config: ViConfig,
}

impl VariationalInference {
    /// Creates an engine with the given configuration.
    pub fn new(config: ViConfig) -> Self {
        VariationalInference { config }
    }

    /// Estimates the ELBO at fixed parameter values.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from the joint executor.
    pub fn estimate_elbo(
        &self,
        executor: &JointExecutor,
        spec: &JointSpec,
        params: &[f64],
        num_samples: usize,
        rng: &mut Pcg32,
    ) -> Result<f64, RuntimeError> {
        let run_spec = spec_with_params(spec, params);
        let engine = Engine::new(self.config.num_threads);
        let fs = engine.run_particle_blocks_with(
            num_samples,
            self.config.block.max(1),
            rng,
            || (JointScratch::new(), Vec::new()),
            |(scratch, joints): &mut (JointScratch, Vec<JointResult>),
             master,
             first,
             len,
             out|
             -> Result<(), RuntimeError> {
                joints.clear();
                executor.run_block_with_scratch(&run_spec, master, first, len, scratch, joints)?;
                for joint in joints.drain(..) {
                    let f = joint.log_model - joint.log_guide;
                    scratch.recycle(joint.latent);
                    out.push(if f.is_finite() { f } else { -1e6 });
                }
                Ok(())
            },
        )?;
        Ok(fs.iter().sum::<f64>() / num_samples as f64)
    }

    /// Runs stochastic optimisation of the ELBO.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from the joint executor.
    pub fn run(
        &self,
        executor: &JointExecutor,
        spec: &JointSpec,
        param_specs: &[ParamSpec],
        rng: &mut Pcg32,
    ) -> Result<ViResult, RuntimeError> {
        let dim = param_specs.len();
        // Unconstrained optimisation variables.
        let mut theta: Vec<f64> = param_specs
            .iter()
            .map(|p| if p.positive { p.init.ln() } else { p.init })
            .collect();
        crate::counters::record_joint_executions(
            self.config.iterations * self.config.samples_per_iteration,
        );
        crate::counters::record_vi_fit_executions(
            self.config.iterations * self.config.samples_per_iteration,
        );
        let mut adam = Adam::new(dim, self.config.learning_rate);
        let mut elbo_trace = Vec::with_capacity(self.config.iterations);
        let engine = Engine::new(self.config.num_threads);

        for _ in 0..self.config.iterations {
            // Cooperative cancellation once per optimisation step, on top
            // of the per-block polls inside the executor.
            executor.cancel_token().check()?;
            let constrained = constrain(&theta, param_specs);
            let run_spec = spec_with_params(spec, &constrained);

            // Draw the mini-batch of joint executions at the current θ —
            // independent particles stepped block-at-a-time by the vectorised
            // executor, fanned out over the worker threads with one RNG
            // substream per lane.  The traces are retained (the gradient
            // stage replays them), so only the coroutine stacks recycle here.
            let batch = engine.run_particle_blocks_with(
                self.config.samples_per_iteration,
                self.config.block.max(1),
                rng,
                || (JointScratch::new(), Vec::new()),
                |(scratch, joints): &mut (JointScratch, Vec<JointResult>),
                 master,
                 first,
                 len,
                 out|
                 -> Result<(), RuntimeError> {
                    joints.clear();
                    executor
                        .run_block_with_scratch(&run_spec, master, first, len, scratch, joints)?;
                    for joint in joints.drain(..) {
                        let f = joint.log_model - joint.log_guide;
                        out.push((if f.is_finite() { f } else { -1e6 }, joint.latent));
                    }
                    Ok(())
                },
            )?;
            let (fs, traces): (Vec<f64>, Vec<_>) = batch.into_iter().unzip();
            let baseline = fs.iter().sum::<f64>() / fs.len() as f64;
            elbo_trace.push(baseline);

            // Score-function gradient with per-parameter finite-difference
            // score derivatives, evaluated by re-scoring the fixed traces.
            // Each sample's contribution is independent (replays draw
            // nothing from the RNG), so this loop parallelises too; the
            // contributions are summed in sample order afterwards to keep
            // the floating-point reduction deterministic.  Every worker
            // re-scores through its own scratch pool and a single reusable
            // spec whose parameter values are overwritten in place.
            let contributions = engine.run_particles_with(
                fs.len(),
                rng,
                || (JointScratch::new(), spec.clone()),
                |(scratch, run_spec), i, prng| -> Result<Vec<f64>, RuntimeError> {
                    let advantage = fs[i] - baseline;
                    let mut g = vec![0.0; dim];
                    if advantage == 0.0 {
                        return Ok(g);
                    }
                    for (d, slot) in g.iter_mut().enumerate() {
                        let mut plus = theta.clone();
                        plus[d] += self.config.fd_epsilon;
                        let mut minus = theta.clone();
                        minus[d] -= self.config.fd_epsilon;
                        set_params(run_spec, &constrain(&plus, param_specs));
                        let lp = score_guide(executor, run_spec, &traces[i], prng, scratch)?;
                        set_params(run_spec, &constrain(&minus, param_specs));
                        let lm = score_guide(executor, run_spec, &traces[i], prng, scratch)?;
                        if lp.is_finite() && lm.is_finite() {
                            *slot = advantage * (lp - lm) / (2.0 * self.config.fd_epsilon);
                        }
                    }
                    Ok(g)
                },
            )?;
            let mut grad = vec![0.0; dim];
            for c in &contributions {
                for (g, &gc) in grad.iter_mut().zip(c) {
                    *g += gc;
                }
            }
            for g in grad.iter_mut() {
                *g /= self.config.samples_per_iteration as f64;
            }
            adam.step(&mut theta, &grad);
        }

        Ok(ViResult {
            params: constrain(&theta, param_specs),
            names: param_specs.iter().map(|p| p.name.clone()).collect(),
            elbo_trace,
        })
    }
}

/// Scores a fixed latent trace under the guide described by `spec` by a
/// replayed joint execution, returning `log w_g`.  The trace is borrowed —
/// replay walks it in place — the RNG is never consulted because a replay
/// draws nothing, and the freshly recorded trace is recycled immediately,
/// so a re-score is allocation-free in the steady state.
fn score_guide(
    executor: &JointExecutor,
    spec: &JointSpec,
    trace: &ppl_semantics::trace::Trace,
    rng: &mut Pcg32,
    scratch: &mut JointScratch,
) -> Result<f64, RuntimeError> {
    let joint = executor.run_with_scratch(spec, LatentSource::Replay(trace), rng, scratch)?;
    let log_guide = joint.log_guide;
    scratch.recycle(joint.latent);
    Ok(log_guide)
}

/// Overwrites `spec`'s guide arguments with the given parameter values in
/// place (reusing the argument buffer).
fn set_params(spec: &mut JointSpec, params: &[f64]) {
    spec.guide_args.clear();
    spec.guide_args
        .extend(params.iter().map(|&p| Value::Real(p)));
}

fn spec_with_params(spec: &JointSpec, params: &[f64]) -> JointSpec {
    let mut out = spec.clone();
    set_params(&mut out, params);
    out
}

fn constrain(theta: &[f64], specs: &[ParamSpec]) -> Vec<f64> {
    theta
        .iter()
        .zip(specs)
        .map(|(&t, s)| if s.positive { t.exp() } else { t })
        .collect()
}

/// A minimal Adam optimiser.
#[derive(Debug, Clone)]
struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    fn new(dim: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Gradient-ascent step (we maximise the ELBO).
    fn step(&mut self, theta: &mut [f64], grad: &[f64]) {
        self.t += 1;
        for i in 0..theta.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let m_hat = self.m[i] / (1.0 - self.beta1.powi(self.t as i32));
            let v_hat = self.v[i] / (1.0 - self.beta2.powi(self.t as i32));
            theta[i] += self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// The observations used by the "unreliable weighing" benchmark (see
/// `ppl-models`); re-exported here for the doc example.
pub fn example_observations(values: &[f64]) -> Vec<Sample> {
    values.iter().map(|&v| Sample::Real(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    /// weight ~ N(2, 1); two noisy measurements with scale 0.75.
    /// Observing 9.0 twice gives posterior mean ≈ (2/1 + 2*9/0.5625)/(1/1 + 2/0.5625) ≈ 7.47.
    fn weight_model() -> (ppl_syntax::Program, ppl_syntax::Program) {
        let model = parse_program(
            r#"
            proc WeightModel() : real consume latent provide obs {
              let w <- sample recv latent (Normal(2.0, 1.0));
              let _ <- sample send obs (Normal(w, 0.75));
              let _ <- sample send obs (Normal(w, 0.75));
              return w
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc WeightGuide(mu : real, sigma : preal) provide latent {
              let w <- sample send latent (Normal(mu, sigma));
              return ()
            }
        "#,
        )
        .unwrap();
        (model, guide)
    }

    #[test]
    fn vi_learns_the_conjugate_posterior() {
        let (model, guide) = weight_model();
        let exec = JointExecutor::new(&model, &guide, example_observations(&[9.0, 9.0]));
        let spec = JointSpec::new("WeightModel", "WeightGuide");
        let params = [
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ];
        let config = ViConfig {
            iterations: 400,
            samples_per_iteration: 12,
            learning_rate: 0.08,
            fd_epsilon: 1e-4,
            ..ViConfig::default()
        };
        let mut rng = Pcg32::seed_from_u64(2024);
        let result = VariationalInference::new(config)
            .run(&exec, &spec, &params, &mut rng)
            .unwrap();
        // Conjugate posterior: precision 1 + 2/0.5625 = 4.5556, mean ≈ 7.46,
        // std ≈ 0.468.
        let mu = result.param("mu").unwrap();
        let sigma = result.param("sigma").unwrap();
        assert!((mu - 7.46).abs() < 0.6, "learned mean {mu}");
        assert!(sigma > 0.2 && sigma < 1.0, "learned std {sigma}");
        // The ELBO should have improved substantially over the run.
        let early: f64 = result.elbo_trace[..20].iter().sum::<f64>() / 20.0;
        assert!(result.final_elbo() > early + 1.0, "ELBO did not improve");
    }

    #[test]
    fn elbo_estimate_is_finite_and_bounded_by_evidence() {
        let (model, guide) = weight_model();
        let exec = JointExecutor::new(&model, &guide, example_observations(&[9.0, 9.0]));
        let spec = JointSpec::new("WeightModel", "WeightGuide");
        let vi = VariationalInference::new(ViConfig::default());
        let mut rng = Pcg32::seed_from_u64(3);
        let elbo = vi
            .estimate_elbo(&exec, &spec, &[7.46, 0.47], 4000, &mut rng)
            .unwrap();
        assert!(elbo.is_finite());
        // The true log evidence of two N(w,0.75) observations at 9.0 with a
        // N(2,1) prior; the ELBO at near-optimal parameters must be below it
        // but within a nat.
        let log_evidence = {
            // p(y1, y2) computed by 1-d quadrature over w.
            let mut acc: f64 = 0.0;
            let n = 4000;
            let (lo, hi) = (-5.0, 15.0);
            let h = (hi - lo) / n as f64;
            for i in 0..n {
                let w = lo + (i as f64 + 0.5) * h;
                let prior =
                    (-0.5 * (w - 2.0_f64).powi(2)).exp() / (2.0 * std::f64::consts::PI).sqrt();
                let lik = |y: f64| {
                    (-0.5 * ((y - w) / 0.75_f64).powi(2)).exp()
                        / (0.75 * (2.0 * std::f64::consts::PI).sqrt())
                };
                acc += prior * lik(9.0) * lik(9.0) * h;
            }
            acc.ln()
        };
        assert!(
            elbo <= log_evidence + 0.05,
            "elbo {elbo} evidence {log_evidence}"
        );
        assert!(
            elbo >= log_evidence - 1.0,
            "elbo {elbo} evidence {log_evidence}"
        );
    }

    #[test]
    fn parallel_vi_is_bit_identical() {
        let (model, guide) = weight_model();
        let exec = JointExecutor::new(&model, &guide, example_observations(&[9.0, 9.0]));
        let spec = JointSpec::new("WeightModel", "WeightGuide");
        let params = [
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ];
        let mut runs = Vec::new();
        for threads in [1usize, 3] {
            let config = ViConfig {
                iterations: 12,
                samples_per_iteration: 8,
                num_threads: threads,
                ..ViConfig::default()
            };
            let mut rng = Pcg32::seed_from_u64(55);
            runs.push(
                VariationalInference::new(config)
                    .run(&exec, &spec, &params, &mut rng)
                    .unwrap(),
            );
        }
        let (seq, par) = (&runs[0], &runs[1]);
        for (a, b) in seq.elbo_trace.iter().zip(&par.elbo_trace) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in seq.params.iter().zip(&par.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn vi_block_sizes_are_bit_identical() {
        let (model, guide) = weight_model();
        let exec = JointExecutor::new(&model, &guide, example_observations(&[9.0, 9.0]));
        let spec = JointSpec::new("WeightModel", "WeightGuide");
        let params = [
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ];
        let mut runs = Vec::new();
        for block in [1usize, 7, 64] {
            let config = ViConfig {
                iterations: 10,
                samples_per_iteration: 9,
                block,
                ..ViConfig::default()
            };
            let mut rng = Pcg32::seed_from_u64(88);
            runs.push(
                VariationalInference::new(config)
                    .run(&exec, &spec, &params, &mut rng)
                    .unwrap(),
            );
        }
        let reference = &runs[0];
        for run in &runs[1..] {
            for (a, b) in reference.elbo_trace.iter().zip(&run.elbo_trace) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in reference.params.iter().zip(&run.params) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn param_spec_and_result_helpers() {
        let p = ParamSpec::positive("sigma", 2.0);
        assert!(p.positive);
        let u = ParamSpec::unconstrained("mu", -1.0);
        assert!(!u.positive);
        let r = ViResult {
            params: vec![1.0, 2.0],
            names: vec!["a".into(), "b".into()],
            elbo_trace: vec![-10.0, -5.0, -1.0],
        };
        assert_eq!(r.param("b"), Some(2.0));
        assert_eq!(r.param("c"), None);
        assert!((r.final_elbo() + 1.0).abs() < 1e-12);
        let empty = ViResult {
            params: vec![],
            names: vec![],
            elbo_trace: vec![],
        };
        assert_eq!(empty.final_elbo(), f64::NEG_INFINITY);
    }
}
