//! Metropolis–Hastings with a *data-dependent* guide proposal (§2.2 of the
//! paper): the proposal receives the previous sample's `is_outlier` value
//! and proposes its negation most of the time.  Although the guide's
//! control flow diverges from the model's, both follow the same guidance
//! protocol `ℝ(0,1) ∧ 𝟚 ∧ 1`, so the proposal is sound.
//!
//! Custom proposals are the advanced path: the observations are still
//! validated up front by building a [`Query`], whose executor and spec
//! then drive [`GuidedMh`] directly.
//!
//! Run with `cargo run --example mh_outliers --release`.

use guide_ppl::inference::GuidedMh;
use guide_ppl::semantics::{Trace, Value};
use guide_ppl::Session;
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("outlier")?;
    println!("latent protocol: {}", session.latent_protocol());

    // Observation far from the inlier mean: almost certainly an outlier.
    // Building the query validates it against the obs protocol before the
    // chain starts.
    let query = session.query().observe(vec![Sample::Real(9.5)]).build()?;

    // The proposal argument: the previous is_outlier value (second latent).
    let extract_old = |trace: &Trace| -> Vec<Value> {
        let old = trace
            .provider_samples()
            .get(1)
            .and_then(|s| s.as_bool())
            .unwrap_or(false);
        vec![Value::Bool(old)]
    };

    let mut rng = Pcg32::seed_from_u64(123);
    let result =
        GuidedMh::new(8_000, 1_000, &extract_old).run(query.executor(), query.spec(), &mut rng)?;

    let p_outlier = result
        .posterior_expectation(|s| {
            s.samples
                .get(1)
                .and_then(|v| v.as_bool())
                .map(|b| if b { 1.0 } else { 0.0 })
        })
        .expect("chain is non-empty");
    let mean_prob = result
        .posterior_mean_of_sample(0)
        .expect("chain is non-empty");
    println!(
        "acceptance rate              : {:.3}",
        result.acceptance_rate
    );
    println!("posterior P(is_outlier)      : {p_outlier:.3}");
    println!("posterior mean prob_outlier  : {mean_prob:.3}");
    Ok(())
}
