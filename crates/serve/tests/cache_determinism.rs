//! The exact-cache acceptance test: a warm cache hit returns the
//! **byte-identical** JSON of the cold response while running **zero**
//! inference — proved with `ppl_inference::counters`, the process-wide
//! count of joint executions the engines schedule.
//!
//! This is deliberately the only test in this file: integration test
//! files run as separate processes, and keeping the process to a single
//! test means no concurrent inference can perturb the global counter
//! between the before/after reads.

use ppl_inference::counters;
use ppl_serve::http::ClientConn;
use ppl_serve::{App, Json, Registry, Server};

#[test]
fn warm_cache_hits_are_byte_identical_and_run_zero_particles() {
    let app = App::new(Registry::from_benchmarks(), 32);
    let server = Server::bind("127.0.0.1:0", 2, app.handler()).expect("bind");
    let mut conn = ClientConn::connect(server.local_addr()).unwrap();
    let request = r#"{"model":"ex-1","observations":[0.8],
                      "method":{"algorithm":"importance","particles":2000},"seed":9}"#;

    // Cold: runs inference (the counter moves), misses the cache.
    let before_cold = counters::joint_executions();
    let (status, headers, cold) = conn.send("POST", "/v1/query", Some(request)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
    assert!(
        headers.iter().any(|(k, v)| k == "x-cache" && v == "miss"),
        "{headers:?}"
    );
    let cold_executions = counters::joint_executions() - before_cold;
    assert_eq!(cold_executions, 2_000, "the cold run drew its particles");

    // Warm: byte-identical body, zero joint executions scheduled.
    let before_warm = counters::joint_executions();
    let (status, headers, warm) = conn.send("POST", "/v1/query", Some(request)).unwrap();
    assert_eq!(status, 200);
    assert!(
        headers.iter().any(|(k, v)| k == "x-cache" && v == "hit"),
        "{headers:?}"
    );
    assert_eq!(cold, warm, "cache hits are byte-identical");
    assert_eq!(
        counters::joint_executions(),
        before_warm,
        "a cache hit runs zero particles"
    );

    // Whitespace and key-order changes in the request still hit: the
    // fingerprint is canonical, not textual.
    let reordered = r#"{"seed":9,"method":{"particles":2000,"algorithm":"importance"},"observations":[0.8],"model":"ex-1"}"#;
    let (status, headers, reordered_body) =
        conn.send("POST", "/v1/query", Some(reordered)).unwrap();
    assert_eq!(status, 200);
    assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "hit"));
    assert_eq!(cold, reordered_body);
    assert_eq!(
        counters::joint_executions(),
        before_warm,
        "the canonical fingerprint matched without running anything"
    );

    // Sanity: the cached response is valid JSON with a finite posterior.
    let parsed = Json::parse(std::str::from_utf8(&warm).unwrap()).unwrap();
    let mean = parsed
        .get("summary")
        .unwrap()
        .get("mean")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(mean.is_finite());
    assert_eq!(app.cache.hits(), 2);
    server.shutdown();
}
