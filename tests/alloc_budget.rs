//! The allocation budget of the particle hot loop.
//!
//! The compiled-program / interned-symbol / scratch-pool refactor promises
//! that the *steady state* of the particle loop — re-running a joint
//! model–guide execution through a warmed [`JointScratch`] and recycling
//! the recorded trace — performs **zero heap allocations per particle**.
//! This test makes that property executable so it cannot silently regress:
//! a counting global allocator measures 1 000 post-warm-up particles of
//! `ex-1` and `gmm` (and, for the replay path, 1 000 MCMC-style re-scores)
//! and asserts the count stays at zero.
//!
//! The allocator is the same [`ppl_bench::alloc_track`] instrumentation
//! the `ppl-bench` binary uses for its `allocs_per_particle` column.
//! Measurements delta the **per-thread** counter, so neither parallel
//! sibling tests nor libtest's own main thread (which lazily allocates
//! channel-parking state at an arbitrary point mid-run) can leak
//! allocations into a measured window.
//!
//! The measured loops also enter a flight-recorder [`Span`] per
//! iteration, exactly as the serving path does around inference.  With
//! no active trace on the thread (the production default for every
//! worker until a request opts in) the span must be **inert**: no clock
//! read and, what this suite proves, no allocation — so leaving tracing
//! compiled into the hot path costs nothing when it is off.

use guide_ppl::runtime::{JointExecutor, JointScratch, JointSpec, LatentSource};
use guide_ppl::Session;
use ppl_bench::alloc_track::{thread_allocations, CountingAlloc};
use ppl_dist::rng::Pcg32;
use ppl_obs::{Phase, Span};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Builds the executor + spec for a registry benchmark.
fn harness(name: &str) -> (JointExecutor, JointSpec) {
    let session = Session::from_benchmark(name).expect("registered benchmark");
    let b = ppl_models::benchmark(name).expect("registered benchmark");
    let executor = session.executor(b.observations.clone());
    let spec = session.spec();
    (executor, spec)
}

/// Runs `count` fresh-sample particles through one scratch, recycling every
/// trace, and returns the number of allocations the batch performed on
/// this thread.
fn run_batch(
    executor: &JointExecutor,
    spec: &JointSpec,
    rng: &mut Pcg32,
    scratch: &mut JointScratch,
    count: usize,
) -> u64 {
    let before = thread_allocations();
    let mut acc = 0.0f64;
    for _ in 0..count {
        // Mirrors the serving path, which brackets inference in a span;
        // with no active trace the guard must not allocate.
        let span = Span::enter(Phase::InferDraw);
        assert!(!span.is_armed(), "no trace is active in this test");
        let joint = executor
            .run_with_scratch(spec, LatentSource::FromGuide, rng, scratch)
            .expect("joint execution");
        acc += joint.log_importance_weight();
        scratch.recycle(joint.latent);
    }
    assert!(!acc.is_nan(), "weights must stay well-defined");
    thread_allocations() - before
}

fn assert_zero_steady_state_allocations(name: &str) {
    let (executor, spec) = harness(name);
    let mut rng = Pcg32::seed_from_u64(0xA110C);
    let mut scratch = JointScratch::new();
    // Warm-up: grow the coroutine stacks and the trace buffer to the
    // program's working size (and fault in any lazily initialised runtime
    // state).  Randomised control flow means later particles can need
    // deeper buffers than the first, so warm up across many executions.
    run_batch(&executor, &spec, &mut rng, &mut scratch, 200);
    // Steady state: 1 000 particles, zero allocations.
    let allocs = run_batch(&executor, &spec, &mut rng, &mut scratch, 1_000);
    assert_eq!(
        allocs, 0,
        "{name}: steady-state particles allocated ({allocs} allocations / 1000 particles)"
    );
}

/// Runs `blocks` lockstep blocks of `block` lanes through one scratch,
/// recycling every trace and reusing the result buffer, and returns the
/// number of allocations the batch performed on this thread.
#[allow(clippy::too_many_arguments)] // explicit loop state keeps the measured window allocation-free
fn run_block_batch(
    executor: &JointExecutor,
    spec: &JointSpec,
    master: &Pcg32,
    stream: &mut u64,
    scratch: &mut JointScratch,
    results: &mut Vec<guide_ppl::runtime::JointResult>,
    block: usize,
    blocks: usize,
) -> u64 {
    let before = thread_allocations();
    let mut acc = 0.0f64;
    for _ in 0..blocks {
        let _span = Span::enter(Phase::InferDraw);
        results.clear();
        executor
            .run_block_with_scratch(spec, master, *stream, block, scratch, results)
            .expect("block execution");
        *stream += block as u64;
        for joint in results.drain(..) {
            acc += joint.log_importance_weight();
            scratch.recycle(joint.latent);
        }
    }
    assert!(!acc.is_nan(), "weights must stay well-defined");
    thread_allocations() - before
}

fn assert_zero_steady_state_block_allocations(name: &str, block: usize) {
    let (executor, spec) = harness(name);
    let master = Pcg32::seed_from_u64(0xB10C);
    let mut stream = 0u64;
    let mut scratch = JointScratch::new();
    let mut results = Vec::new();
    // Warm-up: grow the lane buffers, plan cache, and trace pools to the
    // program's working size across enough blocks to see the deepest
    // randomised control-flow paths.
    run_block_batch(
        &executor,
        &spec,
        &master,
        &mut stream,
        &mut scratch,
        &mut results,
        block,
        8,
    );
    // Steady state: ≥1 000 particles' worth of blocks, zero allocations.
    let blocks = 1_000usize.div_ceil(block);
    let allocs = run_block_batch(
        &executor,
        &spec,
        &master,
        &mut stream,
        &mut scratch,
        &mut results,
        block,
        blocks,
    );
    assert_eq!(
        allocs,
        0,
        "{name}: steady-state block-{block} execution allocated ({allocs} allocations / {} particles)",
        blocks * block
    );
}

#[test]
fn ex1_steady_state_is_allocation_free() {
    assert_zero_steady_state_allocations("ex-1");
}

#[test]
fn gmm_steady_state_is_allocation_free() {
    assert_zero_steady_state_allocations("gmm");
}

#[test]
fn ex1_block_steady_state_is_allocation_free() {
    assert_zero_steady_state_block_allocations("ex-1", 64);
}

#[test]
fn gmm_block_steady_state_is_allocation_free() {
    assert_zero_steady_state_block_allocations("gmm", 64);
}

#[test]
fn replay_rescoring_is_allocation_free() {
    // The MCMC inner loop: re-score a fixed latent trace by replaying it.
    let (executor, spec) = harness("ex-1");
    let mut rng = Pcg32::seed_from_u64(0xA110C + 1);
    let mut scratch = JointScratch::new();
    let reference = executor
        .run_with_scratch(&spec, LatentSource::FromGuide, &mut rng, &mut scratch)
        .expect("reference execution");
    let mut replay = |count: usize| -> u64 {
        let before = thread_allocations();
        for _ in 0..count {
            let joint = executor
                .run_with_scratch(
                    &spec,
                    LatentSource::Replay(&reference.latent),
                    &mut rng,
                    &mut scratch,
                )
                .expect("replay");
            assert_eq!(joint.log_model.to_bits(), reference.log_model.to_bits());
            scratch.recycle(joint.latent);
        }
        thread_allocations() - before
    };
    replay(50); // warm-up
    let allocs = replay(1_000);
    assert_eq!(
        allocs, 0,
        "replay re-scoring allocated ({allocs} allocations / 1000 replays)"
    );
}

#[test]
fn disarmed_tracing_is_allocation_free() {
    // The two observability entry points that sit on hot paths must be
    // free when dormant: a span on a thread with no active trace, and a
    // log call below the emission threshold (default `info`).  The first
    // span outside the window faults in any thread-local state.
    drop(Span::enter(Phase::InferDraw));
    let before = thread_allocations();
    for i in 0..1_000u64 {
        let span = Span::enter(Phase::InferDraw);
        assert!(!span.is_armed(), "no trace is active on this thread");
        ppl_obs::log::debug(
            "alloc.probe",
            "below-threshold line",
            &[("i", ppl_obs::log::Value::Uint(i))],
        );
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "dormant spans/logs allocated ({allocs} allocations / 1000 iterations)"
    );
}

#[test]
fn counting_allocator_is_live() {
    // Guard against the whole suite becoming vacuous: a heap allocation
    // must move this thread's counter.
    let before = thread_allocations();
    let probe: Vec<u64> = Vec::with_capacity(1024);
    drop(std::hint::black_box(probe));
    assert!(
        thread_allocations() > before,
        "the counting allocator is not installed"
    );
}
