//! Recursion: the probabilistic context-free grammar of Fig. 6.  Guide-type
//! inference derives a *parameterised recursive* protocol
//! (`R[X] = ℝ(0,1) ∧ ((ℝ ∧ X) & R[R[X]])`), and the model and guide can be
//! run jointly even though the number of latent variables is unbounded.
//!
//! Run with `cargo run --example pcfg_recursion`.

use guide_ppl::{Method, Posterior, Session};
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::from_benchmark("ex-2")?;

    // Show the inferred type-operator definitions — the guide types of §4.
    println!("inferred type operators (model):");
    for def in session.model_types().defs.iter() {
        println!("  typedef {}[{}] = {}", def.name, def.param, def.body);
    }
    println!("\nlatent protocol: {}", session.latent_protocol());

    // The PCFG has no observations — which the query validator enforces:
    // supplying one is rejected before anything runs.
    let err = session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .build()
        .unwrap_err();
    println!("\nobservations rejected up front: {err}");

    // Importance sampling recovers the prior over generated expression
    // values; report the distribution of the number of latent samples
    // (recursion depth proxy).
    let result = session
        .query()
        .seed(6)
        .run(&Method::Importance { particles: 20_000 })?;
    let mean_sites = result
        .expectation(&|d| Some(d.samples.len() as f64))
        .expect("weights are positive");
    println!("\naverage number of latent samples per tree: {mean_sites:.2}");
    let deep = result
        .probability(&|d| d.samples.len() > 8)
        .expect("weights are positive");
    println!("probability of more than 8 latent samples: {deep:.3}");
    Ok(())
}
