//! Resumable coroutines for model and guide programs.
//!
//! The paper implements models and guides as coroutines (greenlets in the
//! compiled Pyro code) that suspend whenever they communicate on a channel.
//! Here a [`Coroutine`] is a defunctionalised interpreter: an explicit stack
//! of continuation frames plus the command currently being executed, so the
//! driver can pause it at every channel operation and resume it with the
//! value produced by the other coroutine.
//!
//! The interpreter executes a shared [`CompiledProgram`]: continuation
//! frames hold [`CmdId`] indices into the program's node table plus an O(1)
//! scope-chain [`Env`], so stepping, suspending, and resuming never clone an
//! AST subtree or copy an environment map.  A coroutine owns only its
//! `Arc` handle to the program and is `Send`, which lets the parallel
//! particle driver run many of them concurrently over one compiled program.

use crate::program::{CalleeRef, CmdId, CmdNode, CompiledProgram, ProcId};
use ppl_dist::{Distribution, Sample};
use ppl_semantics::eval::{eval_expr, EvalError};
use ppl_semantics::value::{Env, Value};
use ppl_syntax::ast::{ChannelName, Dir, Ident};
use std::fmt;
use std::sync::Arc;

/// A channel operation at which a coroutine is suspended, awaiting the
/// driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Suspend {
    /// The coroutine executes `sample_sd{chan}(d)`: it is about to *send* a
    /// sample drawn from `dist`.  The driver supplies the concrete value
    /// (either freshly drawn or replayed) via [`Resume::Sample`].
    SampleSend {
        /// The channel being written.
        chan: ChannelName,
        /// The distribution at this site.
        dist: Distribution,
    },
    /// The coroutine executes `sample_rv{chan}(d)`: it awaits a sample from
    /// the peer and will score it against `dist`.
    SampleRecv {
        /// The channel being read.
        chan: ChannelName,
        /// The distribution used for scoring.
        dist: Distribution,
    },
    /// The coroutine executes `cond_sd{chan}(e; …)`: it evaluated the branch
    /// predicate and sends the selection to the peer.  Resume with
    /// [`Resume::Ack`].
    BranchSend {
        /// The channel carrying the selection.
        chan: ChannelName,
        /// The selection the coroutine computed.
        selection: bool,
    },
    /// The coroutine executes `cond_rv{chan}(…)`: it awaits a branch
    /// selection from the peer.  Resume with [`Resume::Branch`].
    BranchRecv {
        /// The channel carrying the selection.
        chan: ChannelName,
    },
    /// The coroutine is about to call a procedure that uses `chan`;
    /// corresponds to the `fold` marker of the operational semantics.
    /// Resume with [`Resume::Ack`].
    CallMarker {
        /// The channel whose protocol folds here.
        chan: ChannelName,
    },
}

impl Suspend {
    /// The channel this suspension concerns.
    pub fn channel(&self) -> &ChannelName {
        match self {
            Suspend::SampleSend { chan, .. }
            | Suspend::SampleRecv { chan, .. }
            | Suspend::BranchSend { chan, .. }
            | Suspend::BranchRecv { chan }
            | Suspend::CallMarker { chan } => chan,
        }
    }
}

/// The value with which a suspended coroutine is resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resume {
    /// The concrete sample for a [`Suspend::SampleSend`] or
    /// [`Suspend::SampleRecv`].
    Sample(Sample),
    /// The selection for a [`Suspend::BranchRecv`].
    Branch(bool),
    /// Acknowledgement for [`Suspend::BranchSend`] and
    /// [`Suspend::CallMarker`].
    Ack,
}

/// The observable state of a coroutine after a step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Suspended at a channel operation.
    Suspended(Suspend),
    /// Finished with a value; `log_weight` is the coroutine's accumulated
    /// log-density.
    Done {
        /// The coroutine's return value.
        value: Value,
        /// The accumulated log-weight.
        log_weight: f64,
    },
}

/// Errors raised by a coroutine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoroutineError {
    /// An embedded expression failed to evaluate.
    Eval(EvalError),
    /// The coroutine was resumed with the wrong kind of [`Resume`] value, or
    /// resumed/stepped while in an unexpected state.
    Protocol(String),
    /// Reference to an unknown procedure.
    UnknownProc(String),
}

impl fmt::Display for CoroutineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoroutineError::Eval(e) => write!(f, "{e}"),
            CoroutineError::Protocol(m) => write!(f, "coroutine protocol error: {m}"),
            CoroutineError::UnknownProc(m) => write!(f, "unknown procedure: {m}"),
        }
    }
}

impl std::error::Error for CoroutineError {}

impl From<EvalError> for CoroutineError {
    fn from(e: EvalError) -> Self {
        CoroutineError::Eval(e)
    }
}

/// A continuation frame: when the current command finishes with a value,
/// bind it to the `Bind` node's variable and continue with its `rest`.
///
/// The frame is two machine words plus an `Arc` bump — it holds an index
/// into the shared program and an O(1)-cloned environment, never a command
/// subtree or a copied binding map.
#[derive(Debug, Clone)]
struct BindFrame {
    /// A [`CmdNode::Bind`] node in the shared program.
    node: CmdId,
    /// The environment in which `rest` runs.
    env: Env,
}

/// What the coroutine is waiting for while suspended.
#[derive(Debug, Clone)]
enum Pending {
    Sample {
        dist: Distribution,
    },
    /// Suspended at a [`CmdNode::Branch`] node, waiting for the peer's
    /// selection.
    BranchRecv {
        node: CmdId,
        env: Env,
    },
    /// Suspended at a [`CmdNode::Branch`] node after announcing `selection`,
    /// waiting for the acknowledgement.
    BranchSend {
        node: CmdId,
        selection: bool,
        env: Env,
    },
    /// Suspended at a [`CmdNode::Call`] node, emitting its fold markers one
    /// by one; `next_mark` indexes into the node's pre-computed mark list.
    CallAck {
        node: CmdId,
        next_mark: usize,
        callee: ProcId,
        args: Vec<Value>,
    },
}

/// Internal control state.
#[derive(Debug, Clone)]
enum Control {
    Run { cmd: CmdId, env: Env },
    Return { value: Value },
    AwaitResume(Pending),
    Finished,
}

/// A resumable model or guide coroutine over a shared compiled program.
#[derive(Debug, Clone)]
pub struct Coroutine {
    program: Arc<CompiledProgram>,
    frames: Vec<BindFrame>,
    control: Control,
    log_weight: f64,
    steps: u64,
}

impl Coroutine {
    /// Creates (but does not start) a coroutine running `proc_name` with the
    /// given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::UnknownProc`] if the procedure does not
    /// exist and [`CoroutineError::Protocol`] on an argument-count mismatch.
    pub fn spawn(
        program: &Arc<CompiledProgram>,
        proc_name: &Ident,
        args: Vec<Value>,
    ) -> Result<Self, CoroutineError> {
        let id = program
            .proc_id(proc_name)
            .ok_or_else(|| CoroutineError::UnknownProc(proc_name.to_string()))?;
        let (body, env) = bind_args(program, id, args)?;
        Ok(Coroutine {
            program: Arc::clone(program),
            frames: Vec::new(),
            control: Control::Run { cmd: body, env },
            log_weight: 0.0,
            steps: 0,
        })
    }

    /// The shared program this coroutine executes.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// The coroutine's accumulated log-weight so far.
    pub fn log_weight(&self) -> f64 {
        self.log_weight
    }

    /// The number of interpreter steps taken so far (used by the overhead
    /// ablation benchmark).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Runs the coroutine until it suspends or finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if called while the coroutine is
    /// awaiting a [`Resume`] value or already finished.
    pub fn start(&mut self) -> Result<Step, CoroutineError> {
        match self.control {
            Control::Run { .. } => self.drive(),
            _ => Err(CoroutineError::Protocol(
                "start called on a coroutine that is not at its entry point".into(),
            )),
        }
    }

    /// Resumes a suspended coroutine with the value it was waiting for and
    /// runs it until the next suspension (or completion).
    ///
    /// # Errors
    ///
    /// Returns [`CoroutineError::Protocol`] if the coroutine is not
    /// suspended or `resume` has the wrong shape for the pending operation.
    pub fn resume(&mut self, resume: Resume) -> Result<Step, CoroutineError> {
        let pending = match std::mem::replace(&mut self.control, Control::Finished) {
            Control::AwaitResume(p) => p,
            other => {
                self.control = other;
                return Err(CoroutineError::Protocol(
                    "resume called on a coroutine that is not suspended".into(),
                ));
            }
        };
        match (pending, resume) {
            (Pending::Sample { dist }, Resume::Sample(sample)) => {
                // Score the sample; values outside the support zero out the
                // weight (the coroutine keeps running so the joint executor
                // can finish and report the zero-weight particle).
                self.log_weight += dist.log_density(&sample);
                self.control = Control::Return {
                    value: Value::from_sample(sample),
                };
            }
            (Pending::BranchRecv { node, env }, Resume::Branch(sel)) => {
                self.control = Control::Run {
                    cmd: self.branch_arm(node, sel),
                    env,
                };
            }
            (
                Pending::BranchSend {
                    node,
                    selection,
                    env,
                },
                Resume::Ack,
            ) => {
                self.control = Control::Run {
                    cmd: self.branch_arm(node, selection),
                    env,
                };
            }
            (
                Pending::CallAck {
                    node,
                    next_mark,
                    callee,
                    args,
                },
                Resume::Ack,
            ) => {
                let CmdNode::Call { marks, .. } = self.program.node(node) else {
                    unreachable!("CallAck always references a Call node");
                };
                if let Some(chan) = marks.get(next_mark) {
                    let suspend = Suspend::CallMarker { chan: chan.clone() };
                    self.control = Control::AwaitResume(Pending::CallAck {
                        node,
                        next_mark: next_mark + 1,
                        callee,
                        args,
                    });
                    return Ok(Step::Suspended(suspend));
                }
                let (body, env) = bind_args(&self.program, callee, args)?;
                self.control = Control::Run { cmd: body, env };
            }
            (pending, resume) => {
                return Err(CoroutineError::Protocol(format!(
                    "resume value {resume:?} does not match the pending operation {pending:?}"
                )));
            }
        }
        self.drive()
    }

    fn branch_arm(&self, node: CmdId, selection: bool) -> CmdId {
        let CmdNode::Branch {
            then_cmd, else_cmd, ..
        } = self.program.node(node)
        else {
            unreachable!("branch pendings always reference a Branch node");
        };
        if selection {
            *then_cmd
        } else {
            *else_cmd
        }
    }

    /// Runs until suspension or completion.
    fn drive(&mut self) -> Result<Step, CoroutineError> {
        loop {
            self.steps += 1;
            let control = std::mem::replace(&mut self.control, Control::Finished);
            match control {
                Control::Finished => {
                    return Err(CoroutineError::Protocol(
                        "coroutine already finished".into(),
                    ))
                }
                Control::AwaitResume(p) => {
                    // Re-install and report the suspension (drive should not
                    // be called in this state, but be forgiving).
                    self.control = Control::AwaitResume(p);
                    return Err(CoroutineError::Protocol(
                        "coroutine is awaiting a resume value".into(),
                    ));
                }
                Control::Return { value } => match self.frames.pop() {
                    None => {
                        self.control = Control::Finished;
                        return Ok(Step::Done {
                            value,
                            log_weight: self.log_weight,
                        });
                    }
                    Some(BindFrame { node, env }) => {
                        let CmdNode::Bind { var, rest, .. } = self.program.node(node) else {
                            unreachable!("bind frames always reference a Bind node");
                        };
                        let env = env.extended(var.clone(), value);
                        self.control = Control::Run { cmd: *rest, env };
                    }
                },
                Control::Run { cmd, env } => match self.program.node(cmd) {
                    CmdNode::Ret(e) => {
                        let value = eval_expr(&env, e)?;
                        self.control = Control::Return { value };
                    }
                    CmdNode::Bind { first, .. } => {
                        self.frames.push(BindFrame {
                            node: cmd,
                            env: env.clone(),
                        });
                        self.control = Control::Run { cmd: *first, env };
                    }
                    CmdNode::Call {
                        callee,
                        args,
                        marks,
                    } => {
                        // Arguments evaluate before the callee resolves,
                        // matching the tree-walking interpreter's error
                        // order for programs that are both ill-scoped and
                        // call a missing procedure.
                        let arg_values =
                            args.iter()
                                .map(|a| eval_expr(&env, a))
                                .collect::<Result<Vec<_>, _>>()?;
                        let callee = match callee {
                            CalleeRef::Resolved(id) => *id,
                            CalleeRef::Unknown(name) => {
                                return Err(CoroutineError::UnknownProc(name.to_string()))
                            }
                        };
                        if let Some(chan) = marks.first() {
                            let suspend = Suspend::CallMarker { chan: chan.clone() };
                            self.control = Control::AwaitResume(Pending::CallAck {
                                node: cmd,
                                next_mark: 1,
                                callee,
                                args: arg_values,
                            });
                            return Ok(Step::Suspended(suspend));
                        }
                        let (body, callee_env) = bind_args(&self.program, callee, arg_values)?;
                        self.control = Control::Run {
                            cmd: body,
                            env: callee_env,
                        };
                    }
                    CmdNode::Sample {
                        dir,
                        chan,
                        dist,
                        declared,
                    } => {
                        check_declared(*declared, chan)?;
                        let d = match eval_expr(&env, dist)? {
                            Value::Dist(d) => d,
                            other => {
                                return Err(CoroutineError::Eval(EvalError::Dynamic(format!(
                                    "sample requires a distribution, found {other}"
                                ))))
                            }
                        };
                        let suspend = match dir {
                            Dir::Send => Suspend::SampleSend {
                                chan: chan.clone(),
                                dist: d.clone(),
                            },
                            Dir::Recv => Suspend::SampleRecv {
                                chan: chan.clone(),
                                dist: d.clone(),
                            },
                        };
                        self.control = Control::AwaitResume(Pending::Sample { dist: d });
                        return Ok(Step::Suspended(suspend));
                    }
                    CmdNode::Branch {
                        dir,
                        chan,
                        pred,
                        declared,
                        ..
                    } => {
                        check_declared(*declared, chan)?;
                        match dir {
                            Dir::Send => {
                                let selection = match pred {
                                    Some(p) => eval_expr(&env, p)?.as_bool().ok_or_else(|| {
                                        CoroutineError::Eval(EvalError::Dynamic(
                                            "non-Boolean branch predicate".into(),
                                        ))
                                    })?,
                                    None => {
                                        return Err(CoroutineError::Eval(EvalError::Dynamic(
                                            "send-branch without a predicate".into(),
                                        )))
                                    }
                                };
                                let suspend = Suspend::BranchSend {
                                    chan: chan.clone(),
                                    selection,
                                };
                                self.control = Control::AwaitResume(Pending::BranchSend {
                                    node: cmd,
                                    selection,
                                    env,
                                });
                                return Ok(Step::Suspended(suspend));
                            }
                            Dir::Recv => {
                                let suspend = Suspend::BranchRecv { chan: chan.clone() };
                                self.control =
                                    Control::AwaitResume(Pending::BranchRecv { node: cmd, env });
                                return Ok(Step::Suspended(suspend));
                            }
                        }
                    }
                },
            }
        }
    }
}

/// Checks arity and builds the callee's environment, returning its entry
/// node.
fn bind_args(
    program: &Arc<CompiledProgram>,
    id: ProcId,
    args: Vec<Value>,
) -> Result<(CmdId, Env), CoroutineError> {
    let proc = program.proc(id);
    if proc.params.len() != args.len() {
        return Err(CoroutineError::Protocol(format!(
            "procedure '{}' expects {} argument(s), got {}",
            proc.name,
            proc.params.len(),
            args.len()
        )));
    }
    let env = Env::from_bindings(proc.params.iter().cloned().zip(args));
    Ok((proc.body, env))
}

fn check_declared(declared: bool, chan: &ChannelName) -> Result<(), CoroutineError> {
    if declared {
        Ok(())
    } else {
        Err(CoroutineError::Protocol(format!(
            "channel '{chan}' is not declared by the current procedure"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    fn compile(src: &str) -> Arc<CompiledProgram> {
        CompiledProgram::compile_shared(&parse_program(src).unwrap())
    }

    fn guide_program() -> Arc<CompiledProgram> {
        compile(
            r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
    }

    #[test]
    fn guide_coroutine_walkthrough() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // First suspension: sending the Gamma(1,1) sample.
        let step = co.start().unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { chan, dist }) => {
                assert_eq!(chan.as_str(), "latent");
                assert_eq!(dist, &Distribution::gamma(1.0, 1.0).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Resume with a concrete value; next it waits for the selection.
        let step = co.resume(Resume::Sample(Sample::Real(3.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        // Take the else branch: one more sample send, then done.
        let step = co.resume(Resume::Branch(false)).unwrap();
        match &step {
            Step::Suspended(Suspend::SampleSend { dist, .. }) => {
                assert_eq!(dist, &Distribution::uniform());
            }
            other => panic!("unexpected {other:?}"),
        }
        let step = co.resume(Resume::Sample(Sample::Real(0.25))).unwrap();
        match step {
            Step::Done { value, log_weight } => {
                assert_eq!(value, Value::Unit);
                let expected = Distribution::gamma(1.0, 1.0).unwrap().log_density_f64(3.0)
                    + Distribution::uniform().log_density_f64(0.25);
                assert!((log_weight - expected).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(co.steps_taken() > 0);
        assert!(Arc::ptr_eq(co.program(), &prog));
    }

    #[test]
    fn then_branch_skips_second_sample() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        co.resume(Resume::Sample(Sample::Real(1.0))).unwrap();
        let step = co.resume(Resume::Branch(true)).unwrap();
        assert!(matches!(step, Step::Done { .. }));
    }

    #[test]
    fn out_of_support_sample_zeroes_weight_but_continues() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        co.start().unwrap();
        let step = co.resume(Resume::Sample(Sample::Real(-1.0))).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::BranchRecv { .. })));
        assert_eq!(co.log_weight(), f64::NEG_INFINITY);
    }

    #[test]
    fn call_markers_are_emitted_per_channel() {
        let prog = compile(
            r#"
            proc Outer() consume latent provide obs {
              let _ <- call Inner();
              return ()
            }
            proc Inner() consume latent provide obs {
              let x <- sample recv latent (Unif);
              let _ <- sample send obs (Normal(x, 1.0));
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"Outer".into(), vec![]).unwrap();
        let step = co.start().unwrap();
        let first_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => chan.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let step = co.resume(Resume::Ack).unwrap();
        let second_chan = match &step {
            Step::Suspended(Suspend::CallMarker { chan }) => chan.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let mut chans = vec![
            first_chan.as_str().to_string(),
            second_chan.as_str().to_string(),
        ];
        chans.sort();
        assert_eq!(chans, vec!["latent".to_string(), "obs".to_string()]);
        // After both markers the callee body runs.
        let step = co.resume(Resume::Ack).unwrap();
        assert!(matches!(step, Step::Suspended(Suspend::SampleRecv { .. })));
    }

    #[test]
    fn protocol_errors() {
        let prog = guide_program();
        let mut co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        // Resuming before starting is an error.
        assert!(co.resume(Resume::Ack).is_err());
        co.start().unwrap();
        // Starting twice is an error.
        assert!(co.start().is_err());
        // Wrong resume kind.
        assert!(co.resume(Resume::Branch(true)).is_err());
        // Unknown procedure / wrong arity at spawn time.
        assert!(Coroutine::spawn(&prog, &"Nope".into(), vec![]).is_err());
        assert!(Coroutine::spawn(&prog, &"Guide1".into(), vec![Value::Real(1.0)]).is_err());
    }

    #[test]
    fn undeclared_channel_is_rejected_at_runtime() {
        let prog = compile(
            r#"
            proc P() consume latent {
              let _ <- sample recv other (Unif);
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"P".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::Protocol(_))));
    }

    #[test]
    fn unknown_callee_is_rejected_when_executed() {
        let prog = compile(
            r#"
            proc P() consume latent {
              let _ <- call Missing();
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"P".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::UnknownProc(_))));
        // Argument evaluation precedes callee resolution: a call that is
        // both ill-scoped and unresolvable reports the evaluation error.
        let prog = compile(
            r#"
            proc Q() consume latent {
              let _ <- call Missing(undefined_var);
              return ()
            }
        "#,
        );
        let mut co = Coroutine::spawn(&prog, &"Q".into(), vec![]).unwrap();
        assert!(matches!(co.start(), Err(CoroutineError::Eval(_))));
    }

    #[test]
    fn coroutines_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let prog = guide_program();
        let co = Coroutine::spawn(&prog, &"Guide1".into(), vec![]).unwrap();
        assert_send(&co);
    }

    #[test]
    fn suspend_channel_accessor() {
        let s = Suspend::BranchRecv {
            chan: "latent".into(),
        };
        assert_eq!(s.channel().as_str(), "latent");
        let s = Suspend::SampleSend {
            chan: "obs".into(),
            dist: Distribution::uniform(),
        };
        assert_eq!(s.channel().as_str(), "obs");
    }
}
