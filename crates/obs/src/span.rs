//! The span vocabulary and the RAII timer.
//!
//! A [`Span`] measures one [`Phase`] of a request and feeds the ambient
//! trace of the current thread (installed by [`crate::Recorder::begin`]).
//! The phase set is a *closed* enum rather than free-form strings so that
//! per-(route, phase) histograms can live in a flat fixed-size array of
//! atomics with no locking and no allocation on the record path.

use std::time::Instant;

/// One stage of the request path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading the request head + body off the socket.
    HttpRead,
    /// Parsing the request body into a JSON document.
    JsonDecode,
    /// Decoding + validating request fields and building the query plan.
    Validate,
    /// Response-cache fingerprint lookup.
    CacheLookup,
    /// Type-checking and compiling a submitted model (`POST /v1/models`).
    Compile,
    /// Fitting a variational guide (VI queries and `POST /v1/fit`).
    InferFit,
    /// Drawing from the posterior (IS particle sweeps, MH chains,
    /// amortized-artifact replays).
    InferDraw,
    /// Serialising the response body to JSON.
    JsonEncode,
    /// Writing the response back to the socket.
    HttpWrite,
}

/// Number of distinct [`Phase`] values.
pub const NUM_PHASES: usize = 9;

/// Every phase, in pipeline order (index = [`Phase::index`]).
pub const PHASES: [Phase; NUM_PHASES] = [
    Phase::HttpRead,
    Phase::JsonDecode,
    Phase::Validate,
    Phase::CacheLookup,
    Phase::Compile,
    Phase::InferFit,
    Phase::InferDraw,
    Phase::JsonEncode,
    Phase::HttpWrite,
];

impl Phase {
    /// Stable wire name of the phase (used in logs, `/metrics`, and
    /// `/v1/trace` payloads).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::HttpRead => "http.read",
            Phase::JsonDecode => "json.decode",
            Phase::Validate => "validate",
            Phase::CacheLookup => "cache.lookup",
            Phase::Compile => "compile",
            Phase::InferFit => "infer.fit",
            Phase::InferDraw => "infer.draw",
            Phase::JsonEncode => "json.encode",
            Phase::HttpWrite => "http.write",
        }
    }

    /// Dense index of the phase in [`PHASES`].
    pub fn index(self) -> usize {
        match self {
            Phase::HttpRead => 0,
            Phase::JsonDecode => 1,
            Phase::Validate => 2,
            Phase::CacheLookup => 3,
            Phase::Compile => 4,
            Phase::InferFit => 5,
            Phase::InferDraw => 6,
            Phase::JsonEncode => 7,
            Phase::HttpWrite => 8,
        }
    }

    /// Inverse of [`Phase::as_str`].
    pub fn parse(name: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.as_str() == name)
    }
}

/// RAII timer for one [`Phase`] of the ambient trace.
///
/// `Span::enter` checks a thread-local flag first: when no trace is
/// active on the current thread it returns an inert span without reading
/// the clock or allocating, so instrumentation left in hot paths costs a
/// single thread-local load when tracing is off.  On drop, an armed span
/// adds its elapsed nanoseconds to the ambient trace's phase slot.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    phase: Phase,
    started: Option<Instant>,
}

impl Span {
    /// Start timing `phase` if a trace is active on this thread;
    /// otherwise return an inert span.
    #[inline]
    pub fn enter(phase: Phase) -> Span {
        if crate::trace::tracing_active() {
            Span {
                phase,
                started: Some(Instant::now()),
            }
        } else {
            Span {
                phase,
                started: None,
            }
        }
    }

    /// Whether this span is actually timing (a trace was active when it
    /// was entered).
    pub fn is_armed(&self) -> bool {
        self.started.is_some()
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            crate::trace::record_phase_nanos(self.phase, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for (i, phase) in PHASES.iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert_eq!(Phase::parse(phase.as_str()), Some(*phase));
        }
        assert_eq!(Phase::parse("nope"), None);
    }

    #[test]
    fn span_is_inert_without_a_trace() {
        let span = Span::enter(Phase::InferDraw);
        assert!(!span.is_armed());
    }
}
