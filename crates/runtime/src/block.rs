//! Vectorised block execution: many particles in lockstep over the shared
//! compiled programs.
//!
//! The scalar path ([`JointExecutor::run_with_scratch`]) interprets one
//! particle at a time: every particle re-walks the command graph, suspends
//! and resumes two coroutines at every channel operation, and pays the
//! interpreter dispatch cost per particle.  This module amortises that cost
//! over a whole *block* of particles:
//!
//! 1. **Plan compilation.**  The first block run symbolically co-executes
//!    the model and guide through the exact arbitration logic of
//!    `drive_joint`, but over *symbolic* values (compile-time constants or
//!    lane *slots*).  The result is a [`BlockPlan`]: a tree of straight-line
//!    [`Op`]s (draw, score, per-lane eval, fork) that replays the joint
//!    execution without any coroutine machinery.  Branch predicates that
//!    depend on lane values become [`Op::Fork`] nodes; everything both arms
//!    share upstream is emitted once.
//! 2. **Structure-of-arrays lanes.**  Each sample site gets one slot — a
//!    `Vec<f64>` column holding that site's value for every lane.  Constant
//!    distributions draw and score the whole column through the batched
//!    kernels in `ppl_dist` ([`Distribution::sample_batch`],
//!    [`Distribution::log_density_batch`]), which are straight-line loops
//!    over `&[f64]` that LLVM autovectorises.
//! 3. **Divergence.**  At a fork the active lane set splits, each arm runs
//!    with its own sub-set (falling back to per-lane evaluation since the
//!    column is no longer dense), and execution re-converges after the fork.
//! 4. **Fallback.**  Programs the planner cannot vectorise (unbounded
//!    recursion, closures crossing sites, opaque per-lane distributions)
//!    compile to a cached failure, and the block runs each lane through the
//!    scalar coroutine path with the *same* per-lane RNG substream —
//!    results are bit-identical either way, which the determinism goldens
//!    enforce.
//!
//! RNG discipline: lane `i` of a block starting at global stream `s`
//! consumes exactly `master.split(s + i)`, the same substream the scalar
//! engine hands particle `s + i`, so block size and thread count can never
//! change a result.

use crate::joint::{
    JointExecutor, JointResult, JointScratch, JointSpec, LatentSource, RuntimeError,
};
use crate::program::{CalleeRef, CmdId, CmdNode, CompiledProgram, DistNode, ProcId};
use ppl_dist::rng::Pcg32;
use ppl_dist::{DistKind, Distribution, Sample};
use ppl_semantics::eval::{eval_dist_in, eval_expr_in};
use ppl_semantics::trace::{Message, Trace};
use ppl_semantics::value::{Bindings, Value, ValueStack};
use ppl_syntax::ast::{ChannelName, Dir, DistExpr, Expr, Ident};
use std::sync::Arc;

/// Symbolic execution step budget per plan compilation: bounds the total
/// number of command steps across every path of the fork tree.
const FUEL: u32 = 50_000;
/// Maximum fork nesting depth before the planner gives up.
const MAX_DEPTH: usize = 16;
/// Maximum number of fork-tree leaves (paths) before the planner gives up.
const MAX_LEAVES: u32 = 64;
/// Maximum number of lane slots (sample sites + per-lane evals) per plan.
const MAX_SLOTS: usize = 512;

/// The planner cannot vectorise this program shape; the block must take the
/// scalar path (cached — every subsequent block skips straight to scalar).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Bail(#[allow(dead_code)] &'static str);

/// The plan compiled, but this block hit something only the scalar
/// interpreter can reproduce exactly (a per-lane eval error, an
/// unencodable value); rerun every lane through the scalar path.
#[derive(Debug, Clone, Copy)]
struct RunBail;

/// Outcome of symbolic evaluation: either a scalar-path-only shape
/// ([`Bail`]) or a path that deterministically errors at runtime (`Fails`,
/// compiled to [`Op::Fail`] so the scalar rerun reports the exact error).
enum Halt {
    /// This execution path always errors; emit [`Op::Fail`].
    Fails,
    /// The whole plan is unvectorisable.
    Bail(Bail),
}

impl From<Bail> for Halt {
    fn from(b: Bail) -> Halt {
        Halt::Bail(b)
    }
}

/// Carrier class of a slot: how the `f64` column encodes values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Carrier {
    /// `Sample::Real` stored directly.
    Real,
    /// `Sample::Bool` stored as `1.0` / `0.0`.
    Bool,
    /// `Sample::Nat` stored via `f64::from_bits`.
    Nat,
    /// Per-lane eval results: a side tag column selects the decoding.
    Dyn,
}

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_NAT: u8 = 3;

fn class_of_kind(kind: DistKind) -> Carrier {
    match kind {
        DistKind::Real | DistKind::PosReal | DistKind::UnitInterval => Carrier::Real,
        DistKind::Bool => Carrier::Bool,
        DistKind::Nat | DistKind::FinNat(_) => Carrier::Nat,
    }
}

fn class_of_ctor(ctor: &DistExpr) -> Carrier {
    match ctor {
        DistExpr::Bernoulli(_) => Carrier::Bool,
        DistExpr::Uniform | DistExpr::Beta(..) | DistExpr::Gamma(..) | DistExpr::Normal(..) => {
            Carrier::Real
        }
        DistExpr::Categorical(_) | DistExpr::Geometric(_) | DistExpr::Poisson(_) => Carrier::Nat,
    }
}

fn encode_sample(s: Sample) -> f64 {
    match s {
        Sample::Real(x) => x,
        Sample::Bool(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
        Sample::Nat(n) => f64::from_bits(n),
    }
}

fn decode_sample(carrier: Carrier, x: f64) -> Option<Sample> {
    match carrier {
        Carrier::Real => Some(Sample::Real(x)),
        Carrier::Bool => Some(Sample::Bool(x == 1.0)),
        Carrier::Nat => Some(Sample::Nat(x.to_bits())),
        Carrier::Dyn => None,
    }
}

fn encode_value(v: &Value) -> Option<(u8, f64)> {
    match v {
        Value::Unit => Some((TAG_UNIT, 0.0)),
        Value::Bool(b) => Some((TAG_BOOL, if *b { 1.0 } else { 0.0 })),
        Value::Real(r) => Some((TAG_REAL, *r)),
        Value::Nat(n) => Some((TAG_NAT, f64::from_bits(*n))),
        Value::Dist(_) | Value::Closure { .. } => None,
    }
}

fn decode_slot(carrier: Carrier, x: f64, tag: u8) -> Result<Value, RunBail> {
    Ok(match carrier {
        Carrier::Real => Value::Real(x),
        Carrier::Bool => Value::Bool(x == 1.0),
        Carrier::Nat => Value::Nat(x.to_bits()),
        Carrier::Dyn => match tag {
            TAG_UNIT => Value::Unit,
            TAG_BOOL => Value::Bool(x == 1.0),
            TAG_REAL => Value::Real(x),
            TAG_NAT => Value::Nat(x.to_bits()),
            _ => return Err(RunBail),
        },
    })
}

// ---------------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------------

/// A plan-time value: the same for every lane, or a per-lane slot.
#[derive(Debug, Clone)]
enum SymValue {
    /// The same concrete value on every lane.
    Const(Value),
    /// Slot index into the structure-of-arrays columns.
    Slot(usize),
}

/// A plan-time distribution at a sample site.
#[derive(Debug, Clone)]
enum LaneDist {
    /// Parameters were constant: one shared distribution, eligible for the
    /// batched draw/score kernels.
    Const(Distribution),
    /// Parameters depend on lane values: re-evaluated per lane from the
    /// captured bindings.
    Ctor {
        expr: DistExpr,
        binds: Vec<(Ident, SymValue)>,
    },
}

fn class_of_dist(d: &LaneDist) -> Carrier {
    match d {
        LaneDist::Const(d) => class_of_kind(d.kind()),
        LaneDist::Ctor { expr, .. } => class_of_ctor(expr),
    }
}

/// The value being scored at a sample site.
#[derive(Debug, Clone)]
enum ScoreVal {
    /// A fixed observation, identical on every lane.
    Sample(Sample),
    /// A lane-varying drawn value.
    Slot(usize),
}

/// One straight-line instruction of a block plan, applied to the active
/// lane set.
#[derive(Debug, Clone)]
enum Op {
    /// Draw a value per lane into `slot` and record it in each lane's
    /// trace (`ValP` when the provider/guide drew it, `ValC` otherwise).
    Draw {
        dist: LaneDist,
        slot: usize,
        provider: bool,
    },
    /// Accumulate `log_density(value)` into the model or guide log-weight.
    Score {
        model: bool,
        dist: LaneDist,
        value: ScoreVal,
    },
    /// Accumulate a compile-time-known log-density term.
    ScoreConst { model: bool, w: f64 },
    /// Evaluate an expression per lane into a dynamic slot.
    Eval {
        expr: Expr,
        binds: Vec<(Ident, SymValue)>,
        slot: usize,
    },
    /// Record a `Fold` marker in each lane's trace.
    Fold,
    /// Record a constant branch direction in each lane's trace.
    DirConst { provider: bool, selection: bool },
    /// Evaluate `pred` per lane, record the direction message (when the
    /// branch is on the latent channel), and split the lane set between the
    /// two arms.
    Fork {
        pred: Expr,
        binds: Vec<(Ident, SymValue)>,
        /// `Some(provider)` when a `DirP`/`DirC` message must be recorded.
        msg: Option<bool>,
        then_ops: Vec<Op>,
        else_ops: Vec<Op>,
    },
    /// This path deterministically errors; rerun the block through the
    /// scalar interpreter to reproduce the exact error.
    Fail,
    /// Terminal of a path: stage each lane's result.
    Finish {
        model_value: SymValue,
        guide_value: SymValue,
        obs_used: u32,
    },
}

/// A compiled block plan: the op tree plus the carrier class of each slot.
#[derive(Debug)]
pub(crate) struct BlockPlan {
    ops: Vec<Op>,
    carriers: Vec<Carrier>,
}

// ---------------------------------------------------------------------------
// Symbolic coroutine (plan compiler)
// ---------------------------------------------------------------------------

/// Plan-compilation context: slot table, budgets, and a scratch stack for
/// constant folding.
struct PlanCx<'e> {
    exec: &'e JointExecutor,
    spec: &'e JointSpec,
    carriers: Vec<Carrier>,
    fuel: u32,
    leaves: u32,
    scratch: ValueStack,
}

impl PlanCx<'_> {
    fn new_slot(&mut self, carrier: Carrier) -> Result<usize, Bail> {
        if self.carriers.len() >= MAX_SLOTS {
            return Err(Bail("slot budget exceeded"));
        }
        self.carriers.push(carrier);
        Ok(self.carriers.len() - 1)
    }

    fn burn_fuel(&mut self) -> Result<(), Bail> {
        match self.fuel.checked_sub(1) {
            Some(f) => {
                self.fuel = f;
                Ok(())
            }
            None => Err(Bail("symbolic execution fuel exhausted")),
        }
    }
}

/// A symbolic mirror of [`crate::coroutine::Coroutine`]: same frames, same
/// scope bases, same control states — but over [`SymValue`]s.
#[derive(Clone)]
struct SymCo {
    prog: Arc<CompiledProgram>,
    /// `(bind node, entry depth, saved base)` continuation frames.
    frames: Vec<(CmdId, usize, usize)>,
    entries: Vec<(Ident, SymValue)>,
    base: usize,
    pending_args: Vec<SymValue>,
    control: SymControl,
}

#[derive(Clone)]
enum SymControl {
    Run(CmdId),
    Return(SymValue),
    Await(SymPending),
    Finished,
}

#[derive(Clone)]
enum SymPending {
    Sample,
    BranchRecv {
        node: CmdId,
    },
    BranchSend {
        node: CmdId,
    },
    CallAck {
        node: CmdId,
        next_mark: usize,
        callee: ProcId,
    },
}

/// A plan-time branch selection: constant, or lane-dependent.
#[derive(Clone)]
enum SymBool {
    Const(bool),
    Lane {
        pred: Expr,
        binds: Vec<(Ident, SymValue)>,
    },
}

/// A symbolic suspension, mirroring [`crate::coroutine::Suspend`].
#[derive(Clone)]
enum SymSuspend {
    SampleSend {
        chan: ChannelName,
        dist: LaneDist,
    },
    SampleRecv {
        chan: ChannelName,
        dist: LaneDist,
    },
    BranchSend {
        chan: ChannelName,
        selection: SymBool,
    },
    BranchRecv {
        chan: ChannelName,
    },
    CallMarker {
        chan: ChannelName,
    },
}

impl SymSuspend {
    fn channel(&self) -> ChannelName {
        match self {
            SymSuspend::SampleSend { chan, .. }
            | SymSuspend::SampleRecv { chan, .. }
            | SymSuspend::BranchSend { chan, .. }
            | SymSuspend::BranchRecv { chan }
            | SymSuspend::CallMarker { chan } => *chan,
        }
    }
}

/// A symbolic step outcome, mirroring [`crate::coroutine::Step`] plus the
/// deterministic-error terminal.
#[derive(Clone)]
enum SymStep {
    Suspended(SymSuspend),
    Done(SymValue),
    /// This coroutine deterministically errors on this path.
    Fails,
}

#[derive(Clone)]
enum SymResume {
    Sample(SymValue),
    Branch(bool),
    AckBranch(bool),
    Ack,
}

/// Lazily evaluated expression: constant-folded, a direct slot alias, or a
/// per-lane computation with its captured bindings.
enum LazyVal {
    Const(Value),
    Slot(usize),
    Lane {
        expr: Expr,
        binds: Vec<(Ident, SymValue)>,
    },
}

impl SymCo {
    fn lookup(&self, x: Ident) -> Option<&SymValue> {
        self.entries[self.base..]
            .iter()
            .rev()
            .find(|(name, _)| *name == x)
            .map(|(_, v)| v)
    }
}

fn sym_spawn(prog: &Arc<CompiledProgram>, name: &Ident, args: &[Value]) -> Result<SymCo, Bail> {
    let id = prog.proc_id(name).ok_or(Bail("unknown procedure"))?;
    let proc = prog.proc(id);
    if proc.params.len() != args.len() {
        return Err(Bail("arity mismatch at spawn"));
    }
    let entries = proc
        .params
        .iter()
        .zip(args)
        .map(|(x, v)| (*x, SymValue::Const(v.clone())))
        .collect();
    Ok(SymCo {
        prog: Arc::clone(prog),
        frames: Vec::new(),
        entries,
        base: 0,
        pending_args: Vec::new(),
        control: SymControl::Run(proc.body),
    })
}

fn enter_callee(co: &mut SymCo, callee: ProcId) -> CmdId {
    let base = co.entries.len();
    let prog = Arc::clone(&co.prog);
    let params = &prog.proc(callee).params;
    for (i, v) in co.pending_args.drain(..).enumerate() {
        co.entries.push((params[i], v));
    }
    co.base = base;
    prog.proc(callee).body
}

fn branch_arm(prog: &CompiledProgram, node: CmdId, selection: bool) -> Result<CmdId, Bail> {
    match prog.node(node) {
        CmdNode::Branch {
            then_cmd, else_cmd, ..
        } => Ok(if selection { *then_cmd } else { *else_cmd }),
        _ => Err(Bail("branch node mismatch")),
    }
}

/// Lazy symbolic evaluation of a pure expression: constant-folds when every
/// free variable is constant, otherwise captures the lane bindings without
/// forcing a slot allocation (forks evaluate the predicate in place).
fn sym_eval_lazy(cx: &mut PlanCx<'_>, co: &SymCo, e: &Expr) -> Result<LazyVal, Halt> {
    match e {
        Expr::Triv => return Ok(LazyVal::Const(Value::Unit)),
        Expr::Bool(b) => return Ok(LazyVal::Const(Value::Bool(*b))),
        Expr::Real(r) => return Ok(LazyVal::Const(Value::Real(*r))),
        Expr::Nat(n) => return Ok(LazyVal::Const(Value::Nat(*n))),
        Expr::Var(x) => {
            return match co.lookup(*x).ok_or(Halt::Fails)? {
                SymValue::Const(Value::Closure { .. }) => {
                    Err(Halt::Bail(Bail("closure crosses a site")))
                }
                SymValue::Const(v) => Ok(LazyVal::Const(v.clone())),
                SymValue::Slot(s) => Ok(LazyVal::Slot(*s)),
            };
        }
        _ => {}
    }
    let mut binds = Vec::new();
    let mut all_const = true;
    for x in e.free_vars() {
        let sv = co.lookup(x).ok_or(Halt::Fails)?.clone();
        match &sv {
            SymValue::Const(Value::Closure { .. }) => {
                return Err(Halt::Bail(Bail("closure crosses a site")))
            }
            SymValue::Slot(_) => all_const = false,
            SymValue::Const(_) => {}
        }
        binds.push((x, sv));
    }
    if !all_const {
        return Ok(LazyVal::Lane {
            expr: e.clone(),
            binds,
        });
    }
    cx.scratch.clear();
    for (x, sv) in &binds {
        let SymValue::Const(v) = sv else {
            unreachable!()
        };
        cx.scratch.push(*x, v.clone());
    }
    match eval_expr_in(&mut cx.scratch, e) {
        Ok(Value::Closure { .. }) => Err(Halt::Bail(Bail("closure crosses a site"))),
        Ok(v) => Ok(LazyVal::Const(v)),
        // Deterministic eval error: identical on every lane.
        Err(_) => Err(Halt::Fails),
    }
}

/// Strict symbolic evaluation: per-lane computations get a dynamic slot and
/// an [`Op::Eval`].
fn sym_eval(
    cx: &mut PlanCx<'_>,
    co: &SymCo,
    e: &Expr,
    ops: &mut Vec<Op>,
) -> Result<SymValue, Halt> {
    match sym_eval_lazy(cx, co, e)? {
        LazyVal::Const(v) => Ok(SymValue::Const(v)),
        LazyVal::Slot(s) => Ok(SymValue::Slot(s)),
        LazyVal::Lane { expr, binds } => {
            let slot = cx.new_slot(Carrier::Dyn)?;
            ops.push(Op::Eval { expr, binds, slot });
            Ok(SymValue::Slot(slot))
        }
    }
}

/// Symbolic evaluation of a sample site's distribution node.
fn sym_eval_dist(cx: &mut PlanCx<'_>, co: &SymCo, node: &DistNode) -> Result<LaneDist, Halt> {
    match node {
        DistNode::Const(d) => Ok(LaneDist::Const(d.clone())),
        DistNode::Ctor(ctor) => {
            let mut binds = Vec::new();
            let mut all_const = true;
            for arg in ctor.args() {
                for x in arg.free_vars() {
                    if binds.iter().any(|(name, _)| *name == x) {
                        continue;
                    }
                    let sv = co.lookup(x).ok_or(Halt::Fails)?.clone();
                    match &sv {
                        SymValue::Const(Value::Closure { .. }) => {
                            return Err(Halt::Bail(Bail("closure crosses a site")))
                        }
                        SymValue::Slot(_) => all_const = false,
                        SymValue::Const(_) => {}
                    }
                    binds.push((x, sv));
                }
            }
            if !all_const {
                return Ok(LaneDist::Ctor {
                    expr: ctor.clone(),
                    binds,
                });
            }
            cx.scratch.clear();
            for (x, sv) in &binds {
                let SymValue::Const(v) = sv else {
                    unreachable!()
                };
                cx.scratch.push(*x, v.clone());
            }
            match eval_dist_in(&mut cx.scratch, ctor) {
                Ok(d) => Ok(LaneDist::Const(d)),
                Err(_) => Err(Halt::Fails),
            }
        }
        DistNode::Opaque(e) => match sym_eval_lazy(cx, co, e)? {
            LazyVal::Const(Value::Dist(d)) => Ok(LaneDist::Const(d)),
            LazyVal::Const(_) => Err(Halt::Fails),
            _ => Err(Halt::Bail(Bail("per-lane opaque distribution"))),
        },
    }
}

/// Symbolic mirror of [`crate::coroutine::Coroutine::drive`]: steps the
/// coroutine until it suspends, finishes, or is found to deterministically
/// error, emitting per-lane [`Op::Eval`]s along the way.
fn sym_drive(cx: &mut PlanCx<'_>, co: &mut SymCo, ops: &mut Vec<Op>) -> Result<SymStep, Bail> {
    loop {
        cx.burn_fuel()?;
        let control = std::mem::replace(&mut co.control, SymControl::Finished);
        match control {
            SymControl::Finished | SymControl::Await(_) => return Err(Bail("bad control state")),
            SymControl::Return(v) => match co.frames.pop() {
                None => return Ok(SymStep::Done(v)),
                Some((node, depth, base)) => {
                    let prog = Arc::clone(&co.prog);
                    let CmdNode::Bind { var, rest, .. } = prog.node(node) else {
                        return Err(Bail("bind frame mismatch"));
                    };
                    co.entries.truncate(depth);
                    co.base = base;
                    co.entries.push((*var, v));
                    co.control = SymControl::Run(*rest);
                }
            },
            SymControl::Run(cmd) => {
                let prog = Arc::clone(&co.prog);
                match prog.node(cmd) {
                    CmdNode::Ret(e) => match sym_eval(cx, co, e, ops) {
                        Ok(v) => co.control = SymControl::Return(v),
                        Err(Halt::Fails) => return Ok(SymStep::Fails),
                        Err(Halt::Bail(b)) => return Err(b),
                    },
                    CmdNode::Bind { first, .. } => {
                        co.frames.push((cmd, co.entries.len(), co.base));
                        co.control = SymControl::Run(*first);
                    }
                    CmdNode::Call {
                        callee,
                        args,
                        marks,
                    } => {
                        co.pending_args.clear();
                        let mut failed = false;
                        for arg in args {
                            match sym_eval(cx, co, arg, ops) {
                                Ok(v) => co.pending_args.push(v),
                                Err(Halt::Fails) => {
                                    failed = true;
                                    break;
                                }
                                Err(Halt::Bail(b)) => return Err(b),
                            }
                        }
                        if failed {
                            return Ok(SymStep::Fails);
                        }
                        let callee = match callee {
                            CalleeRef::Resolved(id) => *id,
                            CalleeRef::Unknown(_) => return Ok(SymStep::Fails),
                        };
                        if prog.proc(callee).params.len() != co.pending_args.len() {
                            return Ok(SymStep::Fails);
                        }
                        if let Some(chan) = marks.first() {
                            co.control = SymControl::Await(SymPending::CallAck {
                                node: cmd,
                                next_mark: 1,
                                callee,
                            });
                            return Ok(SymStep::Suspended(SymSuspend::CallMarker { chan: *chan }));
                        }
                        let body = enter_callee(co, callee);
                        co.control = SymControl::Run(body);
                    }
                    CmdNode::Sample {
                        dir,
                        chan,
                        dist,
                        declared,
                    } => {
                        if !declared {
                            return Ok(SymStep::Fails);
                        }
                        let dist = match sym_eval_dist(cx, co, dist) {
                            Ok(d) => d,
                            Err(Halt::Fails) => return Ok(SymStep::Fails),
                            Err(Halt::Bail(b)) => return Err(b),
                        };
                        co.control = SymControl::Await(SymPending::Sample);
                        return Ok(SymStep::Suspended(match dir {
                            Dir::Send => SymSuspend::SampleSend { chan: *chan, dist },
                            Dir::Recv => SymSuspend::SampleRecv { chan: *chan, dist },
                        }));
                    }
                    CmdNode::Branch {
                        dir,
                        chan,
                        pred,
                        declared,
                        ..
                    } => {
                        if !declared {
                            return Ok(SymStep::Fails);
                        }
                        match dir {
                            Dir::Send => {
                                let Some(pred) = pred else {
                                    return Ok(SymStep::Fails);
                                };
                                let selection = match sym_eval_lazy(cx, co, pred) {
                                    Ok(LazyVal::Const(Value::Bool(b))) => SymBool::Const(b),
                                    Ok(LazyVal::Const(_)) => return Ok(SymStep::Fails),
                                    Ok(LazyVal::Slot(s)) => {
                                        let Expr::Var(x) = pred else {
                                            return Err(Bail("slot alias on non-variable"));
                                        };
                                        SymBool::Lane {
                                            pred: pred.clone(),
                                            binds: vec![(*x, SymValue::Slot(s))],
                                        }
                                    }
                                    Ok(LazyVal::Lane { expr, binds }) => {
                                        SymBool::Lane { pred: expr, binds }
                                    }
                                    Err(Halt::Fails) => return Ok(SymStep::Fails),
                                    Err(Halt::Bail(b)) => return Err(b),
                                };
                                co.control =
                                    SymControl::Await(SymPending::BranchSend { node: cmd });
                                return Ok(SymStep::Suspended(SymSuspend::BranchSend {
                                    chan: *chan,
                                    selection,
                                }));
                            }
                            Dir::Recv => {
                                co.control =
                                    SymControl::Await(SymPending::BranchRecv { node: cmd });
                                return Ok(SymStep::Suspended(SymSuspend::BranchRecv {
                                    chan: *chan,
                                }));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Symbolic mirror of [`crate::coroutine::Coroutine::resume`] followed by a
/// drive to the next suspension.
fn sym_resume(
    cx: &mut PlanCx<'_>,
    co: &mut SymCo,
    resume: SymResume,
    ops: &mut Vec<Op>,
) -> Result<SymStep, Bail> {
    let pending = match std::mem::replace(&mut co.control, SymControl::Finished) {
        SymControl::Await(p) => p,
        _ => return Err(Bail("resume without suspension")),
    };
    match (pending, resume) {
        (SymPending::Sample, SymResume::Sample(v)) => co.control = SymControl::Return(v),
        (SymPending::BranchRecv { node }, SymResume::Branch(sel)) => {
            co.control = SymControl::Run(branch_arm(&co.prog, node, sel)?);
        }
        (SymPending::BranchSend { node }, SymResume::AckBranch(sel)) => {
            co.control = SymControl::Run(branch_arm(&co.prog, node, sel)?);
        }
        (
            SymPending::CallAck {
                node,
                next_mark,
                callee,
            },
            SymResume::Ack,
        ) => {
            let prog = Arc::clone(&co.prog);
            let CmdNode::Call { marks, .. } = prog.node(node) else {
                return Err(Bail("call frame mismatch"));
            };
            if let Some(chan) = marks.get(next_mark) {
                co.control = SymControl::Await(SymPending::CallAck {
                    node,
                    next_mark: next_mark + 1,
                    callee,
                });
                return Ok(SymStep::Suspended(SymSuspend::CallMarker { chan: *chan }));
            }
            let body = enter_callee(co, callee);
            co.control = SymControl::Run(body);
        }
        _ => return Err(Bail("resume kind mismatch")),
    }
    sym_drive(cx, co, ops)
}

// ---------------------------------------------------------------------------
// Joint plan compilation (mirror of `drive_joint`)
// ---------------------------------------------------------------------------

/// The symbolic joint state: both coroutines plus their last steps.
#[derive(Clone)]
struct SymJoint {
    model: SymCo,
    guide: SymCo,
    mstep: SymStep,
    gstep: SymStep,
    obs_used: usize,
}

/// Emits score ops for one sample site, constant-folding where possible.
///
/// A carrier-class mismatch between a constant distribution and a drawn
/// slot means `supports()` rejects every lane identically, so the site
/// scores exactly `-inf` — emitted as a constant so the per-lane decode is
/// skipped.  The add is always emitted (never elided at `w == 0`) so the
/// floating-point accumulation order matches the scalar path bit-for-bit.
fn emit_score(cx: &PlanCx<'_>, ops: &mut Vec<Op>, model: bool, dist: LaneDist, value: ScoreVal) {
    match (&dist, &value) {
        (LaneDist::Const(d), ScoreVal::Sample(v)) => ops.push(Op::ScoreConst {
            model,
            w: d.log_density(v),
        }),
        (LaneDist::Const(d), ScoreVal::Slot(s)) => {
            if class_of_kind(d.kind()) == cx.carriers[*s] {
                ops.push(Op::Score { model, dist, value });
            } else {
                ops.push(Op::ScoreConst {
                    model,
                    w: f64::NEG_INFINITY,
                });
            }
        }
        (LaneDist::Ctor { .. }, _) => ops.push(Op::Score { model, dist, value }),
    }
}

/// Which joint rendezvous is being forked on a lane-dependent branch
/// predicate (determines the resume order, which must match the scalar
/// arbitration exactly).
enum ForkKind {
    /// Model branch on the observation channel: model acknowledged alone.
    ModelOnly,
    /// Model sends the latent direction: guide resumed first.
    ModelSends,
    /// Guide sends the latent direction: model resumed first.
    GuideSends,
}

/// Resolves one fork arm: applies the resume(s) for selection `sel`, then
/// continues compiling the path.
fn fork_arm(
    cx: &mut PlanCx<'_>,
    mut st: SymJoint,
    sel: bool,
    kind: &ForkKind,
    depth: usize,
) -> Result<Vec<Op>, Bail> {
    let mut ops = Vec::new();
    match kind {
        ForkKind::ModelOnly => {
            st.mstep = sym_resume(cx, &mut st.model, SymResume::AckBranch(sel), &mut ops)?;
        }
        ForkKind::ModelSends => {
            st.gstep = sym_resume(cx, &mut st.guide, SymResume::Branch(sel), &mut ops)?;
            st.mstep = sym_resume(cx, &mut st.model, SymResume::AckBranch(sel), &mut ops)?;
        }
        ForkKind::GuideSends => {
            st.mstep = sym_resume(cx, &mut st.model, SymResume::Branch(sel), &mut ops)?;
            st.gstep = sym_resume(cx, &mut st.guide, SymResume::AckBranch(sel), &mut ops)?;
        }
    }
    let rest = drive_path(cx, st, depth + 1)?;
    ops.extend(rest);
    Ok(ops)
}

/// Emits a fork on a lane-dependent branch predicate and compiles both arms.
#[allow(clippy::too_many_arguments)] // plan-compiler state is threaded explicitly
fn fork(
    cx: &mut PlanCx<'_>,
    mut ops: Vec<Op>,
    st: SymJoint,
    depth: usize,
    pred: Expr,
    binds: Vec<(Ident, SymValue)>,
    msg: Option<bool>,
    kind: ForkKind,
) -> Result<Vec<Op>, Bail> {
    if depth >= MAX_DEPTH {
        return Err(Bail("fork depth exceeded"));
    }
    let else_st = st.clone();
    let then_ops = fork_arm(cx, st, true, &kind, depth)?;
    let else_ops = fork_arm(cx, else_st, false, &kind, depth)?;
    ops.push(Op::Fork {
        pred,
        binds,
        msg,
        then_ops,
        else_ops,
    });
    Ok(ops)
}

/// Compiles one path of the joint execution, mirroring the arbitration loop
/// of `drive_joint` arm for arm (the step order and resume order determine
/// both the RNG consumption order and the floating-point accumulation
/// order, so they must match exactly).
fn drive_path(cx: &mut PlanCx<'_>, mut st: SymJoint, depth: usize) -> Result<Vec<Op>, Bail> {
    cx.leaves += 1;
    if cx.leaves > MAX_LEAVES {
        return Err(Bail("fork leaf budget exceeded"));
    }
    let mut ops = Vec::new();
    loop {
        cx.burn_fuel()?;
        if matches!(st.mstep, SymStep::Fails) || matches!(st.gstep, SymStep::Fails) {
            ops.push(Op::Fail);
            return Ok(ops);
        }
        if let (SymStep::Done(mv), SymStep::Done(gv)) = (&st.mstep, &st.gstep) {
            if st.obs_used != cx.exec.observations.len() {
                ops.push(Op::Fail);
                return Ok(ops);
            }
            ops.push(Op::Finish {
                model_value: mv.clone(),
                guide_value: gv.clone(),
                obs_used: st.obs_used as u32,
            });
            return Ok(ops);
        }

        // The model acts alone on the observation channel.
        let obs_suspend = match &st.mstep {
            SymStep::Suspended(s) if s.channel() == cx.spec.obs_chan => Some(s.clone()),
            _ => None,
        };
        if let Some(suspend) = obs_suspend {
            match suspend {
                SymSuspend::SampleSend { dist, .. } => {
                    let Some(obs) = cx.exec.observations.get(st.obs_used).copied() else {
                        ops.push(Op::Fail);
                        return Ok(ops);
                    };
                    st.obs_used += 1;
                    emit_score(cx, &mut ops, true, dist, ScoreVal::Sample(obs));
                    st.mstep = sym_resume(
                        cx,
                        &mut st.model,
                        SymResume::Sample(SymValue::Const(Value::from_sample(obs))),
                        &mut ops,
                    )?;
                }
                SymSuspend::CallMarker { .. } => {
                    st.mstep = sym_resume(cx, &mut st.model, SymResume::Ack, &mut ops)?;
                }
                SymSuspend::BranchSend { selection, .. } => match selection {
                    SymBool::Const(sel) => {
                        st.mstep =
                            sym_resume(cx, &mut st.model, SymResume::AckBranch(sel), &mut ops)?;
                    }
                    SymBool::Lane { pred, binds } => {
                        return fork(cx, ops, st, depth, pred, binds, None, ForkKind::ModelOnly);
                    }
                },
                _ => {
                    ops.push(Op::Fail);
                    return Ok(ops);
                }
            }
            continue;
        }

        // Both coroutines must now rendezvous on the latent channel.
        let (msus, gsus) = match (&st.mstep, &st.gstep) {
            (SymStep::Suspended(m), SymStep::Suspended(g)) => (m.clone(), g.clone()),
            _ => {
                ops.push(Op::Fail);
                return Ok(ops);
            }
        };
        let latent = cx.spec.latent_chan;
        match (msus, gsus) {
            // Guide provides a latent value the model consumes.
            (
                SymSuspend::SampleRecv { chan: mc, dist: md },
                SymSuspend::SampleSend { chan: gc, dist: gd },
            ) if mc == latent && gc == latent => {
                let slot = cx.new_slot(class_of_dist(&gd))?;
                ops.push(Op::Draw {
                    dist: gd.clone(),
                    slot,
                    provider: true,
                });
                emit_score(cx, &mut ops, false, gd, ScoreVal::Slot(slot));
                emit_score(cx, &mut ops, true, md, ScoreVal::Slot(slot));
                st.gstep = sym_resume(
                    cx,
                    &mut st.guide,
                    SymResume::Sample(SymValue::Slot(slot)),
                    &mut ops,
                )?;
                st.mstep = sym_resume(
                    cx,
                    &mut st.model,
                    SymResume::Sample(SymValue::Slot(slot)),
                    &mut ops,
                )?;
            }
            // Model provides a latent value the guide consumes.
            (
                SymSuspend::SampleSend { chan: mc, dist: md },
                SymSuspend::SampleRecv { chan: gc, dist: gd },
            ) if mc == latent && gc == latent => {
                let slot = cx.new_slot(class_of_dist(&md))?;
                ops.push(Op::Draw {
                    dist: md.clone(),
                    slot,
                    provider: false,
                });
                emit_score(cx, &mut ops, true, md, ScoreVal::Slot(slot));
                emit_score(cx, &mut ops, false, gd, ScoreVal::Slot(slot));
                st.mstep = sym_resume(
                    cx,
                    &mut st.model,
                    SymResume::Sample(SymValue::Slot(slot)),
                    &mut ops,
                )?;
                st.gstep = sym_resume(
                    cx,
                    &mut st.guide,
                    SymResume::Sample(SymValue::Slot(slot)),
                    &mut ops,
                )?;
            }
            // Model directs a latent branch.
            (
                SymSuspend::BranchSend {
                    chan: mc,
                    selection,
                },
                SymSuspend::BranchRecv { chan: gc },
            ) if mc == latent && gc == latent => match selection {
                SymBool::Const(sel) => {
                    ops.push(Op::DirConst {
                        provider: false,
                        selection: sel,
                    });
                    st.gstep = sym_resume(cx, &mut st.guide, SymResume::Branch(sel), &mut ops)?;
                    st.mstep = sym_resume(cx, &mut st.model, SymResume::AckBranch(sel), &mut ops)?;
                }
                SymBool::Lane { pred, binds } => {
                    return fork(
                        cx,
                        ops,
                        st,
                        depth,
                        pred,
                        binds,
                        Some(false),
                        ForkKind::ModelSends,
                    );
                }
            },
            // Guide directs a latent branch.
            (
                SymSuspend::BranchRecv { chan: mc },
                SymSuspend::BranchSend {
                    chan: gc,
                    selection,
                },
            ) if mc == latent && gc == latent => match selection {
                SymBool::Const(sel) => {
                    ops.push(Op::DirConst {
                        provider: true,
                        selection: sel,
                    });
                    st.mstep = sym_resume(cx, &mut st.model, SymResume::Branch(sel), &mut ops)?;
                    st.gstep = sym_resume(cx, &mut st.guide, SymResume::AckBranch(sel), &mut ops)?;
                }
                SymBool::Lane { pred, binds } => {
                    return fork(
                        cx,
                        ops,
                        st,
                        depth,
                        pred,
                        binds,
                        Some(true),
                        ForkKind::GuideSends,
                    );
                }
            },
            // Both coroutines fold on the latent channel together.
            (SymSuspend::CallMarker { chan: mc }, SymSuspend::CallMarker { chan: gc })
                if mc == latent && gc == latent =>
            {
                ops.push(Op::Fold);
                st.mstep = sym_resume(cx, &mut st.model, SymResume::Ack, &mut ops)?;
                st.gstep = sym_resume(cx, &mut st.guide, SymResume::Ack, &mut ops)?;
            }
            // One side folds a channel the other does not mark here.
            (_, SymSuspend::CallMarker { chan: gc }) if gc == latent => {
                st.gstep = sym_resume(cx, &mut st.guide, SymResume::Ack, &mut ops)?;
            }
            (SymSuspend::CallMarker { chan: mc }, _) if mc == latent => {
                st.mstep = sym_resume(cx, &mut st.model, SymResume::Ack, &mut ops)?;
            }
            _ => {
                ops.push(Op::Fail);
                return Ok(ops);
            }
        }
    }
}

impl BlockPlan {
    /// Compiles a block plan for `exec` under `spec`, or reports why the
    /// program shape must stay on the scalar path.
    pub(crate) fn compile(exec: &JointExecutor, spec: &JointSpec) -> Result<BlockPlan, Bail> {
        for arg in spec.model_args.iter().chain(spec.guide_args.iter()) {
            if matches!(arg, Value::Closure { .. }) {
                return Err(Bail("closure argument"));
            }
        }
        let mut cx = PlanCx {
            exec,
            spec,
            carriers: Vec::new(),
            fuel: FUEL,
            leaves: 0,
            scratch: ValueStack::new(),
        };
        let mut model = sym_spawn(&exec.model_program, &spec.model_proc, &spec.model_args)?;
        let mut guide = sym_spawn(&exec.guide_program, &spec.guide_proc, &spec.guide_args)?;
        let mut ops = Vec::new();
        let mstep = sym_drive(&mut cx, &mut model, &mut ops)?;
        let gstep = sym_drive(&mut cx, &mut guide, &mut ops)?;
        let st = SymJoint {
            model,
            guide,
            mstep,
            gstep,
            obs_used: 0,
        };
        let rest = drive_path(&mut cx, st, 0)?;
        ops.extend(rest);
        Ok(BlockPlan {
            ops,
            carriers: cx.carriers,
        })
    }
}

// ---------------------------------------------------------------------------
// Runtime: the structure-of-arrays runner
// ---------------------------------------------------------------------------

/// Cache key for the per-worker compiled plan.  Holding `Arc` clones keeps
/// the keyed allocations alive, so pointer equality cannot alias a new
/// program at a recycled address.
#[derive(Debug)]
struct PlanKey {
    model_prog: Arc<CompiledProgram>,
    guide_prog: Arc<CompiledProgram>,
    observations: Arc<[Sample]>,
    model_proc: Ident,
    guide_proc: Ident,
    latent_chan: ChannelName,
    obs_chan: ChannelName,
    model_args: Vec<Value>,
    guide_args: Vec<Value>,
}

impl PlanKey {
    fn new(exec: &JointExecutor, spec: &JointSpec) -> PlanKey {
        PlanKey {
            model_prog: Arc::clone(&exec.model_program),
            guide_prog: Arc::clone(&exec.guide_program),
            observations: Arc::clone(&exec.observations),
            model_proc: spec.model_proc,
            guide_proc: spec.guide_proc,
            latent_chan: spec.latent_chan,
            obs_chan: spec.obs_chan,
            model_args: spec.model_args.clone(),
            guide_args: spec.guide_args.clone(),
        }
    }

    fn matches(&self, exec: &JointExecutor, spec: &JointSpec) -> bool {
        Arc::ptr_eq(&self.model_prog, &exec.model_program)
            && Arc::ptr_eq(&self.guide_prog, &exec.guide_program)
            && Arc::ptr_eq(&self.observations, &exec.observations)
            && self.model_proc == spec.model_proc
            && self.guide_proc == spec.guide_proc
            && self.latent_chan == spec.latent_chan
            && self.obs_chan == spec.obs_chan
            && self.model_args == spec.model_args
            && self.guide_args == spec.guide_args
    }
}

/// Per-worker working memory of the block executor, owned by
/// [`JointScratch`].  Every buffer is retained across blocks, so the warmed
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct BlockScratch {
    /// The most recent plan (or cached compile failure) and its key.
    cache: Option<(PlanKey, Option<Arc<BlockPlan>>)>,
    rngs: Vec<Pcg32>,
    /// One `f64` column per slot.
    slots: Vec<Vec<f64>>,
    /// Tag columns for dynamic slots.
    tags: Vec<Vec<u8>>,
    model_lw: Vec<f64>,
    guide_lw: Vec<f64>,
    traces: Vec<Trace>,
    /// The dense lane identity set `0..count`.
    lanes: Vec<u32>,
    /// Per-fork-depth partition buffers (then-lanes, else-lanes).
    fork_bufs: Vec<(Vec<u32>, Vec<u32>)>,
    score_buf: Vec<f64>,
    sample_buf: Vec<Sample>,
    eval_stack: ValueStack,
    finished: Vec<Option<(Value, Value, u32)>>,
}

/// The op-tree interpreter over the structure-of-arrays lane buffers.
struct Runner<'p, 's> {
    count: usize,
    cancel: &'p crate::cancel::CancelToken,
    carriers: &'p [Carrier],
    rngs: &'s mut [Pcg32],
    slots: &'s mut [Vec<f64>],
    tags: &'s mut [Vec<u8>],
    model_lw: &'s mut [f64],
    guide_lw: &'s mut [f64],
    traces: &'s mut [Trace],
    fork_bufs: &'s mut Vec<(Vec<u32>, Vec<u32>)>,
    score_buf: &'s mut [f64],
    sample_buf: &'s mut [Sample],
    eval_stack: &'s mut ValueStack,
    finished: &'s mut [Option<(Value, Value, u32)>],
}

/// Rebuilds the per-lane binding stack for an expression's free variables.
fn materialize(
    stack: &mut ValueStack,
    slots: &[Vec<f64>],
    tags: &[Vec<u8>],
    carriers: &[Carrier],
    binds: &[(Ident, SymValue)],
    lane: usize,
) -> Result<(), RunBail> {
    stack.clear();
    for (x, sv) in binds {
        let v = match sv {
            SymValue::Const(v) => v.clone(),
            SymValue::Slot(s) => decode_slot(carriers[*s], slots[*s][lane], tags[*s][lane])?,
        };
        stack.push(*x, v);
    }
    Ok(())
}

fn decode_symvalue(
    sv: &SymValue,
    slots: &[Vec<f64>],
    tags: &[Vec<u8>],
    carriers: &[Carrier],
    lane: usize,
) -> Result<Value, RunBail> {
    match sv {
        SymValue::Const(v) => Ok(v.clone()),
        SymValue::Slot(s) => decode_slot(carriers[*s], slots[*s][lane], tags[*s][lane]),
    }
}

impl Runner<'_, '_> {
    fn run_ops(&mut self, ops: &[Op], lanes: &[u32], depth: usize) -> Result<(), RunBail> {
        if lanes.is_empty() {
            return Ok(());
        }
        // One flush per op-list per block (amortised over every lane), so
        // the per-op loop below stays atomic-free.
        crate::stats::record_cancel_checks(ops.len() as u64);
        // Batched kernels apply whenever the active set is the full dense
        // block (possible inside a fork arm when every lane agreed).
        let full = lanes.len() == self.count;
        for op in ops {
            #[cfg(feature = "faults")]
            crate::faults::maybe_stall_op();
            // A raised token bails the whole block to the scalar path,
            // where the per-lane entry check reports the real error for
            // lane 0 — without threading a second error type through the
            // op interpreter.  Costs two `Option` tests per op when no
            // token is armed.
            if self.cancel.check().is_err() {
                return Err(RunBail);
            }
            match op {
                Op::Draw {
                    dist,
                    slot,
                    provider,
                } => match dist {
                    LaneDist::Const(d) if full => {
                        d.sample_batch(&mut *self.rngs, &mut *self.sample_buf);
                        for &l in lanes {
                            let l = l as usize;
                            let s = self.sample_buf[l];
                            self.traces[l].push(if *provider {
                                Message::ValP(s)
                            } else {
                                Message::ValC(s)
                            });
                            self.slots[*slot][l] = encode_sample(s);
                        }
                    }
                    LaneDist::Const(d) => {
                        for &l in lanes {
                            let l = l as usize;
                            let s = d.draw(&mut self.rngs[l]);
                            self.traces[l].push(if *provider {
                                Message::ValP(s)
                            } else {
                                Message::ValC(s)
                            });
                            self.slots[*slot][l] = encode_sample(s);
                        }
                    }
                    LaneDist::Ctor { expr, binds } => {
                        for &l in lanes {
                            let l = l as usize;
                            materialize(
                                self.eval_stack,
                                &*self.slots,
                                &*self.tags,
                                self.carriers,
                                binds,
                                l,
                            )?;
                            let d =
                                eval_dist_in(&mut *self.eval_stack, expr).map_err(|_| RunBail)?;
                            let s = d.draw(&mut self.rngs[l]);
                            self.traces[l].push(if *provider {
                                Message::ValP(s)
                            } else {
                                Message::ValC(s)
                            });
                            self.slots[*slot][l] = encode_sample(s);
                        }
                    }
                },
                Op::Score { model, dist, value } => match (dist, value) {
                    (LaneDist::Const(d), ScoreVal::Slot(s)) => {
                        let carrier = self.carriers[*s];
                        let lw = if *model {
                            &mut *self.model_lw
                        } else {
                            &mut *self.guide_lw
                        };
                        if full && matches!(carrier, Carrier::Real | Carrier::Bool) {
                            d.log_density_batch(&self.slots[*s][..self.count], self.score_buf);
                            for &l in lanes.iter() {
                                let l = l as usize;
                                lw[l] += self.score_buf[l];
                            }
                        } else {
                            for &l in lanes.iter() {
                                let l = l as usize;
                                let sample =
                                    decode_sample(carrier, self.slots[*s][l]).ok_or(RunBail)?;
                                lw[l] += d.log_density(&sample);
                            }
                        }
                    }
                    (LaneDist::Const(d), ScoreVal::Sample(v)) => {
                        let w = d.log_density(v);
                        let lw = if *model {
                            &mut *self.model_lw
                        } else {
                            &mut *self.guide_lw
                        };
                        for &l in lanes {
                            lw[l as usize] += w;
                        }
                    }
                    (LaneDist::Ctor { expr, binds }, value) => {
                        for &l in lanes {
                            let l = l as usize;
                            materialize(
                                self.eval_stack,
                                &*self.slots,
                                &*self.tags,
                                self.carriers,
                                binds,
                                l,
                            )?;
                            let d =
                                eval_dist_in(&mut *self.eval_stack, expr).map_err(|_| RunBail)?;
                            let sample = match value {
                                ScoreVal::Sample(v) => *v,
                                ScoreVal::Slot(s) => {
                                    decode_sample(self.carriers[*s], self.slots[*s][l])
                                        .ok_or(RunBail)?
                                }
                            };
                            let lw = if *model {
                                &mut *self.model_lw
                            } else {
                                &mut *self.guide_lw
                            };
                            lw[l] += d.log_density(&sample);
                        }
                    }
                },
                Op::ScoreConst { model, w } => {
                    let lw = if *model {
                        &mut *self.model_lw
                    } else {
                        &mut *self.guide_lw
                    };
                    for &l in lanes {
                        lw[l as usize] += *w;
                    }
                }
                Op::Eval { expr, binds, slot } => {
                    for &l in lanes {
                        let l = l as usize;
                        materialize(
                            self.eval_stack,
                            &*self.slots,
                            &*self.tags,
                            self.carriers,
                            binds,
                            l,
                        )?;
                        let v = eval_expr_in(&mut *self.eval_stack, expr).map_err(|_| RunBail)?;
                        let (tag, x) = encode_value(&v).ok_or(RunBail)?;
                        self.slots[*slot][l] = x;
                        self.tags[*slot][l] = tag;
                    }
                }
                Op::Fold => {
                    for &l in lanes {
                        self.traces[l as usize].push(Message::Fold);
                    }
                }
                Op::DirConst {
                    provider,
                    selection,
                } => {
                    let m = if *provider {
                        Message::DirP(*selection)
                    } else {
                        Message::DirC(*selection)
                    };
                    for &l in lanes {
                        self.traces[l as usize].push(m);
                    }
                }
                Op::Fork {
                    pred,
                    binds,
                    msg,
                    then_ops,
                    else_ops,
                } => {
                    if self.fork_bufs.len() <= depth {
                        self.fork_bufs.push((Vec::new(), Vec::new()));
                    }
                    let (mut then_lanes, mut else_lanes) =
                        std::mem::take(&mut self.fork_bufs[depth]);
                    then_lanes.clear();
                    else_lanes.clear();
                    let mut bail = false;
                    for &l in lanes {
                        let lu = l as usize;
                        if materialize(
                            self.eval_stack,
                            &*self.slots,
                            &*self.tags,
                            self.carriers,
                            binds,
                            lu,
                        )
                        .is_err()
                        {
                            bail = true;
                            break;
                        }
                        let sel = match eval_expr_in(&mut *self.eval_stack, pred) {
                            Ok(v) => match v.as_bool() {
                                Some(b) => b,
                                None => {
                                    bail = true;
                                    break;
                                }
                            },
                            Err(_) => {
                                bail = true;
                                break;
                            }
                        };
                        if let Some(provider) = msg {
                            self.traces[lu].push(if *provider {
                                Message::DirP(sel)
                            } else {
                                Message::DirC(sel)
                            });
                        }
                        if sel {
                            then_lanes.push(l);
                        } else {
                            else_lanes.push(l);
                        }
                    }
                    let diverged = !bail && !then_lanes.is_empty() && !else_lanes.is_empty();
                    if diverged {
                        crate::stats::record_lane_split();
                    }
                    let result = if bail {
                        Err(RunBail)
                    } else {
                        self.run_ops(then_ops, &then_lanes, depth + 1)
                            .and_then(|()| self.run_ops(else_ops, &else_lanes, depth + 1))
                    };
                    if diverged && result.is_ok() {
                        crate::stats::record_lane_reconverge();
                    }
                    self.fork_bufs[depth] = (then_lanes, else_lanes);
                    result?;
                }
                Op::Fail => return Err(RunBail),
                Op::Finish {
                    model_value,
                    guide_value,
                    obs_used,
                } => {
                    for &l in lanes {
                        let l = l as usize;
                        let mv = decode_symvalue(
                            model_value,
                            &*self.slots,
                            &*self.tags,
                            self.carriers,
                            l,
                        )?;
                        let gv = decode_symvalue(
                            guide_value,
                            &*self.slots,
                            &*self.tags,
                            self.carriers,
                            l,
                        )?;
                        self.finished[l] = Some((mv, gv, *obs_used));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

impl JointExecutor {
    /// Runs a lockstep block of `count` joint executions, pushing one
    /// [`JointResult`] per lane (in lane order) onto `out`.
    ///
    /// Lane `i` consumes exactly the RNG substream
    /// `master.split(first_stream + i)`, the same stream the scalar engine
    /// hands particle number `first_stream + i` — so the results are
    /// **bit-identical** to `count` scalar [`JointExecutor::run`] calls at
    /// every block size and thread count.  Programs (or individual blocks)
    /// the vectoriser cannot handle transparently fall back to the scalar
    /// coroutine path per lane; an error is reported for the lowest failing
    /// lane, exactly as the scalar engine would.
    ///
    /// The first call per `(programs, observations, spec)` combination
    /// compiles a block plan into `scratch`; subsequent calls reuse it, and
    /// the warmed loop performs no steady-state heap allocations.
    pub fn run_block_with_scratch(
        &self,
        spec: &JointSpec,
        master: &Pcg32,
        first_stream: u64,
        count: usize,
        scratch: &mut JointScratch,
        out: &mut Vec<JointResult>,
    ) -> Result<(), RuntimeError> {
        if count == 0 {
            return Ok(());
        }
        // One cancellation poll per particle block: the granularity the
        // serving layer's deadline guarantee ("within one block-step") is
        // stated in.  The vectorised op loop polls again per op, and the
        // scalar fallback per lane, so a mid-block expiry also surfaces.
        self.cancel.check()?;
        crate::stats::record_cancel_checks(1);
        let plan = match &scratch.block.cache {
            Some((key, plan)) if key.matches(self, spec) => plan.clone(),
            _ => {
                let plan = BlockPlan::compile(self, spec).ok().map(Arc::new);
                scratch.block.cache = Some((PlanKey::new(self, spec), plan.clone()));
                plan
            }
        };
        let Some(plan) = plan else {
            return self.scalar_block(spec, master, first_stream, count, scratch, out);
        };
        match self.run_plan(&plan, master, first_stream, count, scratch, out) {
            Ok(()) => Ok(()),
            Err(RunBail) => self.scalar_block(spec, master, first_stream, count, scratch, out),
        }
    }

    /// The per-lane scalar fallback: identical streams, identical results.
    fn scalar_block(
        &self,
        spec: &JointSpec,
        master: &Pcg32,
        first_stream: u64,
        count: usize,
        scratch: &mut JointScratch,
        out: &mut Vec<JointResult>,
    ) -> Result<(), RuntimeError> {
        // Each scalar run polls the token at entry; flush once per block.
        crate::stats::record_cancel_checks(count as u64);
        for i in 0..count {
            let mut rng = master.split(first_stream + i as u64);
            let result = self.run_with_scratch(spec, LatentSource::FromGuide, &mut rng, scratch)?;
            out.push(result);
        }
        Ok(())
    }

    fn run_plan(
        &self,
        plan: &BlockPlan,
        master: &Pcg32,
        first_stream: u64,
        count: usize,
        scratch: &mut JointScratch,
        out: &mut Vec<JointResult>,
    ) -> Result<(), RunBail> {
        let bs = &mut scratch.block;
        // Per-lane trace buffers, refilled from the recycle pool.
        if bs.traces.len() < count {
            bs.traces.resize_with(count, Trace::new);
        }
        for t in &mut bs.traces[..count] {
            if t.capacity() == 0 {
                if let Some(pooled) = scratch.trace_pool.pop() {
                    *t = pooled;
                }
            }
            t.clear();
        }
        // Per-lane RNG substreams: the scalar discipline, exactly.
        bs.rngs.clear();
        for i in 0..count {
            bs.rngs.push(master.split(first_stream + i as u64));
        }
        // Structure-of-arrays columns.
        let nslots = plan.carriers.len();
        if bs.slots.len() < nslots {
            bs.slots.resize_with(nslots, Vec::new);
            bs.tags.resize_with(nslots, Vec::new);
        }
        for col in &mut bs.slots[..nslots] {
            if col.len() < count {
                col.resize(count, 0.0);
            }
        }
        for col in &mut bs.tags[..nslots] {
            if col.len() < count {
                col.resize(count, 0);
            }
        }
        if bs.model_lw.len() < count {
            bs.model_lw.resize(count, 0.0);
            bs.guide_lw.resize(count, 0.0);
            bs.score_buf.resize(count, 0.0);
            bs.sample_buf.resize(count, Sample::Real(0.0));
            bs.finished.resize(count, None);
        }
        bs.model_lw[..count].fill(0.0);
        bs.guide_lw[..count].fill(0.0);
        bs.finished[..count].fill(None);
        bs.lanes.clear();
        bs.lanes.extend(0..count as u32);

        {
            let mut runner = Runner {
                count,
                cancel: &self.cancel,
                carriers: &plan.carriers,
                rngs: &mut bs.rngs[..count],
                slots: &mut bs.slots[..nslots],
                tags: &mut bs.tags[..nslots],
                model_lw: &mut bs.model_lw[..count],
                guide_lw: &mut bs.guide_lw[..count],
                traces: &mut bs.traces[..count],
                fork_bufs: &mut bs.fork_bufs,
                score_buf: &mut bs.score_buf[..count],
                sample_buf: &mut bs.sample_buf[..count],
                eval_stack: &mut bs.eval_stack,
                finished: &mut bs.finished[..count],
            };
            runner.run_ops(&plan.ops, &bs.lanes, 0)?;
        }

        // Every lane must have reached a `Finish`; verify before touching
        // `out` so a fallback rerun cannot observe partial pushes.
        if bs.finished[..count].iter().any(Option::is_none) {
            return Err(RunBail);
        }
        for l in 0..count {
            let (model_value, guide_value, obs_used) =
                bs.finished[l].take().expect("verified above");
            out.push(JointResult {
                latent: std::mem::take(&mut bs.traces[l]),
                log_guide: bs.guide_lw[l],
                log_model: bs.model_lw[l],
                model_value,
                guide_value,
                observations_used: obs_used as usize,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    const BLOCK_SIZES: [usize; 4] = [1, 7, 64, 256];

    fn executor(model: &str, guide: &str, obs: Vec<Sample>) -> JointExecutor {
        JointExecutor::new(
            &parse_program(model).expect("model parses"),
            &parse_program(guide).expect("guide parses"),
            obs,
        )
    }

    /// Runs `n` particles through the scalar path and through the block
    /// path at several block sizes, asserting bit-identical results
    /// (including traces and error equivalence).
    fn assert_block_matches_scalar(exec: &JointExecutor, spec: &JointSpec, n: usize, seed: u64) {
        let master = Pcg32::seed_from_u64(seed);
        let scalar: Vec<Result<JointResult, RuntimeError>> = (0..n)
            .map(|i| {
                let mut rng = master.split(i as u64);
                exec.run(spec, LatentSource::FromGuide, &mut rng)
            })
            .collect();
        for &block in &BLOCK_SIZES {
            let mut scratch = JointScratch::new();
            let mut out = Vec::new();
            let mut failed = None;
            let mut start = 0usize;
            while start < n {
                let len = block.min(n - start);
                match exec.run_block_with_scratch(
                    spec,
                    &master,
                    start as u64,
                    len,
                    &mut scratch,
                    &mut out,
                ) {
                    Ok(()) => {}
                    Err(e) => {
                        failed = Some((start, e));
                        break;
                    }
                }
                start += len;
            }
            match failed {
                None => {
                    assert_eq!(out.len(), n, "block size {block}");
                    for (i, (b, s)) in out.iter().zip(&scalar).enumerate() {
                        let s = s.as_ref().unwrap_or_else(|e| {
                            panic!("scalar particle {i} failed ({e}) but block {block} succeeded")
                        });
                        assert_eq!(
                            b.log_guide.to_bits(),
                            s.log_guide.to_bits(),
                            "log_guide lane {i} block {block}"
                        );
                        assert_eq!(
                            b.log_model.to_bits(),
                            s.log_model.to_bits(),
                            "log_model lane {i} block {block}"
                        );
                        assert_eq!(b.model_value, s.model_value, "model_value lane {i}");
                        assert_eq!(b.guide_value, s.guide_value, "guide_value lane {i}");
                        assert_eq!(
                            b.observations_used, s.observations_used,
                            "observations_used lane {i}"
                        );
                        assert_eq!(
                            b.latent.messages(),
                            s.latent.messages(),
                            "trace lane {i} block {block}"
                        );
                    }
                }
                Some((block_start, err)) => {
                    // The block driver reports the lowest failing lane of
                    // the failing block; the preceding lanes must match.
                    let first_err = scalar[block_start..]
                        .iter()
                        .find_map(|r| r.as_ref().err())
                        .expect("block failed but every scalar particle succeeded");
                    assert_eq!(&err, first_err, "error equivalence at block {block}");
                }
            }
            // Recycle the traces: the pool discipline must keep the next
            // batch identical.
            for r in out {
                scratch.recycle(r.latent);
            }
        }
    }

    const FIG5_MODEL: &str = r#"
        proc Model() : real consume latent provide obs {
          let v <- sample recv latent (Gamma(2.0, 1.0));
          if send latent (v < 2.0) {
            let _ <- sample send obs (Normal(-1.0, 1.0));
            return v
          } else {
            let m <- sample recv latent (Beta(3.0, 1.0));
            let _ <- sample send obs (Normal(m, 1.0));
            return v
          }
        }
    "#;
    const FIG5_GUIDE: &str = r#"
        proc Guide() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            let m <- sample send latent (Unif);
            return ()
          }
        }
    "#;

    #[test]
    fn fig5_divergent_branch_is_bit_identical() {
        let exec = executor(FIG5_MODEL, FIG5_GUIDE, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide");
        assert_block_matches_scalar(&exec, &spec, 300, 0xB10C);
    }

    #[test]
    fn straight_line_normal_model_is_bit_identical() {
        let model = r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Normal(0.0, 1.0));
              let _ <- sample send obs (Normal(x, 0.5));
              let _ <- sample send obs (Normal(x, 2.0));
              return x
            }
        "#;
        let guide = r#"
            proc Guide() provide latent {
              let x <- sample send latent (Normal(0.5, 1.5));
              return ()
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(1.0), Sample::Real(-0.5)]);
        let spec = JointSpec::new("Model", "Guide");
        assert_block_matches_scalar(&exec, &spec, 300, 0xFEED);
    }

    #[test]
    fn model_provided_latents_are_bit_identical() {
        // The model sends on the latent channel (ValC messages).
        let model = r#"
            proc Model() : real consume latent provide obs {
              let x <- sample send latent (Normal(0.0, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              return x
            }
        "#;
        let guide = r#"
            proc Guide() consume latent {
              let x <- sample recv latent (Normal(0.0, 2.0));
              return ()
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(0.3)]);
        let spec = JointSpec::new("Model", "Guide");
        assert_block_matches_scalar(&exec, &spec, 200, 0xC0FFEE);
    }

    #[test]
    fn unbounded_recursion_bails_to_scalar_and_matches() {
        // Data-dependent recursion depth: the planner's fork budget blows
        // up, the plan caches a failure, and every block takes the scalar
        // path — still bit-identical.
        let model = r#"
            proc GeoModel() : real consume latent provide obs {
              let n <- call GeoStep(0.5);
              let _ <- sample send obs (Normal(n, 1.0));
              return n
            }
            proc GeoStep(p : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < p) {
                return 0.0
              } else {
                let rest <- call GeoStep(p);
                return rest + 1.0
              }
            }
        "#;
        let guide = r#"
            proc GeoGuide() provide latent {
              let _ <- call GeoStepGuide();
              return ()
            }
            proc GeoStepGuide() provide latent {
              let u <- sample send latent (Unif);
              if recv latent {
                return ()
              } else {
                let _ <- call GeoStepGuide();
                return ()
              }
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(0.0)]);
        let spec = JointSpec::new("GeoModel", "GeoGuide");
        assert!(
            BlockPlan::compile(&exec, &spec).is_err(),
            "recursive model should not vectorise"
        );
        assert_block_matches_scalar(&exec, &spec, 200, 0x5EED);
    }

    #[test]
    fn observation_count_mismatch_matches_scalar_error() {
        // Model asks for two observations, only one is supplied: the plan
        // path ends in Op::Fail and the scalar rerun reports the exact
        // scalar error.
        let model = r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Normal(0.0, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              return x
            }
        "#;
        let guide = r#"
            proc Guide() provide latent {
              let x <- sample send latent (Normal(0.0, 1.0));
              return ()
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        assert_block_matches_scalar(&exec, &spec, 64, 0xE5507);
    }

    #[test]
    fn carrier_mismatch_scores_neg_infinity_like_scalar() {
        // The guide proposes from a Poisson (Nat carrier) where the model
        // expects a Gamma (Real carrier): every particle gets -inf model
        // weight, identically on both paths.
        let model = r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Gamma(2.0, 1.0));
              let _ <- sample send obs (Normal(0.0, 1.0));
              return 0.0
            }
        "#;
        let guide = r#"
            proc Guide() provide latent {
              let x <- sample send latent (Pois(3.0));
              return ()
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(0.1)]);
        let spec = JointSpec::new("Model", "Guide");
        assert_block_matches_scalar(&exec, &spec, 100, 0xABCD);
        let master = Pcg32::seed_from_u64(0xABCD);
        let mut scratch = JointScratch::new();
        let mut out = Vec::new();
        exec.run_block_with_scratch(&spec, &master, 0, 8, &mut scratch, &mut out)
            .expect("runs");
        assert!(out
            .iter()
            .all(|r| r.log_model == f64::NEG_INFINITY && r.log_guide.is_finite()));
    }

    #[test]
    fn gmm_shaped_model_compiles_to_a_plan() {
        // If-expressions inside distribution parameters are per-lane
        // evaluations, not forks: the plan must compile.
        let model = r#"
            proc Model() : unit consume latent provide obs {
              let mu <- sample recv latent (Normal(0.0, 3.0));
              let z <- sample recv latent (Ber(0.5));
              let _ <- sample send obs (Normal(if z then mu else 0.0 - mu, 1.0));
              return ()
            }
        "#;
        let guide = r#"
            proc Guide() provide latent {
              let mu <- sample send latent (Normal(0.0, 2.0));
              let z <- sample send latent (Ber(0.5));
              return ()
            }
        "#;
        let exec = executor(model, guide, vec![Sample::Real(1.4)]);
        let spec = JointSpec::new("Model", "Guide");
        let plan = BlockPlan::compile(&exec, &spec).expect("gmm shape vectorises");
        assert!(
            !plan
                .ops
                .iter()
                .any(|op| matches!(op, Op::Fork { .. } | Op::Fail)),
            "gmm shape must be straight-line"
        );
        assert_block_matches_scalar(&exec, &spec, 300, 0x96);
    }

    #[test]
    fn plan_cache_is_reused_and_invalidated() {
        let model = r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Normal(0.0; 1.0));
              let _ <- sample send obs (Normal(x; 1.0));
              return x
            }
        "#;
        let guide = r#"
            proc Guide() provide latent {
              let x <- sample send latent (Normal(0.0; 1.0));
              return ()
            }
        "#;
        let exec_a = executor(model, guide, vec![Sample::Real(1.0)]);
        let exec_b = executor(model, guide, vec![Sample::Real(2.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let master = Pcg32::seed_from_u64(7);
        let mut scratch = JointScratch::new();
        let mut out = Vec::new();
        exec_a
            .run_block_with_scratch(&spec, &master, 0, 4, &mut scratch, &mut out)
            .expect("runs");
        assert!(scratch
            .block
            .cache
            .as_ref()
            .unwrap()
            .0
            .matches(&exec_a, &spec));
        // A different executor (different observations) misses and recompiles.
        exec_b
            .run_block_with_scratch(&spec, &master, 0, 4, &mut scratch, &mut out)
            .expect("runs");
        assert!(scratch
            .block
            .cache
            .as_ref()
            .unwrap()
            .0
            .matches(&exec_b, &spec));
        assert!(!scratch
            .block
            .cache
            .as_ref()
            .unwrap()
            .0
            .matches(&exec_a, &spec));
    }
}
