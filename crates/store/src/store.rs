//! The artifact store: an in-memory index over optionally-persistent,
//! crash-safe artifact files.
//!
//! # Persistence and crash safety
//!
//! With a directory configured ([`Store::open`]), each artifact is one
//! file `<id>.json` written atomically: the bytes go to `<id>.json.tmp`
//! first, then a `rename` publishes them.  A crash mid-write leaves only
//! a `.tmp` file, which the boot scan ignores (and a later successful
//! write of the same artifact overwrites).  Malformed or truncated
//! `a-*.json` files are *skipped with a counted warning* at boot — a
//! corrupt checkpoint must never prevent the server from starting.
//!
//! # Bounded GC
//!
//! The index holds at most `capacity` artifacts.  Inserting beyond
//! capacity evicts the least-recently-used artifact (ties broken by id
//! for determinism) and deletes its file, using the same tick-based
//! scan-on-evict pattern as the serving registry: `get` refreshes an
//! artifact's tick, so warm-path artifacts survive pressure from one-off
//! fits.

use crate::artifact::{Artifact, ArtifactError};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default maximum number of artifacts the store retains.
pub const DEFAULT_STORE_CAPACITY: usize = 256;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O failed; the operation names what it was doing.
    Io {
        /// What the store was doing when the I/O failed.
        what: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The artifact could not be serialised (a non-finite float reached
    /// the encoder).
    Encode,
    /// The artifact bytes on disk could not be decoded.
    Artifact(ArtifactError),
}

impl StoreError {
    /// Stable machine-readable code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "store.io",
            StoreError::Encode => "store.encode",
            StoreError::Artifact(e) => e.code(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, source } => write!(f, "{}: {what}: {source}", self.code()),
            StoreError::Encode => write!(
                f,
                "{}: artifact contains a non-finite number and cannot be encoded",
                self.code()
            ),
            StoreError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

struct Slot {
    artifact: Arc<Artifact>,
    bytes: u64,
    last_used: u64,
}

struct Index {
    slots: HashMap<String, Slot>,
    tick: u64,
}

/// The artifact store (see module docs).  Cheap to share behind an `Arc`;
/// all methods take `&self`.
pub struct Store {
    dir: Option<PathBuf>,
    capacity: usize,
    index: Mutex<Index>,
    warm_starts: AtomicU64,
    evictions: AtomicU64,
    skipped_at_boot: u64,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Creates a purely in-memory store (no persistence) with the given
    /// capacity.
    pub fn in_memory(capacity: usize) -> Store {
        Store {
            dir: None,
            capacity: capacity.max(1),
            index: Mutex::new(Index {
                slots: HashMap::new(),
                tick: 0,
            }),
            warm_starts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            skipped_at_boot: 0,
        }
    }

    /// Opens (creating if needed) a persistent store rooted at `dir` and
    /// warm-starts the index from the artifacts already on disk.
    ///
    /// Files are scanned in filename order so boot ticks — and therefore
    /// later LRU decisions — are deterministic.  `.tmp` leftovers from an
    /// interrupted write and files that fail to decode are skipped, and
    /// [`Store::skipped_at_boot`] counts them; a corrupt file never stops
    /// boot.  If disk holds more than `capacity` artifacts, the excess
    /// (oldest filenames first) is evicted immediately.
    pub fn open(dir: &Path, capacity: usize) -> Result<Store, StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            what: "creating the store directory",
            source: e,
        })?;
        let mut names: Vec<PathBuf> = fs::read_dir(dir)
            .map_err(|e| StoreError::Io {
                what: "scanning the store directory",
                source: e,
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("a-") && n.ends_with(".json"))
            })
            .collect();
        names.sort();
        let mut skipped = 0u64;
        let mut store = Store {
            dir: Some(dir.to_path_buf()),
            capacity: capacity.max(1),
            index: Mutex::new(Index {
                slots: HashMap::new(),
                tick: 0,
            }),
            warm_starts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            skipped_at_boot: 0,
        };
        for path in names {
            let Ok(bytes) = fs::read(&path) else {
                skipped += 1;
                continue;
            };
            match Artifact::from_bytes(&bytes) {
                Ok(artifact) => {
                    // Trust the content hash over the filename: a renamed
                    // file re-registers under its true id.
                    store.insert_unlocked(Arc::new(artifact), bytes.len() as u64);
                }
                Err(_) => skipped += 1,
            }
        }
        store.skipped_at_boot = skipped;
        Ok(store)
    }

    fn insert_unlocked(&self, artifact: Arc<Artifact>, bytes: u64) {
        let mut index = self.index.lock().expect("store poisoned");
        index.tick += 1;
        let tick = index.tick;
        index.slots.insert(
            artifact.id.clone(),
            Slot {
                artifact,
                bytes,
                last_used: tick,
            },
        );
        self.evict_over_capacity(&mut index);
    }

    fn evict_over_capacity(&self, index: &mut Index) {
        while index.slots.len() > self.capacity {
            let victim = index
                .slots
                .iter()
                .min_by_key(|(id, slot)| (slot.last_used, (*id).clone()))
                .map(|(id, _)| id.clone())
                .expect("non-empty over capacity");
            index.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(dir) = &self.dir {
                let _ = fs::remove_file(dir.join(format!("{victim}.json")));
            }
        }
    }

    /// Persists `artifact`, returning `(id, created)`.  Re-putting an
    /// artifact that is already indexed is idempotent (`created` =
    /// `false`, no disk write).  With a directory configured the bytes go
    /// through the atomic `.tmp` → rename protocol; an I/O failure leaves
    /// the index unchanged.
    pub fn put(&self, artifact: Artifact) -> Result<(String, bool), StoreError> {
        let id = artifact.id.clone();
        {
            let mut index = self.index.lock().expect("store poisoned");
            index.tick += 1;
            let tick = index.tick;
            if let Some(slot) = index.slots.get_mut(&id) {
                slot.last_used = tick;
                return Ok((id, false));
            }
        }
        let bytes = artifact.to_bytes().ok_or(StoreError::Encode)?;
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("{id}.json.tmp"));
            let final_path = dir.join(format!("{id}.json"));
            fs::write(&tmp, &bytes).map_err(|e| StoreError::Io {
                what: "writing the artifact file",
                source: e,
            })?;
            fs::rename(&tmp, &final_path).map_err(|e| StoreError::Io {
                what: "publishing the artifact file",
                source: e,
            })?;
        }
        self.insert_unlocked(Arc::new(artifact), bytes.len() as u64);
        Ok((id, true))
    }

    /// Looks up an artifact by id, refreshing its LRU position.
    pub fn get(&self, id: &str) -> Option<Arc<Artifact>> {
        let mut index = self.index.lock().expect("store poisoned");
        index.tick += 1;
        let tick = index.tick;
        let slot = index.slots.get_mut(id)?;
        slot.last_used = tick;
        Some(Arc::clone(&slot.artifact))
    }

    /// Deletes an artifact (index and file).  Returns whether it existed.
    pub fn delete(&self, id: &str) -> bool {
        let existed = {
            let mut index = self.index.lock().expect("store poisoned");
            index.slots.remove(id).is_some()
        };
        if existed {
            if let Some(dir) = &self.dir {
                let _ = fs::remove_file(dir.join(format!("{id}.json")));
            }
        }
        existed
    }

    /// All indexed artifacts, sorted by id for deterministic listings.
    pub fn list(&self) -> Vec<Arc<Artifact>> {
        let index = self.index.lock().expect("store poisoned");
        let mut all: Vec<Arc<Artifact>> = index
            .slots
            .values()
            .map(|slot| Arc::clone(&slot.artifact))
            .collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Number of artifacts currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().expect("store poisoned").slots.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialised bytes of the indexed artifacts.
    pub fn bytes(&self) -> u64 {
        let index = self.index.lock().expect("store poisoned");
        index.slots.values().map(|slot| slot.bytes).sum()
    }

    /// Number of indexed artifacts belonging to `model_id`.
    pub fn count_for_model(&self, model_id: &str) -> u64 {
        let index = self.index.lock().expect("store poisoned");
        index
            .slots
            .values()
            .filter(|slot| slot.artifact.model_id == model_id)
            .count() as u64
    }

    /// Records one artifact-warm query (a fit skipped thanks to the
    /// store).
    pub fn record_warm_start(&self) {
        self.warm_starts.fetch_add(1, Ordering::Relaxed);
    }

    /// Artifact-warm queries served so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Artifacts evicted by capacity GC so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Files skipped (`.tmp` leftovers excluded) by the boot scan because
    /// they failed to read or decode.
    pub fn skipped_at_boot(&self) -> u64 {
        self.skipped_at_boot
    }

    /// The persistence directory, when configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The store's artifact capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{compute_id, FitConfig, FitParam, ObsLit, ARTIFACT_FORMAT_VERSION};
    use std::sync::atomic::AtomicU32;

    fn tempdir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ppl-store-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn artifact(seed: u64) -> Artifact {
        let schema = vec![FitParam {
            name: "mu".into(),
            init: 0.0,
            positive: false,
        }];
        let config = FitConfig {
            iterations: 10,
            samples_per_iteration: 4,
            learning_rate: 0.05,
            fd_epsilon: 1e-4,
        };
        let observations = vec![ObsLit::Real(2.5)];
        let id = compute_id(
            "m-0011223344556677",
            &observations,
            &[],
            &schema,
            &config,
            seed,
        );
        Artifact {
            version: ARTIFACT_FORMAT_VERSION,
            id,
            model_id: "m-0011223344556677".into(),
            seed,
            observations,
            model_args: vec![],
            schema,
            config,
            params: vec![2.25 + seed as f64],
            fit_iterations: 10,
            elbo_tail: vec![-1.5],
            rng_state: 7 + seed,
            rng_inc: 0xda3e_39cb_94b9_5bdb,
        }
    }

    #[test]
    fn put_is_idempotent_and_persists_canonical_bytes() {
        let dir = tempdir("put");
        let store = Store::open(&dir, 8).expect("open");
        let a = artifact(1);
        let (id, created) = store.put(a.clone()).expect("put");
        assert!(created);
        let (id2, created2) = store.put(a.clone()).expect("re-put");
        assert!(!created2);
        assert_eq!(id, id2);
        assert_eq!(store.len(), 1);
        // The file on disk holds exactly the canonical encoding.
        let on_disk = fs::read(dir.join(format!("{id}.json"))).expect("file");
        assert_eq!(on_disk, a.to_bytes().expect("finite"));
        assert_eq!(store.bytes(), on_disk.len() as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn boot_scan_restores_index_and_skips_tmp_and_malformed_files() {
        let dir = tempdir("boot");
        {
            let store = Store::open(&dir, 8).expect("open");
            store.put(artifact(1)).expect("put");
            store.put(artifact(2)).expect("put");
        }
        // Simulate a crash mid-write plus two corrupt files.
        fs::write(dir.join("a-0000000000000000.json.tmp"), b"{\"version\"").expect("tmp");
        fs::write(dir.join("a-1111111111111111.json"), b"not json at all").expect("bad");
        let renamed = artifact(3).to_bytes().expect("finite");
        // Valid record, wrong filename-id binding: content hash disagrees
        // after tampering.
        let tampered = String::from_utf8(renamed)
            .expect("utf8")
            .replace("\"seed\":3", "\"seed\":4");
        fs::write(dir.join("a-2222222222222222.json"), tampered).expect("tampered");

        let store = Store::open(&dir, 8).expect("reopen");
        assert_eq!(store.len(), 2, "only the two valid artifacts load");
        assert_eq!(store.skipped_at_boot(), 2, ".tmp is ignored, not counted");
        assert!(store.get(&artifact(1).id).is_some());
        assert!(store.get(&artifact(2).id).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_gc_evicts_lru_and_removes_files() {
        let dir = tempdir("gc");
        let store = Store::open(&dir, 2).expect("open");
        let (id1, _) = store.put(artifact(1)).expect("put");
        let (id2, _) = store.put(artifact(2)).expect("put");
        // Refresh artifact 1 so artifact 2 is the LRU victim.
        assert!(store.get(&id1).is_some());
        let (id3, _) = store.put(artifact(3)).expect("put");
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.get(&id2).is_none(), "LRU artifact evicted");
        assert!(!dir.join(format!("{id2}.json")).exists(), "file removed");
        assert!(store.get(&id1).is_some());
        assert!(store.get(&id3).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_and_listing_and_model_counts() {
        let store = Store::in_memory(8);
        let (id1, _) = store.put(artifact(1)).expect("put");
        store.put(artifact(2)).expect("put");
        assert_eq!(store.count_for_model("m-0011223344556677"), 2);
        assert_eq!(store.count_for_model("m-ffffffffffffffff"), 0);
        let listed = store.list();
        assert_eq!(listed.len(), 2);
        assert!(listed.windows(2).all(|w| w[0].id < w[1].id), "sorted by id");
        assert!(store.delete(&id1));
        assert!(!store.delete(&id1), "second delete reports absence");
        assert_eq!(store.len(), 1);
    }
}
