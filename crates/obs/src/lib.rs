//! **ppl-obs** — the flight recorder: spans, structured logs, and request
//! traces for the serving stack.  Plain `std`, zero dependencies, like
//! everything else in the workspace.
//!
//! Three pieces:
//!
//! * [`span`] — a fixed vocabulary of request [`Phase`]s and an RAII
//!   [`Span`] timer.  Spans feed the *ambient* trace of the current
//!   thread; when no trace is active, [`Span::enter`] is inert — it reads
//!   no clock and allocates nothing, which is what lets the engine hot
//!   loop carry span calls for free when tracing is off (proved by the
//!   repository's `alloc_budget` test).
//! * [`trace`] — the [`Recorder`]: per-(route, phase) lock-free latency
//!   histograms, a bounded ring buffer of the last N completed request
//!   traces (behind `GET /v1/trace`), and engine-quality gauges (minimum
//!   ESS seen, worst acceptance rate).
//! * [`log`] — leveled structured logging: one JSON object per line on
//!   stderr, monotonic timestamps, rate-limited per (level, code) so an
//!   overload storm cannot turn the logger into the bottleneck.
//!
//! # Determinism
//!
//! Nothing in this crate touches an RNG or the inference engines' state.
//! Trace ids are derived from a hash of the request bytes plus a process
//! epoch counter ([`trace::request_hash`], [`Recorder::begin`]), so
//! enabling or disabling tracing can never perturb a bit-deterministic
//! result — the serving layer's byte-identity guarantees hold with the
//! recorder on or off.

pub mod log;
pub mod span;
pub mod trace;

pub use span::{Phase, Span, NUM_PHASES, PHASES};
pub use trace::{CompletedTrace, PhaseStat, Recorder, RoutePhaseStats};
