//! The validated query layer: the front door for running inference.
//!
//! A [`Query`] packages everything one posterior computation needs — the
//! session's compiled programs, an observation vector, an RNG seed, and a
//! thread count — and is only obtainable through [`Session::query`], whose
//! [`QueryBuilder::build`] step validates the observations against the
//! model's *inferred observation protocol* (count, carrier types, branch
//! feasibility) **before any particle runs**.  This extends the paper's
//! static-certification discipline from the guide to the data: a malformed
//! request is rejected with a [`QueryError`] naming the offending position
//! and the expected protocol, instead of surfacing as a runtime
//! `ObservationMismatch` halfway through a particle sweep.
//!
//! The algorithm is chosen by a typed [`Method`] value, and every engine's
//! result comes back as a [`PosteriorResult`] implementing the common
//! [`Posterior`] trait, so importance sampling, Metropolis–Hastings, and
//! variational inference are interchangeable behind one interface.
//!
//! Queries are self-contained and cheap (three `Arc` clones plus the
//! observation vector), `Send + Sync`, and deterministic: a query's result
//! is a pure function of `(query, method)` — randomness comes only from
//! the query's own seed.  [`Session::run_batch`] exploits this to serve
//! many observation sets through one compiled model, in parallel, with
//! results bit-identical to running each query alone at any thread count.
//!
//! ```
//! use guide_ppl::{Method, Posterior, Session};
//! use ppl_dist::Sample;
//!
//! let session = Session::from_benchmark("normal-normal")?;
//! let posterior = session
//!     .query()
//!     .observe(vec![Sample::Real(1.0)])
//!     .seed(7)
//!     .run(&Method::Importance { particles: 2_000 })?;
//! let mean = posterior.mean_of_sample(0).unwrap();
//! assert!((mean - 0.5).abs() < 0.2);
//! # Ok::<(), guide_ppl::SessionError>(())
//! ```

use crate::{render_protocol, Session, SessionError};
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_inference::{
    Draw, Engine, ImportanceResult, ImportanceSampler, IndependenceMh, McmcResult, ParamSpec,
    Posterior, VariationalInference, ViConfig, ViPosterior, ViResult, DEFAULT_BLOCK,
};
use ppl_runtime::{CancelToken, JointExecutor, JointSpec};
use ppl_semantics::value::Value;
use ppl_store::{Artifact, ObsLit};
use ppl_types::obs::{validate_observations, ObsValue, ObsViolation};
use std::fmt;

/// Particles drawn from the fitted guide after a [`Method::Vi`] run, so the
/// VI result exposes posterior draws (and an evidence estimate at the
/// optimum) like the other engines.
pub const VI_POSTERIOR_PARTICLES: usize = 2_000;

/// A request rejected by query validation — raised *before* any joint
/// execution runs.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The observation vector cannot be produced by the model's inferred
    /// observation protocol.
    Observations {
        /// The precise violation, naming the offending position.
        violation: ObsViolation,
        /// Number of observations supplied.
        supplied: usize,
        /// The expected observation protocol, rendered.
        protocol: String,
    },
    /// Observations were supplied, but the model provides no observation
    /// channel.
    NoObservationChannel {
        /// Number of observations supplied.
        supplied: usize,
    },
    /// The model's consumed channel and the guide's provided channel have
    /// different names, so no joint rendezvous is possible.
    ChannelMismatch {
        /// The channel the model consumes.
        model_consumes: String,
        /// The channel the guide provides.
        guide_provides: String,
    },
    /// Wrong number of model arguments.
    ModelArity {
        /// Parameters the model procedure declares.
        expected: usize,
        /// Arguments supplied.
        supplied: usize,
    },
    /// Wrong number of guide arguments for the chosen method (for
    /// [`Method::Vi`], the number of [`ParamSpec`]s).
    GuideArity {
        /// Parameters the guide procedure declares.
        expected: usize,
        /// Arguments (or variational parameters) supplied.
        supplied: usize,
    },
    /// A structurally invalid method configuration (zero particles,
    /// burn-in at least as long as the chain, …).
    InvalidMethod {
        /// Human-readable description.
        reason: String,
    },
}

impl QueryError {
    /// The error's stable machine-readable code.
    ///
    /// Codes are part of the serving wire format (HTTP error bodies carry
    /// them verbatim), so existing codes never change meaning.  For
    /// [`QueryError::Observations`] the code is the underlying
    /// [`ObsViolation::code`] (e.g. `obs.carrier`), so clients see the
    /// most specific diagnostic.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Observations { violation, .. } => violation.code(),
            QueryError::NoObservationChannel { .. } => "obs.no_channel",
            QueryError::ChannelMismatch { .. } => "channel.rendezvous",
            QueryError::ModelArity { .. } => "model.arity",
            QueryError::GuideArity { .. } => "guide.arity",
            QueryError::InvalidMethod { .. } => "method.invalid",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The embedded violation of `Observations` renders its own (more
        // specific) code, so only the other variants prefix theirs here.
        if !matches!(self, QueryError::Observations { .. }) {
            write!(f, "{}: ", self.code())?;
        }
        match self {
            QueryError::Observations {
                violation,
                supplied,
                protocol,
            } => write!(
                f,
                "invalid observations ({supplied} supplied): {violation}; the model's observation protocol is {protocol}"
            ),
            QueryError::NoObservationChannel { supplied } => write!(
                f,
                "{supplied} observation(s) supplied, but the model provides no observation channel"
            ),
            QueryError::ChannelMismatch {
                model_consumes,
                guide_provides,
            } => write!(
                f,
                "the model consumes channel '{model_consumes}' but the guide provides channel '{guide_provides}'"
            ),
            QueryError::ModelArity { expected, supplied } => write!(
                f,
                "the model procedure takes {expected} argument(s), but {supplied} were supplied"
            ),
            QueryError::GuideArity { expected, supplied } => write!(
                f,
                "the guide procedure takes {expected} argument(s), but {supplied} were supplied"
            ),
            QueryError::InvalidMethod { reason } => write!(f, "invalid method: {reason}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The inference algorithm to run on a [`Query`].
#[derive(Debug, Clone)]
pub enum Method {
    /// Importance sampling with `particles` particles.
    Importance {
        /// Number of particles to draw.
        particles: usize,
    },
    /// Independence Metropolis–Hastings.
    Mh {
        /// Total iterations (including burn-in).
        iterations: usize,
        /// Initial states to discard.
        burn_in: usize,
    },
    /// Variational inference, followed by posterior draws from the fitted
    /// guide (an importance-sampling pass using the fitted guide as the
    /// proposal).
    Vi {
        /// The variational parameters to optimise.
        params: Vec<ParamSpec>,
        /// Engine configuration.
        config: ViConfig,
        /// Number of particles the fitted-guide draw pass runs; `None`
        /// uses [`VI_POSTERIOR_PARTICLES`].  Exposed so callers (e.g. the
        /// serving wire protocol) can trade draw fidelity for latency.
        draw_particles: Option<usize>,
    },
}

impl Method {
    /// Variational inference with the default
    /// [`VI_POSTERIOR_PARTICLES`]-particle fitted-guide draw pass — the
    /// pre-`draw_particles` behaviour.
    pub fn vi(params: Vec<ParamSpec>, config: ViConfig) -> Method {
        Method::Vi {
            params,
            config,
            draw_particles: None,
        }
    }

    /// The algorithm's abbreviation (`"IS"`, `"MCMC"`, `"VI"`).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Importance { .. } => "IS",
            Method::Mh { .. } => "MCMC",
            Method::Vi { .. } => "VI",
        }
    }
}

/// The posterior produced by running a [`Query`] — one of the three
/// engines' results behind the common [`Posterior`] interface.
#[derive(Debug, Clone)]
pub enum PosteriorResult {
    /// An importance-sampling posterior.
    Importance(ImportanceResult),
    /// A Metropolis–Hastings posterior.
    Mcmc(McmcResult),
    /// A variational-inference posterior (fit + fitted-guide draws).
    Vi(ViPosterior),
}

impl PosteriorResult {
    /// The importance-sampling result, if that engine produced this.
    pub fn as_importance(&self) -> Option<&ImportanceResult> {
        match self {
            PosteriorResult::Importance(r) => Some(r),
            _ => None,
        }
    }

    /// The MCMC result, if that engine produced this.
    pub fn as_mcmc(&self) -> Option<&McmcResult> {
        match self {
            PosteriorResult::Mcmc(r) => Some(r),
            _ => None,
        }
    }

    /// The VI posterior, if that engine produced this.
    pub fn as_vi(&self) -> Option<&ViPosterior> {
        match self {
            PosteriorResult::Vi(r) => Some(r),
            _ => None,
        }
    }

    fn inner(&self) -> &dyn Posterior {
        match self {
            PosteriorResult::Importance(r) => r,
            PosteriorResult::Mcmc(r) => r,
            PosteriorResult::Vi(r) => r,
        }
    }
}

impl Posterior for PosteriorResult {
    fn method(&self) -> &'static str {
        self.inner().method()
    }

    fn num_draws(&self) -> usize {
        self.inner().num_draws()
    }

    fn for_each_draw(&self, f: &mut dyn FnMut(Draw<'_>)) {
        self.inner().for_each_draw(f);
    }

    fn ess(&self) -> f64 {
        self.inner().ess()
    }

    fn log_evidence(&self) -> Option<f64> {
        self.inner().log_evidence()
    }

    fn diagnostics(&self) -> Vec<(String, f64)> {
        self.inner().diagnostics()
    }
}

/// Builder for a validated [`Query`]; obtained from [`Session::query`].
#[derive(Debug, Clone)]
pub struct QueryBuilder<'s> {
    session: &'s Session,
    observations: Vec<Sample>,
    seed: u64,
    threads: usize,
    block: usize,
    model_args: Vec<Value>,
    guide_args: Vec<Value>,
    cancel: CancelToken,
}

impl<'s> QueryBuilder<'s> {
    pub(crate) fn new(session: &'s Session) -> Self {
        QueryBuilder {
            session,
            observations: Vec::new(),
            seed: 0,
            threads: 1,
            block: DEFAULT_BLOCK,
            model_args: Vec::new(),
            guide_args: Vec::new(),
            cancel: CancelToken::none(),
        }
    }

    /// Sets the observation vector to condition on (replacing any previous
    /// one).
    pub fn observe(mut self, observations: impl IntoIterator<Item = Sample>) -> Self {
        self.observations = observations.into_iter().collect();
        self
    }

    /// Sets the RNG seed (default 0).  Two queries with equal
    /// configuration and equal seeds produce bit-identical posteriors.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the engine's worker-thread count (default 1).  Per-particle
    /// RNG substreams make results bit-identical for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the vectorised-execution block size for the particle-sweep
    /// engines (default [`DEFAULT_BLOCK`]).  Like the thread count, this is
    /// purely a performance knob: per-lane RNG substreams make results
    /// bit-identical at every block size.
    pub fn block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// Sets the model procedure's arguments (default: none).
    pub fn model_args(mut self, args: Vec<Value>) -> Self {
        self.model_args = args;
        self
    }

    /// Sets the guide procedure's arguments (default: none).  Ignored by
    /// [`Method::Vi`], which supplies the variational parameters itself.
    pub fn guide_args(mut self, args: Vec<Value>) -> Self {
        self.guide_args = args;
        self
    }

    /// Installs a cancellation/deadline token (default: a
    /// never-cancelling [`CancelToken::none`]).  The engines poll it at
    /// every particle block, MH proposal, and VI optimisation step; an
    /// expired or raised token aborts the run with
    /// [`SessionError::Runtime`] carrying
    /// [`RuntimeError::DeadlineExceeded`](ppl_runtime::RuntimeError::DeadlineExceeded)
    /// or [`RuntimeError::Cancelled`](ppl_runtime::RuntimeError::Cancelled).
    ///
    /// Like the thread count and block size, the token never changes a
    /// *successful* result: a run that completes before its deadline is
    /// bit-identical to the same run without one.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Validates the request and produces a reusable [`Query`].
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] when the observations do not match the
    /// model's inferred observation protocol (count, carrier type, branch
    /// feasibility), when observations are supplied to a model without an
    /// observation channel, when the model/guide channel names cannot
    /// rendezvous, or when the model argument count is wrong.  Nothing is
    /// executed in any of these cases.
    pub fn build(self) -> Result<Query, QueryError> {
        let session = self.session;
        let model_meta = session
            .model_compiled
            .proc_named(&session.model_proc)
            .expect("session construction verified the model procedure");
        let guide_meta = session
            .guide_compiled
            .proc_named(&session.guide_proc)
            .expect("session construction verified the guide procedure");

        // Channel rendezvous: the joint executor pairs operations by
        // channel name, so the model's consumed channel must be the one
        // the guide provides.
        let latent_chan = model_meta
            .consumes
            .expect("session construction verified the model consumes a channel");
        let guide_chan = guide_meta
            .provides
            .expect("session construction verified the guide provides a channel");
        if latent_chan != guide_chan {
            return Err(QueryError::ChannelMismatch {
                model_consumes: latent_chan.as_str().to_string(),
                guide_provides: guide_chan.as_str().to_string(),
            });
        }

        // Observation validation against the inferred obs protocol.
        match &session.compatibility.model_obs {
            None => {
                if !self.observations.is_empty() {
                    return Err(QueryError::NoObservationChannel {
                        supplied: self.observations.len(),
                    });
                }
            }
            Some(protocol) => {
                let values: Vec<ObsValue> = self.observations.iter().map(sample_to_obs).collect();
                validate_observations(&session.model_env.defs, protocol, &values).map_err(
                    |violation| QueryError::Observations {
                        violation,
                        supplied: self.observations.len(),
                        protocol: render_protocol(protocol, &session.model_env),
                    },
                )?;
            }
        }

        if self.model_args.len() != model_meta.params.len() {
            return Err(QueryError::ModelArity {
                expected: model_meta.params.len(),
                supplied: self.model_args.len(),
            });
        }

        let obs_chan = model_meta.provides.unwrap_or_else(|| "obs".into());
        let spec = JointSpec {
            model_proc: session.model_proc,
            model_args: self.model_args,
            guide_proc: session.guide_proc,
            guide_args: self.guide_args,
            latent_chan,
            obs_chan,
        };
        let mut executor = session.executor(self.observations);
        executor.set_cancel_token(self.cancel);
        Ok(Query {
            executor,
            spec,
            seed: self.seed,
            threads: self.threads,
            block: self.block,
            guide_arity: guide_meta.params.len(),
        })
    }

    /// Builds the query and runs it in one step.
    ///
    /// # Errors
    ///
    /// Validation failures surface as [`SessionError::Query`]; engine
    /// failures as [`SessionError::Runtime`].
    pub fn run(self, method: &Method) -> Result<PosteriorResult, SessionError> {
        self.build()?.run(method)
    }

    /// Builds a query configured from a fitted-guide [`Artifact`]: the
    /// artifact's seed, observations, and model arguments replace whatever
    /// the builder held, so [`Query::run_vi_warm`] replays the recorded fit
    /// bit-exactly.  Thread count and block size stay caller-chosen — they
    /// are perf knobs and never change results.
    ///
    /// # Errors
    ///
    /// Everything [`QueryBuilder::build`] rejects, plus
    /// [`QueryError::GuideArity`] when the artifact's parameter schema does
    /// not match the guide's arity (an artifact from a different guide).
    pub fn vi_from_artifact(mut self, artifact: &Artifact) -> Result<Query, QueryError> {
        self.seed = artifact.seed;
        self.observations = artifact
            .observations
            .iter()
            .map(artifact_obs_to_sample)
            .collect();
        self.model_args = artifact
            .model_args
            .iter()
            .map(|&x| Value::Real(x))
            .collect();
        let query = self.build()?;
        if artifact.schema.len() != query.guide_arity {
            return Err(QueryError::GuideArity {
                expected: query.guide_arity,
                supplied: artifact.schema.len(),
            });
        }
        Ok(query)
    }
}

/// Converts a runtime observation [`Sample`] to the artifact store's
/// dependency-free literal form.
pub fn sample_to_artifact_obs(sample: &Sample) -> ObsLit {
    match sample {
        Sample::Bool(b) => ObsLit::Bool(*b),
        Sample::Real(x) => ObsLit::Real(*x),
        Sample::Nat(n) => ObsLit::Nat(*n),
    }
}

fn artifact_obs_to_sample(obs: &ObsLit) -> Sample {
    match obs {
        ObsLit::Bool(b) => Sample::Bool(*b),
        ObsLit::Real(x) => Sample::Real(*x),
        ObsLit::Nat(n) => Sample::Nat(*n),
    }
}

/// The outcome of an engine-level VI fit run through [`Query::fit_vi`]:
/// the optimisation result plus the raw RNG words captured *immediately
/// after* the fit.
///
/// The fresh VI path threads one generator through the fit and then the
/// fitted-guide draw pass, so resuming a generator from these words (see
/// [`Pcg32::from_state_parts`]) and drawing reproduces the fresh path's
/// draw bytes exactly — the invariant the artifact store's warm queries
/// are built on.
#[derive(Debug, Clone)]
pub struct ViFit {
    /// The optimisation result (fitted parameters, ELBO trajectory).
    pub result: ViResult,
    /// Raw PCG state word after the fit.
    pub rng_state: u64,
    /// Raw PCG increment word after the fit.
    pub rng_inc: u64,
}

/// A validated, reusable inference request.
///
/// A query is self-contained (it shares the session's compiled programs
/// behind `Arc`s), `Send + Sync`, cheap to clone, and deterministic: its
/// result is a pure function of the query and the [`Method`], with all
/// randomness derived from [`QueryBuilder::seed`].
#[derive(Debug, Clone)]
pub struct Query {
    executor: JointExecutor,
    spec: JointSpec,
    seed: u64,
    threads: usize,
    block: usize,
    guide_arity: usize,
}

impl Query {
    /// Runs the chosen inference method.
    ///
    /// # Errors
    ///
    /// Method-level validation failures (guide arity, degenerate
    /// configurations) surface as [`SessionError::Query`] before anything
    /// executes; engine failures as [`SessionError::Runtime`].
    pub fn run(&self, method: &Method) -> Result<PosteriorResult, SessionError> {
        self.check_method(method)?;
        let mut rng = Pcg32::seed_from_u64(self.seed);
        run_with_rng_block(
            &self.executor,
            &self.spec,
            method,
            self.threads,
            self.block,
            &mut rng,
        )
    }

    /// The underlying joint executor (advanced use: custom proposals such
    /// as [`GuidedMh`](ppl_inference::GuidedMh) with the validation this
    /// query already performed).
    pub fn executor(&self) -> &JointExecutor {
        &self.executor
    }

    /// The joint spec the query runs with (channel names resolved from the
    /// procedure headers).
    pub fn spec(&self) -> &JointSpec {
        &self.spec
    }

    /// The conditioning observations.
    pub fn observations(&self) -> &[Sample] {
        self.executor.observations()
    }

    /// The query's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The query's engine thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The query's vectorised-execution block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Runs **only** the VI fit — the expensive half of [`Method::Vi`] —
    /// and captures the post-fit RNG position, so the fit can be
    /// checkpointed as an [`Artifact`] and its draw pass replayed later by
    /// [`Query::run_vi_warm`] without refitting.
    ///
    /// The fit is identical to the one [`Method::Vi`] runs: same
    /// validation, same seeding, same `num_threads` promotion — so
    /// `fit_vi` followed by `run_vi_warm` at the same seed is bit-identical
    /// to one fresh `Method::Vi` run.
    ///
    /// # Errors
    ///
    /// Validation failures (guide arity, degenerate configurations)
    /// surface as [`SessionError::Query`]; engine failures as
    /// [`SessionError::Runtime`].
    pub fn fit_vi(&self, params: &[ParamSpec], config: &ViConfig) -> Result<ViFit, SessionError> {
        self.check_method(&Method::Vi {
            params: params.to_vec(),
            config: config.clone(),
            draw_particles: None,
        })?;
        let mut config = config.clone();
        config.num_threads = config.num_threads.max(self.threads);
        let mut rng = Pcg32::seed_from_u64(self.seed);
        let result =
            VariationalInference::new(config).run(&self.executor, &self.spec, params, &mut rng)?;
        let (rng_state, rng_inc) = rng.state_parts();
        Ok(ViFit {
            result,
            rng_state,
            rng_inc,
        })
    }

    /// Draws a VI posterior from an already-fitted guide — the warm half
    /// of the amortization story: **zero fit iterations run**.
    ///
    /// The query should come from [`QueryBuilder::vi_from_artifact`] so
    /// its seed and observations match the artifact's.  The RNG resumes
    /// from the artifact's post-fit words and the guide runs at the
    /// recorded parameters, so the returned posterior is bit-identical to
    /// the fresh `Method::Vi` run that minted the artifact (given the same
    /// `draw_particles`).  The fit half of the result is reconstructed
    /// from the artifact's provenance: real fitted parameters, and an
    /// ELBO trace whose trailing window is the recorded tail (earlier
    /// entries, which no diagnostic reads, are NaN placeholders).
    ///
    /// # Errors
    ///
    /// [`SessionError::Query`] when the artifact's schema does not match
    /// the guide or `draw_particles` is zero; engine failures as
    /// [`SessionError::Runtime`].
    pub fn run_vi_warm(
        &self,
        artifact: &Artifact,
        draw_particles: Option<usize>,
    ) -> Result<PosteriorResult, SessionError> {
        if artifact.schema.len() != self.guide_arity {
            return Err(QueryError::GuideArity {
                expected: self.guide_arity,
                supplied: artifact.schema.len(),
            }
            .into());
        }
        if draw_particles == Some(0) {
            return Err(QueryError::InvalidMethod {
                reason: "the VI fitted-guide draw pass needs at least one particle".into(),
            }
            .into());
        }
        let mut rng = Pcg32::from_state_parts(artifact.rng_state, artifact.rng_inc);
        let fitted_spec = JointSpec {
            guide_args: artifact.params.iter().map(|&p| Value::Real(p)).collect(),
            ..self.spec.clone()
        };
        let draws = ImportanceSampler::new(draw_particles.unwrap_or(VI_POSTERIOR_PARTICLES))
            .with_threads(self.threads)
            .with_block(self.block)
            .run(&self.executor, &fitted_spec, &mut rng)?;
        let total = artifact.fit_iterations as usize;
        let mut elbo_trace = vec![f64::NAN; total.saturating_sub(artifact.elbo_tail.len())];
        elbo_trace.extend(artifact.elbo_tail.iter().copied());
        let fit = ViResult {
            params: artifact.params.clone(),
            names: artifact.schema.iter().map(|p| p.name.clone()).collect(),
            elbo_trace,
        };
        Ok(PosteriorResult::Vi(ViPosterior { fit, draws }))
    }

    fn check_method(&self, method: &Method) -> Result<(), QueryError> {
        let check_guide_args = |supplied: usize| {
            if supplied != self.guide_arity {
                Err(QueryError::GuideArity {
                    expected: self.guide_arity,
                    supplied,
                })
            } else {
                Ok(())
            }
        };
        match method {
            Method::Importance { particles } => {
                if *particles == 0 {
                    return Err(QueryError::InvalidMethod {
                        reason: "importance sampling needs at least one particle".into(),
                    });
                }
                check_guide_args(self.spec.guide_args.len())
            }
            Method::Mh {
                iterations,
                burn_in,
            } => {
                if *iterations == 0 {
                    return Err(QueryError::InvalidMethod {
                        reason: "MH needs at least one iteration".into(),
                    });
                }
                if burn_in >= iterations {
                    return Err(QueryError::InvalidMethod {
                        reason: format!(
                            "burn-in {burn_in} discards the whole {iterations}-iteration chain"
                        ),
                    });
                }
                check_guide_args(self.spec.guide_args.len())
            }
            Method::Vi {
                params,
                config,
                draw_particles,
            } => {
                if config.iterations == 0 || config.samples_per_iteration == 0 {
                    return Err(QueryError::InvalidMethod {
                        reason: "VI needs at least one iteration and one sample per iteration"
                            .into(),
                    });
                }
                if *draw_particles == Some(0) {
                    return Err(QueryError::InvalidMethod {
                        reason: "the VI fitted-guide draw pass needs at least one particle".into(),
                    });
                }
                check_guide_args(params.len())
            }
        }
    }
}

/// Runs `method` on an executor/spec pair with a caller-positioned RNG —
/// the single code path behind [`Query::run`] and the deprecated
/// rng-threading `Session` shortcuts (which keep the default block size).
pub(crate) fn run_with_rng(
    executor: &JointExecutor,
    spec: &JointSpec,
    method: &Method,
    threads: usize,
    rng: &mut Pcg32,
) -> Result<PosteriorResult, SessionError> {
    run_with_rng_block(executor, spec, method, threads, DEFAULT_BLOCK, rng)
}

/// [`run_with_rng`] with an explicit vectorised-execution block size for
/// the particle-sweep stages (VI keeps its own [`ViConfig::block`]).
pub(crate) fn run_with_rng_block(
    executor: &JointExecutor,
    spec: &JointSpec,
    method: &Method,
    threads: usize,
    block: usize,
    rng: &mut Pcg32,
) -> Result<PosteriorResult, SessionError> {
    match method {
        Method::Importance { particles } => Ok(PosteriorResult::Importance(
            ImportanceSampler::new(*particles)
                .with_threads(threads)
                .with_block(block)
                .run(executor, spec, rng)?,
        )),
        Method::Mh {
            iterations,
            burn_in,
        } => Ok(PosteriorResult::Mcmc(
            IndependenceMh::new(*iterations, *burn_in).run(executor, spec, rng)?,
        )),
        Method::Vi {
            params,
            config,
            draw_particles,
        } => {
            // The query's thread count drives every stage; an explicit
            // `ViConfig::num_threads` larger than it is respected.  (Either
            // choice is bit-identical — threads never change results.)
            let mut config = config.clone();
            config.num_threads = config.num_threads.max(threads);
            let fit = VariationalInference::new(config).run(executor, spec, params, rng)?;
            // Turn the fit into a posterior: draw weighted particles from
            // the guide at the fitted parameters.
            let fitted_spec = JointSpec {
                guide_args: fit.params.iter().map(|&p| Value::Real(p)).collect(),
                ..spec.clone()
            };
            let draws = ImportanceSampler::new(draw_particles.unwrap_or(VI_POSTERIOR_PARTICLES))
                .with_threads(threads)
                .with_block(block)
                .run(executor, &fitted_spec, rng)?;
            Ok(PosteriorResult::Vi(ViPosterior { fit, draws }))
        }
    }
}

impl Session {
    /// Starts building a validated inference [`Query`].
    ///
    /// See the [`query` module](crate::query) docs for the full picture.
    pub fn query(&self) -> QueryBuilder<'_> {
        QueryBuilder::new(self)
    }

    /// Runs a batch of queries sequentially — the amortized-serving
    /// primitive: one compiled model answers every observation set, and
    /// each query's result is bit-identical to [`Query::run`] alone.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing query.
    pub fn run_batch(
        &self,
        queries: &[Query],
        method: &Method,
    ) -> Result<Vec<PosteriorResult>, SessionError> {
        self.run_batch_threaded(queries, method, 1)
    }

    /// [`Session::run_batch`] over `batch_threads` worker threads.
    ///
    /// Each query's randomness comes from its own seed, so scheduling
    /// cannot influence any result: the batch output — including which
    /// error wins when several queries fail (the lowest-index one) — is
    /// **bit-identical for every `batch_threads`**, and identical to
    /// running the queries one by one.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing query.
    pub fn run_batch_threaded(
        &self,
        queries: &[Query],
        method: &Method,
        batch_threads: usize,
    ) -> Result<Vec<PosteriorResult>, SessionError> {
        let engine = Engine::new(batch_threads);
        // The scheduler hands each job an RNG substream, but queries are
        // seeded by construction — the substream is ignored, which is
        // exactly what makes batching bit-identical to one-by-one runs.
        let mut scheduler_rng = Pcg32::seed_from_u64(0);
        engine.run_particles(queries.len(), &mut scheduler_rng, |i, _| {
            queries[i].run(method)
        })
    }
}

fn sample_to_obs(sample: &Sample) -> ObsValue {
    match sample {
        Sample::Bool(b) => ObsValue::Bool(*b),
        Sample::Real(r) => ObsValue::Real(*r),
        Sample::Nat(n) => ObsValue::Nat(*n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "proc Model() : real consume latent provide obs {
        let x <- sample recv latent (Normal(0.0, 1.0));
        let _ <- sample send obs (Normal(x, 1.0));
        return x }";
    const GUIDE: &str = "proc Guide() provide latent {
        let x <- sample send latent (Normal(0.0, 1.5));
        return () }";

    fn session() -> Session {
        Session::from_sources(MODEL, "Model", GUIDE, "Guide").unwrap()
    }

    #[test]
    fn query_runs_all_three_methods_behind_one_interface() {
        let s = Session::from_benchmark("weight").unwrap();
        let obs = vec![Sample::Real(9.0), Sample::Real(9.0)];
        let methods = vec![
            Method::Importance { particles: 4_000 },
            Method::Mh {
                iterations: 4_000,
                burn_in: 400,
            },
            Method::vi(
                vec![
                    ParamSpec::unconstrained("mu", 2.0),
                    ParamSpec::positive("sigma", 1.0),
                ],
                ViConfig {
                    iterations: 150,
                    samples_per_iteration: 10,
                    learning_rate: 0.08,
                    ..ViConfig::default()
                },
            ),
        ];
        for method in &methods {
            // IS and MH run the parameterised guide at fixed arguments
            // (near the known posterior, so the proposal is useful); VI
            // ignores them and supplies its own parameters.
            let posterior = s
                .query()
                .observe(obs.clone())
                .guide_args(vec![Value::Real(7.4), Value::Real(0.6)])
                .seed(11)
                .run(method)
                .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
            assert_eq!(posterior.method(), method.name());
            // Conjugate posterior mean ≈ 7.46 for every engine.
            let mean = posterior.mean_of_sample(0).unwrap();
            assert!((mean - 7.46).abs() < 0.9, "{}: mean {mean}", method.name());
            assert!(posterior.num_draws() > 0);
            let summary = posterior.summarize_sample(0).unwrap();
            assert!(summary.std_dev() > 0.0);
            assert!(!posterior.diagnostics().is_empty());
        }
    }

    #[test]
    fn queries_are_deterministic_and_reusable() {
        let s = session();
        let q = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(42)
            .build()
            .unwrap();
        let method = Method::Importance { particles: 500 };
        let a = q.run(&method).unwrap();
        let b = q.run(&method).unwrap();
        let (a, b) = (a.as_importance().unwrap(), b.as_importance().unwrap());
        assert_eq!(a.log_evidence.to_bits(), b.log_evidence.to_bits());
        // Thread counts never change results.
        let q4 = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(42)
            .threads(4)
            .build()
            .unwrap();
        let c = q4.run(&method).unwrap();
        assert_eq!(
            a.log_evidence.to_bits(),
            c.as_importance().unwrap().log_evidence.to_bits()
        );
        // A different seed is a different run.
        let q2 = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(43)
            .build()
            .unwrap();
        let d = q2.run(&method).unwrap();
        assert_ne!(
            a.log_evidence.to_bits(),
            d.as_importance().unwrap().log_evidence.to_bits()
        );
        assert_eq!(q.seed(), 42);
        assert_eq!(q.threads(), 1);
        assert_eq!(q.observations(), &[Sample::Real(1.0)]);
        assert_eq!(q.spec().latent_chan.as_str(), "latent");
    }

    #[test]
    fn block_size_is_a_pure_performance_knob() {
        let s = session();
        let method = Method::Importance { particles: 700 };
        let run = |block: usize| {
            s.query()
                .observe(vec![Sample::Real(1.0)])
                .seed(9)
                .block(block)
                .run(&method)
                .unwrap()
                .as_importance()
                .unwrap()
                .log_evidence
        };
        let reference = run(1);
        for block in [7usize, 64, 256] {
            assert_eq!(reference.to_bits(), run(block).to_bits(), "block {block}");
        }
        // The builder clamps to at least one lane and reports the setting.
        let q = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .block(0)
            .build()
            .unwrap();
        assert_eq!(q.block(), 1);
        let default_q = s.query().observe(vec![Sample::Real(1.0)]).build().unwrap();
        assert_eq!(default_q.block(), ppl_inference::DEFAULT_BLOCK);
    }

    #[test]
    fn method_level_validation_rejects_degenerate_requests() {
        let s = session();
        let q = s.query().observe(vec![Sample::Real(1.0)]).build().unwrap();
        assert!(matches!(
            q.run(&Method::Importance { particles: 0 }),
            Err(SessionError::Query(QueryError::InvalidMethod { .. }))
        ));
        assert!(matches!(
            q.run(&Method::Mh {
                iterations: 10,
                burn_in: 10
            }),
            Err(SessionError::Query(QueryError::InvalidMethod { .. }))
        ));
        // The guide takes no parameters, so VI with params is an arity
        // error and IS with guide args would be too.
        assert!(matches!(
            q.run(&Method::vi(
                vec![ParamSpec::unconstrained("mu", 0.0)],
                ViConfig::default()
            )),
            Err(SessionError::Query(QueryError::GuideArity {
                expected: 0,
                supplied: 1
            }))
        ));
        let q_args = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .guide_args(vec![Value::Real(0.0)])
            .build()
            .unwrap();
        assert!(matches!(
            q_args.run(&Method::Importance { particles: 10 }),
            Err(SessionError::Query(QueryError::GuideArity { .. }))
        ));
    }

    #[test]
    fn model_arity_is_validated_at_build_time() {
        let s = session();
        let err = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .model_args(vec![Value::Real(1.0)])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            QueryError::ModelArity {
                expected: 0,
                supplied: 1
            }
        );
        assert!(err.to_string().contains("0 argument"));
    }

    #[test]
    fn nonconventional_channel_names_are_resolved_from_headers() {
        // The old hard-coded "latent"/"obs" spec could not run this pair.
        let model = "proc M() : real consume lat provide data {
            let x <- sample recv lat (Normal(0.0, 1.0));
            let _ <- sample send data (Normal(x, 1.0));
            return x }";
        let guide = "proc G() provide lat {
            let x <- sample send lat (Normal(0.0, 1.5));
            return () }";
        let s = Session::from_sources(model, "M", guide, "G").unwrap();
        let q = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(q.spec().latent_chan.as_str(), "lat");
        assert_eq!(q.spec().obs_chan.as_str(), "data");
        let posterior = q.run(&Method::Importance { particles: 2_000 }).unwrap();
        let mean = posterior.mean_of_sample(0).unwrap();
        assert!((mean - 0.5).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let s = session();
        let queries: Vec<Query> = (0..4)
            .map(|i| {
                s.query()
                    .observe(vec![Sample::Real(i as f64 * 0.5)])
                    .seed(100 + i)
                    .build()
                    .unwrap()
            })
            .collect();
        let method = Method::Importance { particles: 300 };
        let one_by_one: Vec<f64> = queries
            .iter()
            .map(|q| {
                q.run(&method)
                    .unwrap()
                    .as_importance()
                    .unwrap()
                    .log_evidence
            })
            .collect();
        for threads in [1usize, 4] {
            let batch = s.run_batch_threaded(&queries, &method, threads).unwrap();
            assert_eq!(batch.len(), 4);
            for (r, expected) in batch.iter().zip(&one_by_one) {
                assert_eq!(
                    r.as_importance().unwrap().log_evidence.to_bits(),
                    expected.to_bits(),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn vi_draw_particles_is_configurable_with_the_old_default() {
        let s = Session::from_benchmark("weight").unwrap();
        let obs = vec![Sample::Real(9.0), Sample::Real(9.0)];
        let params = vec![
            ParamSpec::unconstrained("mu", 2.0),
            ParamSpec::positive("sigma", 1.0),
        ];
        let config = ViConfig {
            iterations: 30,
            samples_per_iteration: 5,
            ..ViConfig::default()
        };
        let run = |method: &Method| {
            s.query()
                .observe(obs.clone())
                .seed(21)
                .run(method)
                .unwrap()
                .as_vi()
                .unwrap()
                .clone()
        };
        // Regression: the default (None) is bit-identical to explicitly
        // requesting the documented 2 000-particle pass.
        let default = run(&Method::vi(params.clone(), config.clone()));
        let explicit = run(&Method::Vi {
            params: params.clone(),
            config: config.clone(),
            draw_particles: Some(VI_POSTERIOR_PARTICLES),
        });
        assert_eq!(default.num_draws(), VI_POSTERIOR_PARTICLES);
        assert_eq!(
            default.draws.log_evidence.to_bits(),
            explicit.draws.log_evidence.to_bits()
        );
        // A custom pass size is honoured exactly.
        let small = run(&Method::Vi {
            params: params.clone(),
            config: config.clone(),
            draw_particles: Some(64),
        });
        assert_eq!(small.draws.particles.len(), 64);
        // And the fit itself is unchanged by the draw pass size.
        assert_eq!(small.fit.params, default.fit.params);
        // Zero draw particles is a structural method error.
        let err = s
            .query()
            .observe(obs.clone())
            .build()
            .unwrap()
            .run(&Method::Vi {
                params,
                config,
                draw_particles: Some(0),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Query(QueryError::InvalidMethod { .. })
        ));
    }

    #[test]
    fn query_errors_carry_stable_codes() {
        let s = session();
        let err = s
            .query()
            .observe(vec![Sample::Real(1.0)])
            .model_args(vec![Value::Real(1.0)])
            .build()
            .unwrap_err();
        assert_eq!(err.code(), "model.arity");
        assert!(err.to_string().starts_with("model.arity: "), "{err}");
        let err = s
            .query()
            .observe(vec![Sample::Bool(true)])
            .build()
            .unwrap_err();
        assert_eq!(err.code(), "obs.carrier");
        // The observation variant defers to the violation's code, rendered
        // once (inside the embedded violation), not twice.
        let shown = err.to_string();
        assert_eq!(shown.matches("obs.carrier").count(), 1, "{shown}");
    }

    #[test]
    fn queries_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Query>();
        assert_send_sync::<Method>();
        assert_send_sync::<PosteriorResult>();
    }
}
