//! A counting allocator for the `allocs_per_particle` benchmark column.
//!
//! The `ppl-bench` binary installs [`CountingAlloc`] as its global
//! allocator, so the throughput harness can report how many heap
//! allocations the steady-state particle loop performs (the tentpole
//! number is **zero**; see `tests/alloc_budget.rs` for the enforcing
//! test).  Library consumers that do not install the allocator get
//! [`installed`]` == false` and the harness reports the metric as unknown
//! (`null` in the JSON) instead of a vacuous zero.
//!
//! Counts are kept both process-wide ([`allocations`]) and **per thread**
//! ([`thread_allocations`]).  Measurements use the per-thread counter:
//! other threads — e.g. libtest's main thread lazily initialising its
//! channel-parking state mid-run — must not be able to leak allocations
//! into a measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    // `const`-initialised so that reading/updating it never allocates
    // (mandatory inside a `GlobalAlloc` implementation).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    // `try_with` so allocations during thread teardown (after TLS
    // destruction) stay safe; they are only dropped from the per-thread
    // view.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// A [`System`]-backed allocator that counts allocation requests.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: ppl_bench::alloc_track::CountingAlloc =
///     ppl_bench::alloc_track::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation requests since process start, all threads (0 when not
/// installed).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocation requests made by the *calling thread* (0 when not
/// installed).  Delta this around a measured section to count its
/// allocations without interference from other threads.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.try_with(|c| c.get()).unwrap_or(0)
}

/// True when [`CountingAlloc`] is actually the process's global allocator
/// (detected by performing an allocation and watching the counter move).
pub fn installed() -> bool {
    let before = thread_allocations();
    let probe: Vec<u8> = Vec::with_capacity(64);
    drop(std::hint::black_box(probe));
    thread_allocations() > before
}
