//! Whole-program guide-type inference (§4, "Type-inference algorithm") and
//! model–guide compatibility checking (the premise of Theorem 5.2).
//!
//! For every procedure `fix{a; b}(f. x̄. m)` the algorithm creates fresh type
//! operators `T_f_a`, `T_f_b` and fresh continuation variables `X_f_a`,
//! `X_f_b`, runs the backward checker on the body, and records the resulting
//! prefix types as the operator definitions.  The protocol of a channel for
//! a *top-level* run of procedure `f` is then the instantiation `T_f_c[1]`.

use crate::base::{is_subtype, TypingCtx};
use crate::check::{check_cmd, ChannelTypes, CheckCtx, ProcSignature, Sigma};
use crate::error::TypeError;
use crate::guide::{GuideType, TypeDef, TypeDefs};
use ppl_syntax::ast::{Ident, Program};
use std::collections::HashMap;

/// The result of guide-type inference over a whole program.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Procedure signatures `Σ`.
    pub sigma: Sigma,
    /// Inferred type-operator definitions `T`.
    pub defs: TypeDefs,
    /// The inferred value type of each procedure body.
    pub value_types: HashMap<Ident, ppl_syntax::ast::BaseType>,
}

impl TypeEnv {
    /// The protocol of the channel *consumed* by procedure `name` when run
    /// at top level (continuation `1`), or `None` if the procedure consumes
    /// no channel or is unknown.
    pub fn consumed_protocol(&self, name: &Ident) -> Option<GuideType> {
        let sig = self.sigma.get(name)?;
        let (_, op) = sig.consumes.as_ref()?;
        Some(GuideType::app(op.clone(), GuideType::End))
    }

    /// The protocol of the channel *provided* by procedure `name` when run
    /// at top level, or `None`.
    pub fn provided_protocol(&self, name: &Ident) -> Option<GuideType> {
        let sig = self.sigma.get(name)?;
        let (_, op) = sig.provides.as_ref()?;
        Some(GuideType::app(op.clone(), GuideType::End))
    }
}

/// Infers guide types for every procedure in the program.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered (ill-typed expressions,
/// undeclared channels, protocol mismatches between conditional branches,
/// result-type mismatches, …).
///
/// # Example
///
/// ```
/// use ppl_syntax::parse_program;
/// use ppl_types::infer_program;
///
/// let prog = parse_program(
///     "proc P() : ureal consume latent { let x <- sample recv latent (Unif); return x }",
/// ).unwrap();
/// let env = infer_program(&prog)?;
/// let latent = env.consumed_protocol(&"P".into()).unwrap();
/// assert_eq!(latent.to_string(), "T_P_latent[1]");
/// # Ok::<(), ppl_types::TypeError>(())
/// ```
pub fn infer_program(program: &Program) -> Result<TypeEnv, TypeError> {
    let mut sigma = Sigma::new();
    for p in &program.procs {
        if sigma.contains_key(&p.name) {
            return Err(
                TypeError::new(format!("duplicate procedure name '{}'", p.name))
                    .with_code(crate::error::code::DUP_PROC)
                    .at(p.pos),
            );
        }
        if p.consumes.is_some() && p.consumes == p.provides {
            return Err(TypeError::new(format!(
                "procedure '{}' consumes and provides the same channel",
                p.name
            ))
            .with_code(crate::error::code::CHANNEL_SAME)
            .in_proc(p.name.as_str())
            .at(p.pos));
        }
        sigma.insert(p.name, ProcSignature::for_proc(p));
    }

    let mut defs = TypeDefs::new();
    let mut value_types = HashMap::new();

    for p in &program.procs {
        let ctx = CheckCtx {
            sigma: &sigma,
            consumes: p.consumes,
            provides: p.provides,
        };
        let gamma = TypingCtx::from_params(&p.params);
        let cont_a_var = p.consumes.as_ref().map(|c| format!("X_{}_{}", p.name, c));
        let cont_b_var = p.provides.as_ref().map(|c| format!("X_{}_{}", p.name, c));
        let after = ChannelTypes {
            consumed: cont_a_var
                .clone()
                .map(GuideType::Var)
                .unwrap_or(GuideType::End),
            provided: cont_b_var
                .clone()
                .map(GuideType::Var)
                .unwrap_or(GuideType::End),
        };
        let typing = check_cmd(&ctx, &gamma, &p.body, &after)
            .map_err(|e| e.in_proc(p.name.as_str()).at(p.pos))?;
        if !is_subtype(&typing.value_ty, &p.ret_ty) {
            return Err(TypeError::new(format!(
                "body has value type {}, but the declared result type is {}",
                typing.value_ty, p.ret_ty
            ))
            .with_code(crate::error::code::RESULT_MISMATCH)
            .in_proc(p.name.as_str())
            .at(p.pos));
        }
        value_types.insert(p.name, typing.value_ty);

        let sig = &sigma[&p.name];
        if let (Some(var), Some((_, op))) = (&cont_a_var, &sig.consumes) {
            defs.insert(TypeDef {
                name: op.clone(),
                param: var.clone(),
                body: typing.before.consumed.clone(),
            });
        }
        if let (Some(var), Some((_, op))) = (&cont_b_var, &sig.provides) {
            defs.insert(TypeDef {
                name: op.clone(),
                param: var.clone(),
                body: typing.before.provided.clone(),
            });
        }
    }

    Ok(TypeEnv {
        sigma,
        defs,
        value_types,
    })
}

/// The outcome of a model–guide compatibility check.
#[derive(Debug, Clone, PartialEq)]
pub struct Compatibility {
    /// The latent-channel protocol inferred from the model.
    pub model_latent: GuideType,
    /// The latent-channel protocol inferred from the guide.
    pub guide_latent: GuideType,
    /// The observation-channel protocol inferred from the model, if any.
    pub model_obs: Option<GuideType>,
    /// Whether the two latent protocols are equal (the premise of
    /// Theorem 5.2, which yields absolute continuity).
    pub compatible: bool,
    /// Whether the model satisfies the `⊕`/`&`-freeness side conditions of
    /// Theorem 5.2 (the model receives no branch selections).
    pub model_branch_free: bool,
}

/// Checks that a model procedure and a guide procedure agree on the protocol
/// of the latent channel, and that the side conditions of Theorem 5.2 hold.
///
/// `model_env`/`guide_env` are the inference results for the programs
/// containing the two procedures (they may be the same [`TypeEnv`]).
///
/// # Errors
///
/// Returns a [`TypeError`] if either procedure is unknown, the model does
/// not consume a latent channel, or the guide does not provide one.
pub fn check_model_guide(
    model_env: &TypeEnv,
    model_proc: &Ident,
    guide_env: &TypeEnv,
    guide_proc: &Ident,
) -> Result<Compatibility, TypeError> {
    let model_latent = model_env.consumed_protocol(model_proc).ok_or_else(|| {
        TypeError::new(format!(
            "model procedure '{model_proc}' does not consume a latent channel"
        ))
        .with_code(crate::error::code::GUIDE_MISMATCH)
        .in_proc(model_proc.as_str())
    })?;
    let guide_latent = guide_env.provided_protocol(guide_proc).ok_or_else(|| {
        TypeError::new(format!(
            "guide procedure '{guide_proc}' does not provide a latent channel"
        ))
        .with_code(crate::error::code::GUIDE_MISMATCH)
        .in_proc(guide_proc.as_str())
    })?;
    let model_obs = model_env.provided_protocol(model_proc);

    let compatible = model_env
        .defs
        .equal(&model_latent, &guide_latent, &guide_env.defs);

    // Side conditions of Theorem 5.2: the latent protocol is ⊕-free (the
    // provider, i.e. the guide, never sends branch selections) and the obs
    // protocol is &-free (the model, its provider, never receives them).
    let latent_offer_free = model_env.defs.is_offer_free(&model_latent);
    let obs_accept_free = model_obs
        .as_ref()
        .map(|t| model_env.defs.is_accept_free(t))
        .unwrap_or(true);

    Ok(Compatibility {
        model_latent,
        guide_latent,
        model_obs,
        compatible,
        model_branch_free: latent_offer_free && obs_accept_free,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_program;

    const FIG5_MODEL: &str = r#"
        proc Model() : real consume latent provide obs {
          let v <- sample recv latent (Gamma(2.0, 1.0));
          if send latent (v < 2.0) {
            let _ <- sample send obs (Normal(-1.0, 1.0));
            return v
          } else {
            let m <- sample recv latent (Beta(3.0, 1.0));
            let _ <- sample send obs (Normal(m, 1.0));
            return v
          }
        }
    "#;

    const FIG5_GUIDE: &str = r#"
        proc Guide1() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
    "#;

    const UNSOUND_GUIDE: &str = r#"
        proc GuideBad() provide latent {
          let v <- sample send latent (Pois(4.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
    "#;

    const PCFG: &str = r#"
        proc Pcfg() : real consume latent {
          let k <- sample recv latent (Beta(3.0, 1.0));
          let t <- call PcfgGen(k);
          return t
        }
        proc PcfgGen(k : ureal) : real consume latent {
          let u <- sample recv latent (Unif);
          if send latent (u < k) {
            let v <- sample recv latent (Normal(0.0, 1.0));
            return v
          } else {
            let lhs <- call PcfgGen(k);
            let rhs <- call PcfgGen(k);
            return lhs + rhs
          }
        }
    "#;

    const PCFG_GUIDE: &str = r#"
        proc PcfgGuide() provide latent {
          let k <- sample send latent (Beta(2.0, 2.0));
          let t <- call PcfgGenGuide();
          return ()
        }
        proc PcfgGenGuide() provide latent {
          let u <- sample send latent (Unif);
          if recv latent {
            let v <- sample send latent (Normal(0.0, 2.0));
            return ()
          } else {
            let _ <- call PcfgGenGuide();
            let _ <- call PcfgGenGuide();
            return ()
          }
        }
    "#;

    #[test]
    fn fig5_model_and_guide_are_compatible() {
        let model = infer_program(&parse_program(FIG5_MODEL).unwrap()).unwrap();
        let guide = infer_program(&parse_program(FIG5_GUIDE).unwrap()).unwrap();
        let compat = check_model_guide(&model, &"Model".into(), &guide, &"Guide1".into()).unwrap();
        assert!(compat.compatible, "{compat:?}");
        assert!(compat.model_branch_free);
        assert!(compat.model_obs.is_some());
    }

    #[test]
    fn fig3_unsound_guide_is_rejected() {
        let model = infer_program(&parse_program(FIG5_MODEL).unwrap()).unwrap();
        let guide = infer_program(&parse_program(UNSOUND_GUIDE).unwrap()).unwrap();
        let compat =
            check_model_guide(&model, &"Model".into(), &guide, &"GuideBad".into()).unwrap();
        assert!(!compat.compatible);
    }

    #[test]
    fn fig4_vi_guides() {
        // Sound parameterised guide (Guide2).
        let guide2 = r#"
            proc Guide2(t1 : preal, t2 : preal, t3 : preal, t4 : preal) provide latent {
              let v <- sample send latent (Gamma(t1, t2));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Beta(t3, t4));
                return ()
              }
            }
        "#;
        // Unsound guide (Guide2'): samples @x from a Normal.
        let guide2p = r#"
            proc Guide2p(t1 : real, t2 : preal) provide latent {
              let v <- sample send latent (Normal(t1, t2));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#;
        let model = infer_program(&parse_program(FIG5_MODEL).unwrap()).unwrap();
        let g2 = infer_program(&parse_program(guide2).unwrap()).unwrap();
        let g2p = infer_program(&parse_program(guide2p).unwrap()).unwrap();
        assert!(
            check_model_guide(&model, &"Model".into(), &g2, &"Guide2".into())
                .unwrap()
                .compatible
        );
        assert!(
            !check_model_guide(&model, &"Model".into(), &g2p, &"Guide2p".into())
                .unwrap()
                .compatible
        );
    }

    #[test]
    fn recursive_pcfg_infers_parameterised_operator() {
        let env = infer_program(&parse_program(PCFG).unwrap()).unwrap();
        // The operator for PcfgGen's latent channel should mention itself
        // (recursive protocol) and be parameterised by its continuation.
        let def = env.defs.get("T_PcfgGen_latent").unwrap();
        assert!(def.body.mentions_var(&def.param));
        let printed = def.body.to_string();
        assert!(printed.contains("T_PcfgGen_latent["), "{printed}");
        // Pcfg's protocol: ℝ(0,1) ∧ T_PcfgGen_latent[X].
        let top = env.defs.get("T_Pcfg_latent").unwrap();
        assert!(top
            .body
            .to_string()
            .starts_with("ureal /\\ T_PcfgGen_latent["));
    }

    #[test]
    fn recursive_model_guide_compatibility() {
        let model = infer_program(&parse_program(PCFG).unwrap()).unwrap();
        let guide = infer_program(&parse_program(PCFG_GUIDE).unwrap()).unwrap();
        let compat =
            check_model_guide(&model, &"Pcfg".into(), &guide, &"PcfgGuide".into()).unwrap();
        assert!(compat.compatible, "{compat:?}");
        assert!(compat.model_branch_free);
    }

    #[test]
    fn recursive_guide_with_missing_recursion_is_incompatible() {
        let bad_guide = r#"
            proc PcfgGuide() provide latent {
              let k <- sample send latent (Beta(2.0, 2.0));
              let _ <- call PcfgGenGuide();
              return ()
            }
            proc PcfgGenGuide() provide latent {
              let u <- sample send latent (Unif);
              if recv latent {
                let v <- sample send latent (Normal(0.0, 2.0));
                return ()
              } else {
                let _ <- call PcfgGenGuide();
                return ()
              }
            }
        "#;
        let model = infer_program(&parse_program(PCFG).unwrap()).unwrap();
        let guide = infer_program(&parse_program(bad_guide).unwrap()).unwrap();
        let compat =
            check_model_guide(&model, &"Pcfg".into(), &guide, &"PcfgGuide".into()).unwrap();
        assert!(!compat.compatible);
    }

    #[test]
    fn value_type_mismatch_is_reported() {
        let src = r#"
            proc P() : bool consume latent {
              let x <- sample recv latent (Unif);
              return x
            }
        "#;
        let err = infer_program(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.message.contains("declared result type"), "{err}");
        assert_eq!(err.in_proc.as_deref(), Some("P"));
    }

    #[test]
    fn duplicate_procedures_and_same_channel_errors() {
        let dup = "proc P() { return () } proc P() { return () }";
        assert!(infer_program(&parse_program(dup).unwrap()).is_err());
        let same = "proc P() consume c provide c { return () }";
        assert!(infer_program(&parse_program(same).unwrap()).is_err());
    }

    #[test]
    fn outlier_example_control_flow_divergence() {
        // §2.2 "Control-flow divergence": model is straight-line, guide
        // branches on data from the old sample; both have protocol
        // ℝ(0,1) ∧ 𝟚 ∧ 1.
        let model = r#"
            proc OutlierModel() consume latent provide obs {
              let prob_outlier <- sample recv latent (Unif);
              let is_outlier <- sample recv latent (Ber(prob_outlier));
              let _ <- sample send obs (Normal(0.0, 1.0));
              return ()
            }
        "#;
        let guide = r#"
            proc OutlierGuide(old_is_outlier : bool) provide latent {
              let prob_outlier <- sample send latent (Beta(2.0, 5.0));
              if old_is_outlier then {
                let is_outlier <- sample send latent (Ber(0.1));
                return ()
              } else {
                let is_outlier <- sample send latent (Ber(0.9));
                return ()
              }
            }
        "#;
        // NOTE: the guide's branch is *local* (not communicated), which in
        // the core calculus is expressed with a pure conditional expression
        // on the Bernoulli parameter instead of a branching command.
        let guide = guide.replace(
            "if old_is_outlier then {\n                let is_outlier <- sample send latent (Ber(0.1));\n                return ()\n              } else {\n                let is_outlier <- sample send latent (Ber(0.9));\n                return ()\n              }",
            "let is_outlier <- sample send latent (Ber(if old_is_outlier then 0.1 else 0.9));\n              return ()",
        );
        let model_env = infer_program(&parse_program(model).unwrap()).unwrap();
        let guide_env = infer_program(&parse_program(&guide).unwrap()).unwrap();
        let compat = check_model_guide(
            &model_env,
            &"OutlierModel".into(),
            &guide_env,
            &"OutlierGuide".into(),
        )
        .unwrap();
        assert!(compat.compatible, "{compat:?}");
    }

    #[test]
    fn missing_channels_are_reported() {
        let model = infer_program(&parse_program("proc M() { return () }").unwrap()).unwrap();
        let guide = infer_program(&parse_program(FIG5_GUIDE).unwrap()).unwrap();
        assert!(check_model_guide(&model, &"M".into(), &guide, &"Guide1".into()).is_err());
        let model2 = infer_program(&parse_program(FIG5_MODEL).unwrap()).unwrap();
        let noguide = infer_program(&parse_program("proc G() { return () }").unwrap()).unwrap();
        assert!(check_model_guide(&model2, &"Model".into(), &noguide, &"G".into()).is_err());
    }

    #[test]
    fn ptrace_recursive_model_from_fig10() {
        let src = r#"
            proc Ptrace(lam : preal) : real consume latent provide obs {
              let k <- call PtraceHelper(exp(-(lam)), 0.0, 1.0);
              let _ <- sample send obs (Normal(k, 0.1));
              return k
            }
            proc PtraceHelper(l : preal, k : real, p : preal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (p * u <= l) {
                return k
              } else {
                let r <- call PtraceHelper(l, k + 1.0, p * u)
                return r
              }
            }
        "#;
        // Small fix: the parser requires a semicolon after a bound call.
        let src = src.replace(
            "let r <- call PtraceHelper(l, k + 1.0, p * u)\n                return r",
            "let r <- call PtraceHelper(l, k + 1.0, p * u);\n                return r",
        );
        let env = infer_program(&parse_program(&src).unwrap()).unwrap();
        let def = env.defs.get("T_PtraceHelper_latent").unwrap();
        assert!(def.body.mentions_var(&def.param));
        assert!(env.consumed_protocol(&"Ptrace".into()).is_some());
        assert!(env.provided_protocol(&"Ptrace".into()).is_some());
    }
}
