//! A process-wide symbol interner.
//!
//! Every [`Ident`](crate::ast::Ident) — program variable, procedure name,
//! or channel name — is a [`Sym`]: a `u32` index into one global,
//! append-only string table.  Interning happens when source text is parsed
//! (or an identifier is otherwise constructed from a string); from then on
//! the steady-state execution paths copy, compare, and hash plain `u32`s.
//! This is what lets coroutine suspensions carry their channel as a `Copy`
//! id, environment frames bind and look up variables with integer
//! comparisons, and `CompiledProgram`s share procedure names without ever
//! cloning a `String` per particle.
//!
//! The table is global (rather than per-compiled-program) so that the model
//! and the guide — compiled separately — agree on the id of every name they
//! rendezvous on: the joint executor compares the model's channel id
//! against the guide's directly, with no cross-program translation.
//!
//! Interned strings are leaked deliberately: the table only ever holds one
//! copy of each distinct identifier that appears in any parsed program, so
//! its size is bounded by the source text the process has seen.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol: a dense `u32` id resolving to a unique string.
///
/// Two `Sym`s are equal exactly when their strings are equal, so equality,
/// hashing, and copying are integer operations.  Ordering is by id (i.e.
/// first-interned first); use [`Sym::as_str`] for lexicographic concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw id.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The interned string (a `'static` borrow of the global table).
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

struct Interner {
    map: HashMap<&'static str, Sym>,
    strings: Vec<&'static str>,
}

fn table() -> &'static Mutex<Interner> {
    static TABLE: OnceLock<Mutex<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Interns a string, returning its (stable, process-wide) symbol.
pub fn intern(s: &str) -> Sym {
    let mut t = table().lock().expect("symbol interner poisoned");
    if let Some(&sym) = t.map.get(s) {
        return sym;
    }
    let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let sym = Sym(u32::try_from(t.strings.len()).expect("interner overflow"));
    t.strings.push(owned);
    t.map.insert(owned, sym);
    sym
}

/// Resolves a symbol back to its string.
pub fn resolve(sym: Sym) -> &'static str {
    table().lock().expect("symbol interner poisoned").strings[sym.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_round_trips() {
        let a = intern("latent");
        let b = intern("latent");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "latent");
        let c = intern("obs");
        assert_ne!(a, c);
        assert_eq!(resolve(c), "obs");
    }

    #[test]
    fn symbols_are_copy_and_hashable() {
        fn takes_copy<T: Copy + std::hash::Hash + Eq>(_: T) {}
        takes_copy(intern("x"));
        let s = intern("y");
        let t = s; // Copy, not move.
        assert_eq!(s, t);
        assert_eq!(s.to_string(), "y");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("conc_sym_{i}")).collect();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let names = names.clone();
            handles.push(std::thread::spawn(move || {
                names.iter().map(|n| intern(n)).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "threads must agree on every symbol id");
        }
    }
}
