//! Up-front query validation: malformed observation vectors are rejected
//! when the query is *built* — before a single joint execution runs — with
//! a `QueryError` naming the offending position and the expected protocol.

use guide_ppl::{Method, QueryError, Session, SessionError};
use ppl_dist::Sample;
use ppl_types::obs::ObsViolation;

/// Builds the Fig. 5 session (one `real` observation).
fn ex1() -> Session {
    Session::from_benchmark("ex-1").unwrap()
}

#[test]
fn wrong_observation_count_is_rejected_at_build_time() {
    let session = ex1();
    // Too few: the protocol expects a real at position 0.
    let err = session.query().build().unwrap_err();
    let QueryError::Observations {
        violation,
        supplied,
        protocol,
    } = &err
    else {
        panic!("expected an observation error, got {err:?}");
    };
    assert_eq!(*supplied, 0);
    assert!(
        matches!(violation, ObsViolation::TooFew { position: 0, .. }),
        "{violation:?}"
    );
    assert!(protocol.contains("real"), "protocol {protocol}");
    let shown = err.to_string();
    assert!(shown.contains("position 0"), "{shown}");
    assert!(shown.contains("protocol"), "{shown}");

    // Too many: the protocol ends after one observation.
    let err = session
        .query()
        .observe(vec![Sample::Real(0.8), Sample::Real(0.9)])
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations {
                violation: ObsViolation::TooMany {
                    consumed: 1,
                    supplied: 2
                },
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn wrong_carrier_type_is_rejected_at_build_time() {
    // normal-normal observes through a Normal: carrier `real`.
    let session = Session::from_benchmark("normal-normal").unwrap();
    let err = session
        .query()
        .observe(vec![Sample::Bool(true)])
        .build()
        .unwrap_err();
    let QueryError::Observations { violation, .. } = &err else {
        panic!("expected an observation error, got {err:?}");
    };
    assert!(
        matches!(violation, ObsViolation::Carrier { position: 0, .. }),
        "{violation:?}"
    );
    assert!(err.to_string().contains("wrong carrier"), "{err}");

    // coin observes through a Bernoulli: carrier `bool`, so a real at
    // position 2 is caught (and located).
    let session = Session::from_benchmark("coin").unwrap();
    let err = session
        .query()
        .observe(vec![
            Sample::Bool(true),
            Sample::Bool(true),
            Sample::Real(1.0),
            Sample::Bool(true),
        ])
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations {
                violation: ObsViolation::Carrier { position: 2, .. },
                ..
            }
        ),
        "{err:?}"
    );

    // Strict refined carriers: a Beta-observed value must lie in (0, 1).
    let model = "proc M() : ureal consume latent provide obs {
        let p <- sample recv latent (Unif);
        let _ <- sample send obs (Beta(1.0, 1.0));
        return p }";
    let guide = "proc G() provide latent {
        let p <- sample send latent (Unif);
        return () }";
    let session = Session::from_sources(model, "M", guide, "G").unwrap();
    assert!(session
        .query()
        .observe(vec![Sample::Real(0.4)])
        .build()
        .is_ok());
    let err = session
        .query()
        .observe(vec![Sample::Real(1.5)])
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations {
                violation: ObsViolation::Carrier { position: 0, .. },
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn models_without_observations_reject_any_observation() {
    // ex-2 (the PCFG) conditions on nothing.
    let session = Session::from_benchmark("ex-2").unwrap();
    assert!(session.query().build().is_ok());
    let err = session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations { .. } | QueryError::NoObservationChannel { .. }
        ),
        "{err:?}"
    );

    // A model with no observation channel at all.
    let model = "proc M() : real consume latent {
        let x <- sample recv latent (Normal(0.0, 1.0));
        return x }";
    let guide = "proc G() provide latent {
        let x <- sample send latent (Normal(0.0, 1.5));
        return () }";
    let session = Session::from_sources(model, "M", guide, "G").unwrap();
    assert!(session.query().build().is_ok());
    let err = session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .build()
        .unwrap_err();
    assert_eq!(err, QueryError::NoObservationChannel { supplied: 1 });
    assert!(err.to_string().contains("no observation channel"));
}

#[test]
fn branch_dependent_observation_counts_are_feasibility_checked() {
    // The model chooses (and announces on the obs channel) whether it
    // emits one or two observations: both counts are feasible, others are
    // not.
    let model = "proc M() : real consume latent provide obs {
        let x <- sample recv latent (Normal(0.0, 1.0));
        if send obs (x < 0.0) {
          let _ <- sample send obs (Normal(x, 1.0));
          return x
        } else {
          let _ <- sample send obs (Normal(x, 1.0));
          let _ <- sample send obs (Normal(x, 2.0));
          return x
        } }";
    let guide = "proc G() provide latent {
        let x <- sample send latent (Normal(0.0, 1.5));
        return () }";
    let session = Session::from_sources(model, "M", guide, "G").unwrap();
    assert!(session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .build()
        .is_ok());
    assert!(session
        .query()
        .observe(vec![Sample::Real(1.0), Sample::Real(2.0)])
        .build()
        .is_ok());
    let err = session.query().build().unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations {
                violation: ObsViolation::TooFew { position: 0, .. },
                ..
            }
        ),
        "{err:?}"
    );
    let err = session
        .query()
        .observe(vec![
            Sample::Real(1.0),
            Sample::Real(2.0),
            Sample::Real(3.0),
        ])
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Observations {
                violation: ObsViolation::TooMany {
                    consumed: 2,
                    supplied: 3
                },
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn every_registry_benchmark_validates_its_own_observations() {
    for b in ppl_models::all_benchmarks() {
        if !b.expressible {
            continue;
        }
        let session = Session::from_benchmark(b.name).unwrap();
        let query = session.query().observe(b.observations.clone()).build();
        assert!(
            query.is_ok(),
            "{}: registered observations rejected: {}",
            b.name,
            query.err().map(|e| e.to_string()).unwrap_or_default()
        );
        // One extra observation always breaks the protocol.
        let mut extra = b.observations.clone();
        extra.push(Sample::Real(0.5));
        assert!(
            session.query().observe(extra).build().is_err(),
            "{}: an extra observation should be rejected",
            b.name
        );
    }
}

#[test]
fn validation_errors_surface_through_the_one_shot_run_path_too() {
    // `.run(..)` on the builder performs the same build-time validation,
    // wrapped as SessionError::Query — still before anything executes.
    let session = ex1();
    let err = session
        .query()
        .observe(vec![Sample::Bool(true)])
        .run(&Method::Importance { particles: 1_000 })
        .unwrap_err();
    assert!(
        matches!(err, SessionError::Query(QueryError::Observations { .. })),
        "{err:?}"
    );
}
