//! Well-typed guidance traces: the judgment `σ : A` (Fig. 13, `TT:*` rules)
//! and a generator of random well-typed traces used by the property tests
//! for the type-safety theorems (Thms. 4.4–4.6).

use crate::trace::{Message, Trace};
use ppl_dist::rng::Pcg32;
use ppl_dist::Sample;
use ppl_syntax::ast::BaseType;
use ppl_types::guide::{GuideType, TypeDefs};

/// Well-typedness of a sample payload at a scalar base type.
pub fn sample_has_type(s: &Sample, ty: &BaseType) -> bool {
    match (s, ty) {
        (Sample::Bool(_), BaseType::Bool) => true,
        (Sample::Real(r), BaseType::UnitInterval) => *r > 0.0 && *r < 1.0,
        (Sample::Real(r), BaseType::PosReal) => *r > 0.0 && r.is_finite(),
        (Sample::Real(r), BaseType::Real) => r.is_finite(),
        (Sample::Nat(n), BaseType::FinNat(m)) => (*n as usize) < *m,
        (Sample::Nat(_), BaseType::Nat) => true,
        _ => false,
    }
}

/// Checks the judgment `σ : A` against the given type definitions.
///
/// Closed guide types only (free type variables make the judgment false).
pub fn trace_has_type(defs: &TypeDefs, trace: &Trace, ty: &GuideType) -> bool {
    matches(defs, trace.messages(), ty)
        .map(|rest| rest.is_empty())
        .unwrap_or(false)
}

/// Attempts to consume a prefix of `msgs` according to `ty`, returning the
/// remaining suffix on success.
fn matches<'m>(defs: &TypeDefs, msgs: &'m [Message], ty: &GuideType) -> Option<&'m [Message]> {
    match ty {
        GuideType::End => Some(msgs),
        GuideType::Var(_) => None,
        GuideType::SendVal(t, rest) => match msgs.split_first() {
            Some((Message::ValP(v), tail)) if sample_has_type(v, t) => matches(defs, tail, rest),
            _ => None,
        },
        GuideType::RecvVal(t, rest) => match msgs.split_first() {
            Some((Message::ValC(v), tail)) if sample_has_type(v, t) => matches(defs, tail, rest),
            _ => None,
        },
        GuideType::Offer(a, b) => match msgs.split_first() {
            Some((Message::DirP(sel), tail)) => matches(defs, tail, if *sel { a } else { b }),
            _ => None,
        },
        GuideType::Accept(a, b) => match msgs.split_first() {
            Some((Message::DirC(sel), tail)) => matches(defs, tail, if *sel { a } else { b }),
            _ => None,
        },
        GuideType::App(op, arg) => match msgs.split_first() {
            Some((Message::Fold, tail)) => {
                let body = defs.unfold(op, arg)?;
                matches(defs, tail, &body)
            }
            _ => None,
        },
    }
}

/// Configuration for the random-trace generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Probability of taking the *then* branch at each choice point; keeping
    /// this below one half biases recursive protocols towards termination
    /// when their recursive case sits in the else branch, and vice versa.
    pub then_probability: f64,
    /// Hard cap on the number of generated messages, to keep property tests
    /// finite even for adversarial recursive protocols.
    pub max_messages: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            then_probability: 0.6,
            max_messages: 10_000,
        }
    }
}

/// Generates a random trace `σ` with `σ : A`.
///
/// Returns `None` if the budget of [`GeneratorConfig::max_messages`] is
/// exhausted before the protocol ends (possible for recursive protocols
/// with unlucky branch choices) or if the type has free variables /
/// undefined operators.
pub fn generate_trace(
    defs: &TypeDefs,
    ty: &GuideType,
    rng: &mut Pcg32,
    config: &GeneratorConfig,
) -> Option<Trace> {
    let mut messages = Vec::new();
    let mut stack = vec![ty.clone()];
    while let Some(current) = stack.pop() {
        if messages.len() > config.max_messages {
            return None;
        }
        match current {
            GuideType::End => {}
            GuideType::Var(_) => return None,
            GuideType::SendVal(t, rest) => {
                messages.push(Message::ValP(random_sample(&t, rng)?));
                stack.push(*rest);
            }
            GuideType::RecvVal(t, rest) => {
                messages.push(Message::ValC(random_sample(&t, rng)?));
                stack.push(*rest);
            }
            GuideType::Offer(a, b) => {
                let sel = rng.next_f64() < config.then_probability;
                messages.push(Message::DirP(sel));
                stack.push(if sel { *a } else { *b });
            }
            GuideType::Accept(a, b) => {
                let sel = rng.next_f64() < config.then_probability;
                messages.push(Message::DirC(sel));
                stack.push(if sel { *a } else { *b });
            }
            GuideType::App(op, arg) => {
                messages.push(Message::Fold);
                stack.push(defs.unfold(&op, &arg)?);
            }
        }
    }
    Some(Trace::from_messages(messages))
}

fn random_sample(ty: &BaseType, rng: &mut Pcg32) -> Option<Sample> {
    let s = match ty {
        BaseType::Bool => Sample::Bool(rng.next_f64() < 0.5),
        BaseType::UnitInterval => Sample::Real(rng.next_open01()),
        BaseType::PosReal => Sample::Real(-rng.next_open01().ln() + 1e-12),
        BaseType::Real => {
            // A crude standard normal via the central limit theorem is fine
            // for generation purposes.
            let sum: f64 = (0..12).map(|_| rng.next_f64()).sum();
            Sample::Real(sum - 6.0)
        }
        BaseType::FinNat(n) => Sample::Nat(rng.next_below(*n as u64)),
        BaseType::Nat => Sample::Nat(rng.next_below(20)),
        _ => return None,
    };
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_types::guide::TypeDef;

    fn fig5_latent() -> GuideType {
        GuideType::send_val(
            BaseType::PosReal,
            GuideType::accept(
                GuideType::End,
                GuideType::send_val(BaseType::UnitInterval, GuideType::End),
            ),
        )
    }

    #[test]
    fn trace_typing_accepts_both_branches() {
        let defs = TypeDefs::new();
        let then_trace =
            Trace::from_messages(vec![Message::ValP(Sample::Real(1.0)), Message::DirC(true)]);
        let else_trace = Trace::from_messages(vec![
            Message::ValP(Sample::Real(3.0)),
            Message::DirC(false),
            Message::ValP(Sample::Real(0.9)),
        ]);
        assert!(trace_has_type(&defs, &then_trace, &fig5_latent()));
        assert!(trace_has_type(&defs, &else_trace, &fig5_latent()));
    }

    #[test]
    fn trace_typing_rejects_bad_traces() {
        let defs = TypeDefs::new();
        let ty = fig5_latent();
        // Value outside ℝ+.
        let bad_value =
            Trace::from_messages(vec![Message::ValP(Sample::Real(-1.0)), Message::DirC(true)]);
        // Missing the ℝ(0,1) sample in the else branch.
        let missing =
            Trace::from_messages(vec![Message::ValP(Sample::Real(3.0)), Message::DirC(false)]);
        // Extra trailing message.
        let extra = Trace::from_messages(vec![
            Message::ValP(Sample::Real(1.0)),
            Message::DirC(true),
            Message::Fold,
        ]);
        // Wrong message kind (provider direction instead of consumer).
        let wrong_dir =
            Trace::from_messages(vec![Message::ValP(Sample::Real(1.0)), Message::DirP(true)]);
        for t in [bad_value, missing, extra, wrong_dir] {
            assert!(!trace_has_type(&defs, &t, &ty), "{t}");
        }
    }

    #[test]
    fn trace_typing_handles_recursion_through_fold() {
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "R".into(),
            param: "X".into(),
            body: GuideType::send_val(
                BaseType::UnitInterval,
                GuideType::accept(
                    GuideType::Var("X".into()),
                    GuideType::app("R", GuideType::Var("X".into())),
                ),
            ),
        });
        let ty = GuideType::app("R", GuideType::End);
        let t = Trace::from_messages(vec![
            Message::Fold,
            Message::ValP(Sample::Real(0.9)),
            Message::DirC(false),
            Message::Fold,
            Message::ValP(Sample::Real(0.1)),
            Message::DirC(true),
        ]);
        assert!(trace_has_type(&defs, &t, &ty));
        let missing_fold =
            Trace::from_messages(vec![Message::ValP(Sample::Real(0.9)), Message::DirC(true)]);
        assert!(!trace_has_type(&defs, &missing_fold, &ty));
    }

    #[test]
    fn generated_traces_are_well_typed() {
        let mut defs = TypeDefs::new();
        defs.insert(TypeDef {
            name: "R".into(),
            param: "X".into(),
            body: GuideType::send_val(
                BaseType::UnitInterval,
                GuideType::accept(
                    GuideType::send_val(BaseType::Real, GuideType::Var("X".into())),
                    GuideType::app("R", GuideType::app("R", GuideType::Var("X".into()))),
                ),
            ),
        });
        let tys = vec![
            fig5_latent(),
            GuideType::send_val(BaseType::Real, GuideType::End),
            GuideType::app("R", GuideType::End),
            GuideType::offer(
                GuideType::send_val(BaseType::Nat, GuideType::End),
                GuideType::send_val(BaseType::FinNat(3), GuideType::End),
            ),
            GuideType::recv_val(BaseType::Bool, GuideType::End),
        ];
        let mut rng = Pcg32::seed_from_u64(99);
        let config = GeneratorConfig::default();
        for ty in tys {
            for _ in 0..50 {
                if let Some(t) = generate_trace(&defs, &ty, &mut rng, &config) {
                    assert!(trace_has_type(&defs, &t, &ty), "{t} : {ty}");
                }
            }
        }
    }

    #[test]
    fn generator_fails_gracefully_on_open_types() {
        let defs = TypeDefs::new();
        let mut rng = Pcg32::seed_from_u64(1);
        assert!(generate_trace(
            &defs,
            &GuideType::Var("X".into()),
            &mut rng,
            &GeneratorConfig::default()
        )
        .is_none());
        assert!(generate_trace(
            &defs,
            &GuideType::app("Undefined", GuideType::End),
            &mut rng,
            &GeneratorConfig::default()
        )
        .is_none());
    }

    #[test]
    fn sample_typing() {
        assert!(sample_has_type(&Sample::Real(0.5), &BaseType::UnitInterval));
        assert!(!sample_has_type(
            &Sample::Real(1.5),
            &BaseType::UnitInterval
        ));
        assert!(sample_has_type(&Sample::Nat(2), &BaseType::FinNat(3)));
        assert!(!sample_has_type(&Sample::Bool(true), &BaseType::Real));
        assert!(!sample_has_type(&Sample::Real(1.0), &BaseType::Unit));
    }
}
