//! `ppl-bench` — the perf-tracking entry point of the benchmark harness.
//!
//! Measures particle throughput of the zero-copy execution core (1 vs N
//! threads, verifying bit-identical results) and the wall time of each
//! inference engine on a reference workload.
//!
//! ```text
//! ppl-bench [--json [PATH]] [--particles N] [--threads N] [--block N]
//! ```
//!
//! Without flags the results are printed as a table.  With `--json`, a
//! machine-readable report is also written to `PATH` (default
//! `BENCH_inference.json`); CI runs this as a smoke step so the performance
//! trajectory is tracked per commit.

use ppl_bench::throughput::{
    admission_rows, amortization_rows, bench_json, block_rows, engine_timings, http_rows,
    mcmc_rows, observability_rows, overload_rows, serving_rows, throughput_rows, ThroughputConfig,
};
use std::process::ExitCode;

/// Counting allocator so the report can include `allocs_per_particle` /
/// `allocs_per_proposal` (the steady-state targets are zero); the counter
/// is a relaxed atomic increment per allocation, far below measurement
/// noise on the timed sections.
#[global_allocator]
static GLOBAL: ppl_bench::alloc_track::CountingAlloc = ppl_bench::alloc_track::CountingAlloc;

fn main() -> ExitCode {
    let mut config = ThroughputConfig::default();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = match args.peek() {
                    Some(next) if !next.starts_with("--") => args.next().unwrap(),
                    _ => "BENCH_inference.json".to_string(),
                };
                json_path = Some(path);
            }
            "--particles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.particles = n,
                None => return usage("--particles expects a positive integer"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.threads = n,
                None => return usage("--threads expects a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.seed = n,
                None => return usage("--seed expects an integer"),
            },
            "--block" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => config.block = n,
                _ => return usage("--block expects a positive integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    println!(
        "particle throughput — {} particles, 1 vs {} threads (seed {})",
        config.particles, config.threads, config.seed
    );
    let rows = throughput_rows(&config);
    println!(
        "{:<12} {:>14} {:>14} {:>9} {:>10} {:>14} {:>10} {:>10}",
        "benchmark",
        "1-thread p/s",
        "N-thread p/s",
        "speedup",
        "ess",
        "log-evidence",
        "identical",
        "allocs/p"
    );
    let mut all_identical = true;
    for r in &rows {
        all_identical &= r.bit_identical;
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>8.2}x {:>10.1} {:>14.4} {:>10} {:>10.3}",
            r.name,
            r.seq_particles_per_sec,
            r.par_particles_per_sec,
            r.speedup,
            r.ess,
            r.log_evidence,
            r.bit_identical,
            r.allocs_per_particle,
        );
    }

    println!("\nblock vs scalar — single thread, block 1 is the scalar reference");
    println!(
        "{:<12} {:>6} {:>14} {:>9} {:>10}",
        "benchmark", "block", "particles/s", "speedup", "identical"
    );
    let blocks = block_rows(&config);
    for r in &blocks {
        all_identical &= r.bit_identical;
        println!(
            "{:<12} {:>6} {:>14.0} {:>8.2}x {:>10}",
            r.name, r.block, r.particles_per_sec, r.speedup_vs_scalar, r.bit_identical,
        );
    }

    println!("\nMCMC proposal throughput — sequential chain, recycled scratch");
    println!(
        "{:<12} {:>10} {:>16} {:>12} {:>10}",
        "benchmark", "proposals", "proposals/sec", "acceptance", "allocs/p"
    );
    let mcmc = mcmc_rows(&config);
    for r in &mcmc {
        println!(
            "{:<12} {:>10} {:>16.0} {:>12.3} {:>10.3}",
            r.name, r.iterations, r.proposals_per_sec, r.acceptance_rate, r.allocs_per_proposal,
        );
    }

    println!("\nbatched serving — one compiled model, many observation sets");
    println!(
        "{:<14} {:>8} {:>12} {:>14} {:>14} {:>9} {:>10}",
        "benchmark",
        "queries",
        "particles/q",
        "1-thread q/s",
        "N-thread q/s",
        "speedup",
        "identical"
    );
    let serving = serving_rows(&config);
    for r in &serving {
        all_identical &= r.bit_identical;
        println!(
            "{:<14} {:>8} {:>12} {:>14.1} {:>14.1} {:>8.2}x {:>10}",
            r.name,
            r.queries,
            r.particles_per_query,
            r.seq_queries_per_sec,
            r.par_queries_per_sec,
            r.speedup,
            r.bit_identical,
        );
    }

    println!("\nHTTP serving — loopback ppl-serve, cold inference vs warm exact-cache hits");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>10} {:>6}",
        "benchmark", "requests", "particles/r", "cold req/s", "warm req/s", "hit rate", "ok"
    );
    let http = http_rows(&config);
    for r in &http {
        all_identical &= r.ok;
        println!(
            "{:<12} {:>9} {:>12} {:>12.1} {:>12.1} {:>10.3} {:>6}",
            r.name,
            r.requests,
            r.particles_per_request,
            r.cold_requests_per_sec,
            r.warm_requests_per_sec,
            r.cache_hit_rate,
            r.ok,
        );
    }

    println!("\nmodel admission — full pipeline compiles plus HTTP submit→first-query");
    println!(
        "{:<10} {:>14} {:>24} {:>6}",
        "compiles", "compiles/sec", "submit→first-query (s)", "ok"
    );
    let admission = admission_rows(&config);
    for r in &admission {
        all_identical &= r.ok;
        println!(
            "{:<10} {:>14.1} {:>24.4} {:>6}",
            r.compiles, r.compiles_per_sec, r.submit_to_first_query_seconds, r.ok,
        );
    }

    println!("\namortized inference — cold VI fit+draw vs artifact-warm draw (cache disabled)");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>12} {:>14} {:>6}",
        "benchmark", "fit iters", "draws", "cold q/s", "warm q/s", "amortization", "ok"
    );
    let amortization = amortization_rows(&config);
    for r in &amortization {
        all_identical &= r.ok;
        println!(
            "{:<10} {:>10} {:>8} {:>12.2} {:>12.1} {:>13.1}x {:>6}",
            r.name,
            r.fit_iterations,
            r.draw_particles,
            r.cold_queries_per_sec,
            r.warm_queries_per_sec,
            r.amortization,
            r.ok,
        );
    }

    println!("\noverload — fresh-connection storm vs a one-slot admission queue (cache disabled)");
    println!(
        "{:<10} {:>8} {:>9} {:>6} {:>10} {:>8} {:>13} {:>10} {:>6}",
        "benchmark",
        "accepted",
        "shed",
        "5xx",
        "shed rate",
        "p99 ms",
        "retry-after",
        "identical",
        "ok"
    );
    let overload = overload_rows(&config);
    for r in &overload {
        all_identical &= r.ok;
        println!(
            "{:<10} {:>8} {:>9} {:>6} {:>10.3} {:>8.1} {:>13} {:>10} {:>6}",
            r.name,
            r.accepted,
            r.shed,
            r.errors_5xx,
            r.shed_rate,
            r.accepted_p99_ms,
            r.retry_after_ok,
            r.post_storm_identical,
            r.ok,
        );
    }

    println!("\nobservability — flight-recorder overhead (in-process handler, cache disabled)");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>6}",
        "benchmark", "requests", "off req/s", "on req/s", "overhead %", "ok"
    );
    let observability = observability_rows(&config);
    for r in &observability {
        all_identical &= r.ok;
        println!(
            "{:<10} {:>8} {:>12.1} {:>12.1} {:>12.2} {:>6}",
            r.name,
            r.requests,
            r.off_requests_per_sec,
            r.on_requests_per_sec,
            r.tracing_on_overhead_pct,
            r.ok,
        );
    }

    println!("\nengine wall times");
    let engines = engine_timings(&config);
    for e in &engines {
        println!(
            "{:<6} {:<10} {:>9.3}s   {} = {:.4}",
            e.engine, e.benchmark, e.wall_seconds, e.metric, e.value
        );
    }

    if let Some(path) = json_path {
        let json = bench_json(
            &config,
            &rows,
            &blocks,
            &engines,
            &serving,
            &mcmc,
            &http,
            &admission,
            &amortization,
            &overload,
            &observability,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }

    if !all_identical {
        eprintln!("error: a determinism check failed (thread-count bit-identity or HTTP warm/cold byte-identity)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: ppl-bench [--json [PATH]] [--particles N] [--threads N] [--seed S] [--block N]"
    );
    ExitCode::FAILURE
}
