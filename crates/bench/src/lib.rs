//! Shared harness code for the experiment binaries and Criterion
//! benchmarks that regenerate the paper's tables and figures.
//!
//! * Table 1 — expressiveness comparison (`table1_expressiveness` binary,
//!   [`table1_rows`]);
//! * Table 2 — performance comparison between compiled/coroutine inference
//!   and handwritten inference (`table2_performance` binary,
//!   [`table2_rows`]);
//! * Fig. 2 — prior vs posterior density of `@x` in the Fig. 1 model
//!   (`fig2_posterior` binary, [`fig2_series`]);
//! * particle throughput of the zero-copy execution core — 1 vs N threads
//!   with bit-identical results (`ppl-bench` binary, [`throughput`]), with
//!   a `--json` mode that writes the machine-readable
//!   `BENCH_inference.json` tracked by CI.

pub mod alloc_track;
pub mod throughput;

use guide_ppl::{Method, Session};
use ppl_compiler::Style;
use ppl_dist::rng::Pcg32;
use ppl_dist::special::log_sum_exp;
use ppl_dist::{Distribution, Sample};
use ppl_inference::{ImportanceSampler, ParamSpec, VariationalInference, ViConfig};
use ppl_models::{
    all_benchmarks, benchmark, handwritten, handwritten_is, handwritten_vi, InferenceKind,
};
use ppl_runtime::JointSpec;
use std::time::{Duration, Instant};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Description (the Table 1 "Description" column).
    pub description: &'static str,
    /// `T?` — type-checks in the coroutine-based PPL.
    pub ours: bool,
    /// `LOC` — model lines of code (0 when not expressible).
    pub loc: usize,
    /// `TP?` — expressible under the trace-types baseline.
    pub trace_types: bool,
    /// Time taken by guide-type inference for the model + guide, if run.
    pub inference_time: Option<Duration>,
}

/// Computes every row of Table 1 (the `in_table1` subset of the registry).
pub fn table1_rows() -> Vec<Table1Row> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.in_table1)
        .map(|b| {
            if !b.expressible {
                return Table1Row {
                    name: b.name,
                    description: b.description,
                    ours: false,
                    loc: 0,
                    trace_types: false,
                    inference_time: None,
                };
            }
            let model = b.parsed_model().expect("parses").expect("expressible");
            let guide = b.parsed_guide().expect("parses").expect("expressible");
            let start = Instant::now();
            let ours = ppl_types::infer_program(&model).is_ok()
                && ppl_types::infer_program(&guide).is_ok();
            let elapsed = start.elapsed();
            let trace_types = ppl_tracetypes::check_proc(&model, &b.model_proc.into()).is_ok();
            Table1Row {
                name: b.name,
                description: b.description,
                ours,
                loc: b.model_loc(),
                trace_types,
                inference_time: Some(elapsed),
            }
        })
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Inference algorithm abbreviation (`IS` / `VI`).
    pub algorithm: &'static str,
    /// CG — type-inference + code-generation time.
    pub codegen_time: Duration,
    /// GLOC — generated (coroutine-style Pyro) lines of code.
    pub generated_loc: usize,
    /// GI — Bayesian-inference time on the compiled/coroutine path.
    pub coroutine_inference_time: Duration,
    /// HLOC — handwritten implementation lines of code.
    pub handwritten_loc: usize,
    /// HI — Bayesian-inference time on the handwritten path.
    pub handwritten_inference_time: Duration,
    /// Posterior statistic from the coroutine path (for sanity reporting).
    pub coroutine_estimate: f64,
    /// The same statistic from the handwritten path.
    pub handwritten_estimate: f64,
}

/// The workload sizes used by the Table 2 harness.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    /// Importance-sampling particle count.
    pub is_particles: usize,
    /// VI optimisation iterations.
    pub vi_iterations: usize,
    /// VI Monte-Carlo samples per iteration.
    pub vi_samples_per_iteration: usize,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            is_particles: 30_000,
            vi_iterations: 150,
            vi_samples_per_iteration: 10,
        }
    }
}

/// Computes every row of Table 2.
pub fn table2_rows(config: &Table2Config) -> Vec<Table2Row> {
    ppl_models::table2_benchmarks()
        .into_iter()
        .map(|(name, kind)| table2_row(name, kind, config))
        .collect()
}

fn table2_row(name: &'static str, kind: InferenceKind, config: &Table2Config) -> Table2Row {
    let b = benchmark(name).expect("registered benchmark");
    // CG: guide-type inference + Pyro code generation, measured together as
    // in the paper.
    let model = b.parsed_model().unwrap().unwrap();
    let guide = b.parsed_guide().unwrap().unwrap();
    let cg_start = Instant::now();
    ppl_types::infer_program(&model).expect("model types");
    ppl_types::infer_program(&guide).expect("guide types");
    let compiled =
        ppl_compiler::compile_pair(&model, b.model_proc, &guide, b.guide_proc, Style::Coroutine);
    let codegen_time = cg_start.elapsed();

    let session = Session::from_benchmark(name).expect("benchmark session");
    match kind {
        InferenceKind::ImportanceSampling => {
            let h = handwritten_is(name).expect("handwritten IS baseline");
            // GI: coroutine-based importance sampling.
            let mut rng = Pcg32::seed_from_u64(2_021);
            let gi_start = Instant::now();
            let executor = session.executor(b.observations.clone());
            let result = ImportanceSampler::new(config.is_particles)
                .run(&executor, &session.spec(), &mut rng)
                .expect("coroutine IS");
            let coroutine_inference_time = gi_start.elapsed();
            let coroutine_estimate = result.posterior_mean_of_sample(0).unwrap_or(f64::NAN);

            // HI: handwritten importance sampling with the same particle
            // count and seed.
            let mut rng = Pcg32::seed_from_u64(2_021);
            let hi_start = Instant::now();
            let handwritten_estimate =
                handwritten_importance(h.particle, &b.observations, config.is_particles, &mut rng);
            let handwritten_inference_time = hi_start.elapsed();
            Table2Row {
                name,
                algorithm: "IS",
                codegen_time,
                generated_loc: compiled.generated_loc,
                coroutine_inference_time,
                handwritten_loc: h.loc,
                handwritten_inference_time,
                coroutine_estimate,
                handwritten_estimate,
            }
        }
        InferenceKind::VariationalInference => {
            let h = handwritten_vi(name).expect("handwritten VI baseline");
            let params: Vec<ParamSpec> = b
                .guide_params
                .iter()
                .map(|p| {
                    if p.positive {
                        ParamSpec::positive(p.name, p.init)
                    } else {
                        ParamSpec::unconstrained(p.name, p.init)
                    }
                })
                .collect();
            let vi_config = ViConfig {
                iterations: config.vi_iterations,
                samples_per_iteration: config.vi_samples_per_iteration,
                learning_rate: 0.05,
                fd_epsilon: 1e-4,
                num_threads: 1,
                block: ppl_inference::DEFAULT_BLOCK,
            };
            // Engine-level VI (like the IS rows use the engine-level
            // sampler): the timed work is exactly the fit, matching what
            // the handwritten baseline below does.
            let executor = session.executor(b.observations.clone());
            let mut rng = Pcg32::seed_from_u64(7_777);
            let gi_start = Instant::now();
            let result = VariationalInference::new(vi_config.clone())
                .run(&executor, &session.spec(), &params, &mut rng)
                .expect("coroutine VI");
            let coroutine_inference_time = gi_start.elapsed();
            let coroutine_estimate = result.final_elbo();

            let mut rng = Pcg32::seed_from_u64(7_777);
            let hi_start = Instant::now();
            let handwritten_estimate = handwritten_vi_run(
                &h,
                &b.observations,
                &b.initial_guide_args(),
                &b.guide_params
                    .iter()
                    .map(|p| p.positive)
                    .collect::<Vec<_>>(),
                &vi_config,
                &mut rng,
            );
            let handwritten_inference_time = hi_start.elapsed();
            Table2Row {
                name,
                algorithm: "VI",
                codegen_time,
                generated_loc: compiled.generated_loc,
                coroutine_inference_time,
                handwritten_loc: h.loc,
                handwritten_inference_time,
                coroutine_estimate,
                handwritten_estimate,
            }
        }
        InferenceKind::Mcmc => unreachable!("Table 2 uses IS and VI only"),
    }
}

/// Handwritten self-normalised importance sampling: returns the posterior
/// mean of the statistic produced by the particle function.
pub fn handwritten_importance(
    particle: handwritten::IsParticleFn,
    observations: &[Sample],
    num_particles: usize,
    rng: &mut Pcg32,
) -> f64 {
    let mut stats = Vec::with_capacity(num_particles);
    let mut log_weights = Vec::with_capacity(num_particles);
    for _ in 0..num_particles {
        let (stat, lw) = particle(rng, observations);
        stats.push(stat);
        log_weights.push(lw);
    }
    let lse = log_sum_exp(&log_weights);
    stats
        .iter()
        .zip(&log_weights)
        .map(|(s, lw)| s * (lw - lse).exp())
        .sum()
}

/// Handwritten variational inference mirroring the coroutine VI engine
/// (same REINFORCE estimator, baseline, finite-difference scores, and Adam
/// schedule); returns the final ELBO estimate.
pub fn handwritten_vi_run(
    h: &handwritten::HandwrittenVi,
    observations: &[Sample],
    init_params: &[f64],
    positive: &[bool],
    config: &ViConfig,
    rng: &mut Pcg32,
) -> f64 {
    let dim = init_params.len();
    let mut theta: Vec<f64> = init_params
        .iter()
        .zip(positive)
        .map(|(&p, &pos)| if pos { p.ln() } else { p })
        .collect();
    let constrain = |theta: &[f64]| -> Vec<f64> {
        theta
            .iter()
            .zip(positive)
            .map(|(&t, &pos)| if pos { t.exp() } else { t })
            .collect()
    };
    let (mut m, mut v) = (vec![0.0; dim], vec![0.0; dim]);
    let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
    let mut last_elbo = f64::NEG_INFINITY;
    for t in 1..=config.iterations {
        let params = constrain(&theta);
        let mut fs = Vec::with_capacity(config.samples_per_iteration);
        let mut latents = Vec::with_capacity(config.samples_per_iteration);
        for _ in 0..config.samples_per_iteration {
            let (z, log_q) = (h.sample_guide)(rng, &params);
            let f = (h.log_joint)(&z, observations) - log_q;
            fs.push(f);
            latents.push(z);
        }
        let baseline = fs.iter().sum::<f64>() / fs.len() as f64;
        last_elbo = baseline;
        let mut grad = vec![0.0; dim];
        for (f, z) in fs.iter().zip(&latents) {
            let advantage = f - baseline;
            if advantage == 0.0 {
                continue;
            }
            for d in 0..dim {
                let mut plus = theta.clone();
                plus[d] += config.fd_epsilon;
                let mut minus = theta.clone();
                minus[d] -= config.fd_epsilon;
                let lp = (h.log_guide)(z, &constrain(&plus));
                let lm = (h.log_guide)(z, &constrain(&minus));
                grad[d] += advantage * (lp - lm) / (2.0 * config.fd_epsilon);
            }
        }
        for g in grad.iter_mut() {
            *g /= config.samples_per_iteration as f64;
        }
        for i in 0..dim {
            m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
            v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
            let m_hat = m[i] / (1.0 - beta1_pow(beta1, t));
            let v_hat = v[i] / (1.0 - beta1_pow(beta2, t));
            theta[i] += config.learning_rate * m_hat / (v_hat.sqrt() + eps);
        }
    }
    last_elbo
}

fn beta1_pow(beta: f64, t: usize) -> f64 {
    beta.powi(t as i32)
}

/// One point of the Fig. 2 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Point {
    /// The value of the latent `@x`.
    pub x: f64,
    /// Prior density `Gamma(2, 1)` at `x`.
    pub prior: f64,
    /// Estimated posterior density at `x` given `@z = 0.8`.
    pub posterior: f64,
}

/// Regenerates the Fig. 2 series: prior and posterior densities of `@x`.
pub fn fig2_series(num_particles: usize, bins: usize, seed: u64) -> Vec<Fig2Point> {
    let session = Session::from_benchmark("ex-1").expect("ex-1 is registered");
    let posterior = session
        .query()
        .observe(vec![Sample::Real(0.8)])
        .seed(seed)
        .run(&Method::Importance {
            particles: num_particles,
        })
        .expect("importance sampling");
    let posterior = posterior.as_importance().expect("IS result");
    let hist = posterior.weighted_histogram(0.0, 7.0, bins, |p| Some(p.samples[0].as_f64()));
    let prior = Distribution::gamma(2.0, 1.0).expect("parameters");
    hist.centers()
        .iter()
        .zip(hist.densities())
        .map(|(&x, posterior)| Fig2Point {
            x,
            prior: prior.density(&Sample::Real(x)),
            posterior,
        })
        .collect()
}

/// Convenience: the default joint spec of a benchmark (used by the
/// Criterion benchmark groups).
pub fn spec_of(b: &ppl_models::Benchmark) -> JointSpec {
    JointSpec::new(b.model_proc, b.guide_proc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper_verdicts() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 15);
        let row = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Our PPL expresses everything except dp.
        assert!(rows.iter().filter(|r| r.ours).count() == 14);
        // Trace types accept the 8 classical models but none of the
        // branching/recursive ones.
        for accepted in [
            "lr",
            "gmm",
            "kalman",
            "sprinkler",
            "hmm",
            "aircraft",
            "weight",
            "vae",
        ] {
            assert!(row(accepted).trace_types, "{accepted}");
        }
        for rejected in [
            "branching",
            "marsaglia",
            "dp",
            "ptrace",
            "ex-1",
            "ex-2",
            "gp-dsl",
        ] {
            assert!(!row(rejected).trace_types, "{rejected}");
        }
        assert!(row("ex-1").loc >= 10);
        // Type inference stays in the milliseconds regime.
        for r in &rows {
            if let Some(t) = r.inference_time {
                assert!(t.as_millis() < 100, "{}: {t:?}", r.name);
            }
        }
    }

    #[test]
    fn table2_small_workload_produces_consistent_estimates() {
        // Since the engine refactor the coroutine path draws from
        // per-particle RNG substreams, so the two estimates are fully
        // independent Monte-Carlo runs; the particle count keeps their
        // difference within the tolerance below.
        let config = Table2Config {
            is_particles: 12_000,
            vi_iterations: 30,
            vi_samples_per_iteration: 6,
        };
        let rows = table2_rows(&config);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.generated_loc > 20, "{}", row.name);
            assert!(row.handwritten_loc > 5, "{}", row.name);
            assert!(row.generated_loc > row.handwritten_loc, "{}", row.name);
            assert!(row.codegen_time.as_millis() < 200, "{}", row.name);
            assert!(row.coroutine_inference_time > Duration::ZERO);
            assert!(row.handwritten_inference_time > Duration::ZERO);
            if row.algorithm == "IS" {
                // The two paths implement the same estimator; with the same
                // particle counts their estimates should be close.
                assert!(
                    (row.coroutine_estimate - row.handwritten_estimate).abs() < 1.0,
                    "{}: {} vs {}",
                    row.name,
                    row.coroutine_estimate,
                    row.handwritten_estimate
                );
            } else {
                assert!(row.coroutine_estimate.is_finite());
                assert!(row.handwritten_estimate.is_finite());
            }
        }
    }

    #[test]
    fn fig2_series_shows_posterior_shift() {
        let series = fig2_series(30_000, 28, 5);
        assert_eq!(series.len(), 28);
        // The prior integrates to ~1 over the plotted range.
        let width = 7.0 / 28.0;
        let prior_mass: f64 = series.iter().map(|p| p.prior * width).sum();
        let posterior_mass: f64 = series.iter().map(|p| p.posterior * width).sum();
        assert!((prior_mass - 1.0).abs() < 0.05, "prior mass {prior_mass}");
        assert!(posterior_mass > 0.9, "posterior mass {posterior_mass}");
        // Conditioning on z = 0.8 moves mass towards larger x: the posterior
        // mean exceeds the prior mean restricted to the grid.
        let prior_mean: f64 = series.iter().map(|p| p.x * p.prior * width).sum();
        let post_mean: f64 = series.iter().map(|p| p.x * p.posterior * width).sum();
        assert!(
            post_mean > prior_mean + 0.2,
            "posterior mean {post_mean} vs prior mean {prior_mean}"
        );
    }

    #[test]
    fn handwritten_and_coroutine_is_agree_on_ex1() {
        use guide_ppl::Posterior;
        let b = benchmark("ex-1").unwrap();
        let h = handwritten_is("ex-1").unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        let hand = handwritten_importance(h.particle, &b.observations, 40_000, &mut rng);
        let session = Session::from_benchmark("ex-1").unwrap();
        let coro = session
            .query()
            .observe(b.observations.clone())
            .seed(2)
            .run(&Method::Importance { particles: 40_000 })
            .unwrap()
            .mean_of_sample(0)
            .unwrap();
        assert!(
            (hand - coro).abs() < 0.1,
            "handwritten {hand} vs coroutine {coro}"
        );
    }
}
