//! Model ingestion: `POST /v1/models` and the `/v1/models/{id}` lifecycle.
//!
//! This is where the paper's type system becomes an *admission-control
//! policy*.  A submission carries untrusted model and guide source text;
//! the server runs the full pipeline — parse, guide-type inference,
//! model–guide compatibility (the absolute-continuity certificate of
//! Theorem 5.2), compilation — and only a pair that passes every stage is
//! registered and becomes queryable through `/v1/query` / `/v1/batch`.
//! Every rejection is a structured `400` with a stable machine-readable
//! code (`parse.unexpected_token`, `type.guide_mismatch`, …) and, where
//! the offending program came from source text, a 1-based line:column
//! position.  Submissions never produce a `500` and never crash a worker.
//!
//! # Content-hash ids
//!
//! An admitted model is registered under `m-<16 hex>`: the SHA-256 of the
//! length-prefixed `(model_src, model_proc, guide_src, guide_proc)` tuple.
//! Identical sources therefore map to the same id — re-submission is
//! idempotent (`200` with `"created": false` instead of `201`) — and the
//! id is safe to embed in response-cache fingerprints: an id names exactly
//! one program pair forever, so cached bytes stay valid across eviction
//! and re-submission.
//!
//! # Resource fences
//!
//! Submitters are untrusted, so every stage is bounded:
//!
//! * source size — each source is capped at [`MAX_SOURCE_BYTES`]
//!   (`limit.source_bytes`), under the transport's 1 MiB body cap;
//! * parse depth — the parser rejects nesting beyond
//!   `ppl_syntax::MAX_PARSE_DEPTH` (`parse.depth`) instead of smashing the
//!   stack;
//! * compile fuel — programs larger than [`MAX_PROGRAM_NODES`] command
//!   nodes are rejected (`limit.compile_fuel`) before type inference,
//!   which bounds checker and compiler work (both linear in node count)
//!   and caps recursion over flat command chains;
//! * execution budget — admitted models carry
//!   [`crate::registry::MAX_USER_MODEL_EXECUTIONS`], a tenth of the
//!   builtin per-request budget, enforced by the same
//!   `MAX_REQUEST_EXECUTIONS` accounting as every other request;
//! * registry pressure — user models live in a bounded LRU table
//!   (builtins are never evicted).

use crate::api::{bad_schema, model_json, parse_body, ApiError, App};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::registry::{ModelEntry, ModelOrigin, MAX_USER_MODEL_EXECUTIONS};
use guide_ppl::{Session, SessionError};
use ppl_syntax::{parse_program, ParseError, Program};
use ppl_types::infer_program;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Maximum byte length of each submitted source (model and guide
/// separately).
pub const MAX_SOURCE_BYTES: usize = 64 * 1024;

/// Maximum total command nodes across both programs (compile fuel).
///
/// Type checking, trace-type analysis, and compilation are linear in this
/// count, and several of those passes recurse along `Bind` chains — the
/// fuel keeps that recursion shallow enough for a 2 MiB worker stack with
/// a wide margin.
pub const MAX_PROGRAM_NODES: usize = 512;

/// Maximum byte length of a submitted model name.
pub const MAX_NAME_BYTES: usize = 64;

/// Handles `POST /v1/models`: admits or rejects a submitted model–guide
/// pair.
pub fn submit(app: &Arc<App>, req: &Request) -> Result<Response, ApiError> {
    if app.registry.user_capacity() == 0 {
        return Err(ApiError::new(
            403,
            "model.submissions_disabled",
            "this server runs with --user-models 0; submissions are disabled",
        ));
    }
    let doc = parse_body(req)?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema("'name' must be a string"))?;
    if name.is_empty() || name.len() > MAX_NAME_BYTES {
        return Err(bad_schema(format!(
            "'name' must be 1..={MAX_NAME_BYTES} bytes"
        )));
    }
    let model_src = source_field(&doc, "model_src")?;
    let guide_src = source_field(&doc, "guide_src")?;

    // Parse both programs; the parser's own depth fence turns pathological
    // nesting into `parse.depth` rather than a stack overflow.
    let model_prog = parse_program(model_src).map_err(|e| parse_error("model", e))?;
    let guide_prog = parse_program(guide_src).map_err(|e| parse_error("guide", e))?;

    // Compile fuel: everything downstream is linear in command nodes.
    let nodes = model_prog.size() + guide_prog.size();
    if nodes > MAX_PROGRAM_NODES {
        return Err(ApiError::new(
            400,
            "limit.compile_fuel",
            format!(
                "programs total {nodes} command nodes, above the admission limit of {MAX_PROGRAM_NODES}"
            ),
        )
        .with("nodes", Json::Num(nodes as f64))
        .with("limit", Json::Num(MAX_PROGRAM_NODES as f64)));
    }

    let model_proc = proc_field(&doc, "model_proc", "model", &model_prog)?;
    let guide_proc = proc_field(&doc, "guide_proc", "guide", &guide_prog)?;

    // The id is a pure function of the sources: identical submissions are
    // idempotent, and the id can never alias a different program pair.
    let id = model_id(model_src, &model_proc, guide_src, &guide_proc);
    if let Some(existing) = app.registry.get(&id) {
        existing
            .submissions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        return Ok(submit_response(200, &existing, false));
    }

    // Guide-type inference per program first, so a type error names which
    // source it came from; the session build below re-uses the same
    // algorithms and cannot fail earlier than these did.
    infer_program(&model_prog).map_err(|e| type_error(Some("model"), e.into()))?;
    infer_program(&guide_prog).map_err(|e| type_error(Some("guide"), e.into()))?;

    // The admission gate: model–guide compatibility (Theorem 5.2) plus
    // compilation to shared program tables.
    let session = Session::from_programs(model_prog, &model_proc, guide_prog, &guide_proc)
        .map_err(|e| type_error(None, e))?;

    let entry = ModelEntry {
        id: id.clone(),
        name: name.to_string(),
        description: format!("user model (proc {model_proc} / guide {guide_proc})"),
        latent_protocol: session.latent_protocol(),
        observation_protocol: session.observation_protocol(),
        default_observation_count: 0,
        default_method: "IS",
        guide_param_defaults: Vec::new(),
        session: Arc::new(session),
        origin: ModelOrigin::User,
        max_request_executions: MAX_USER_MODEL_EXECUTIONS,
        submissions: AtomicU64::new(1),
        queries: AtomicU64::new(0),
        executions: AtomicU64::new(0),
        execution_nanos: AtomicU64::new(0),
    };
    match app.registry.insert_user(entry) {
        Some((entry, created)) => Ok(submit_response(
            if created { 201 } else { 200 },
            &entry,
            created,
        )),
        None => Err(ApiError::new(
            403,
            "model.submissions_disabled",
            "this server runs with --user-models 0; submissions are disabled",
        )),
    }
}

/// Handles `GET /v1/models/{id}`.
pub fn get_model(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    let entry = app.registry.get(id).ok_or_else(|| unknown_model(id))?;
    let body = model_json(&entry);
    Ok(Response::json(200, body.write().expect("finite")))
}

/// Handles `DELETE /v1/models/{id}`: removes a user model.  Builtins are
/// part of the served catalogue and cannot be deleted.
pub fn delete_model(app: &Arc<App>, id: &str) -> Result<Response, ApiError> {
    match app.registry.get(id) {
        None => Err(unknown_model(id)),
        Some(entry) if entry.origin == ModelOrigin::Builtin => Err(ApiError::new(
            403,
            "model.builtin",
            format!("model '{id}' is a builtin benchmark and cannot be deleted"),
        )),
        Some(_) => {
            app.registry.remove_user(id);
            let body = Json::Obj(vec![("deleted".into(), Json::str(id))]);
            Ok(Response::json(200, body.write().expect("finite")))
        }
    }
}

fn unknown_model(id: &str) -> ApiError {
    ApiError::new(
        404,
        "model.unknown",
        format!("no model '{id}' in the registry"),
    )
}

fn source_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    let src = doc
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad_schema(format!("'{key}' must be a string of source text")))?;
    if src.len() > MAX_SOURCE_BYTES {
        return Err(ApiError::new(
            400,
            "limit.source_bytes",
            format!(
                "'{key}' is {} bytes, above the admission limit of {MAX_SOURCE_BYTES}",
                src.len()
            ),
        )
        .with("source", Json::str(key.trim_end_matches("_src")))
        .with("bytes", Json::Num(src.len() as f64))
        .with("limit", Json::Num(MAX_SOURCE_BYTES as f64)));
    }
    Ok(src)
}

fn proc_field(doc: &Json, key: &str, which: &str, program: &Program) -> Result<String, ApiError> {
    let name = match doc.get(key) {
        Some(json) => json
            .as_str()
            .ok_or_else(|| bad_schema(format!("'{key}' must be a string")))?
            .to_string(),
        // Default to the first declared procedure.
        None => program
            .procs
            .first()
            .map(|p| p.name.as_str().to_string())
            .ok_or_else(|| bad_schema(format!("{which}_src declares no procedures")))?,
    };
    if program.proc_named(&name).is_none() {
        return Err(bad_schema(format!(
            "{which}_src declares no procedure named '{name}'"
        )));
    }
    Ok(name)
}

/// Maps a [`ParseError`] to the structured 400 body, naming the offending
/// source and position.
fn parse_error(source: &str, e: ParseError) -> ApiError {
    ApiError::new(400, e.code(), e.to_string())
        .with("source", Json::str(source))
        .with("line", Json::Num(e.line as f64))
        .with("col", Json::Num(e.col as f64))
}

/// Maps a pipeline [`SessionError`] to the structured 400 body.  `source`
/// names the program the error is attributed to, when known (model–guide
/// compatibility errors span both).
fn type_error(source: Option<&str>, e: SessionError) -> ApiError {
    let mut api = ApiError::new(400, e.code(), e.to_string());
    if let Some(source) = source {
        api = api.with("source", Json::str(source));
    }
    if let Some((line, col)) = e.position() {
        api = api
            .with("line", Json::Num(line as f64))
            .with("col", Json::Num(col as f64));
    }
    if let SessionError::Incompatible {
        model_latent,
        guide_latent,
    } = &e
    {
        api = api
            .with("model_latent", Json::str(model_latent.clone()))
            .with("guide_latent", Json::str(guide_latent.clone()));
    }
    api
}

fn submit_response(status: u16, entry: &ModelEntry, created: bool) -> Response {
    let mut fields = match model_json(entry) {
        Json::Obj(fields) => fields,
        _ => unreachable!("model_json returns an object"),
    };
    fields.push(("created".into(), Json::Bool(created)));
    Response::json(status, Json::Obj(fields).write().expect("finite"))
}

/// The deterministic content-hash model id: `m-` plus the first 16 hex
/// digits of the SHA-256 of the length-prefixed source tuple.  Length
/// prefixes keep the encoding injective (no concatenation ambiguity
/// between the four fields).
pub fn model_id(model_src: &str, model_proc: &str, guide_src: &str, guide_proc: &str) -> String {
    let mut hasher = Sha256::new();
    for part in [model_src, model_proc, guide_src, guide_proc] {
        hasher.update(&(part.len() as u64).to_le_bytes());
        hasher.update(part.as_bytes());
    }
    let digest = hasher.finalize();
    let mut id = String::with_capacity(18);
    id.push_str("m-");
    for byte in &digest[..8] {
        use std::fmt::Write;
        let _ = write!(id, "{byte:02x}");
    }
    id
}

// ---------------------------------------------------------------- SHA-256
//
// A minimal, dependency-free SHA-256 (FIPS 180-4).  Only used to derive
// content-hash model ids — not a general-purpose crypto surface.

struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // The padding bytes above must not count towards the message
        // length, but `update` already added them; the length word was
        // captured before padding, so just write it.
        let block_tail = bit_length.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&block_tail);
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        let empty = Sha256::new().finalize();
        assert_eq!(
            hex(empty),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let mut h = Sha256::new();
        h.update(b"abc");
        assert_eq!(
            hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (exercises padding across a boundary).
        let mut h = Sha256::new();
        h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            hex(h.finalize()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Incremental updates agree with one-shot hashing.
        let mut h = Sha256::new();
        h.update(b"ab");
        h.update(b"c");
        assert_eq!(
            hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn model_ids_are_deterministic_and_injective_on_field_boundaries() {
        let a = model_id("proc A", "A", "proc G", "G");
        assert_eq!(a, model_id("proc A", "A", "proc G", "G"));
        assert!(a.starts_with("m-") && a.len() == 18, "{a}");
        // Shifting bytes across the field boundary changes the id.
        assert_ne!(a, model_id("proc AA", "", "proc G", "G"));
        assert_ne!(a, model_id("proc A", "A", "proc GG", ""));
    }
}
