//! Quickstart: write a model and a guide, let guide-type inference certify
//! that they are compatible (absolutely continuous), and run importance
//! sampling on the posterior through the validated query layer.
//!
//! Run with `cargo run --example quickstart`.

use guide_ppl::{Method, Posterior, Session};
use ppl_dist::Sample;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A conjugate normal–normal model: latent x ~ N(0, 1), one noisy
    // observation y ~ N(x, 1).
    let model = r#"
        proc Model() : real consume latent provide obs {
          let x <- sample recv latent (Normal(0.0, 1.0));
          let _ <- sample send obs (Normal(x, 1.0));
          return x
        }
    "#;
    // The guide proposes x from a wider normal.
    let guide = r#"
        proc Guide() provide latent {
          let x <- sample send latent (Normal(0.0, 1.5));
          return ()
        }
    "#;

    // Parse, type-check, infer guide types, and check compatibility.
    let session = Session::from_sources(model, "Model", guide, "Guide")?;
    println!("latent protocol : {}", session.latent_protocol());
    println!("compatible      : {}", session.compatibility().compatible);

    // Condition on y = 1.0 and approximate the posterior of x.  The query
    // is validated against the model's observation protocol before any
    // particle runs, and the seed makes the run reproducible.
    let posterior = session
        .query()
        .observe(vec![Sample::Real(1.0)])
        .seed(2021)
        .run(&Method::Importance { particles: 20_000 })?;
    let summary = posterior.summarize_sample(0).expect("x is always sampled");
    println!(
        "posterior mean  : {:.3}   (analytic answer: 0.500)",
        summary.mean
    );
    println!(
        "posterior stdev : {:.3}   (analytic answer: 0.707)",
        summary.std_dev()
    );
    println!(
        "90% interval    : [{:.3}, {:.3}]",
        summary.quantiles.q05, summary.quantiles.q95
    );
    println!("effective sample size: {:.0}", posterior.ess());
    println!(
        "log evidence    : {:.3}",
        posterior.log_evidence().expect("IS estimates evidence")
    );

    // A malformed request never reaches the engines: the validator names
    // the offending position and the expected protocol.
    let rejected = session
        .query()
        .observe(vec![Sample::Real(1.0), Sample::Real(2.0)])
        .build()
        .unwrap_err();
    println!("\nrejected query  : {rejected}");

    // The same pair compiled to Pyro (coroutine style).
    let compiled = session.compile_to_pyro(guide_ppl::Style::Coroutine);
    println!(
        "\ngenerated Pyro code: {} non-blank lines",
        compiled.generated_loc
    );
    Ok(())
}
