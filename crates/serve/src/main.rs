//! The `ppl-serve` binary: boot the registry, bind, and serve until
//! asked to drain.
//!
//! ```text
//! ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N]
//!           [--block N] [--store-dir PATH] [--store-capacity N]
//!           [--deadline-ms N] [--queue N] [--query-cap N] [--fit-cap N]
//!           [--drain-ms N] [--log-level LEVEL] [--trace on|off]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:8080`; use port 0 to bind an ephemeral
//! port (the bound address is printed, which is how the CI smoke step
//! finds it).  `--workers` sets the connection-handling thread count
//! (default 4) and `--cache` the response-cache capacity (default 256
//! responses; 0 disables caching).  `--user-models` caps the table of
//! models admitted through `POST /v1/models` (default 32; 0 disables
//! submissions — the server then serves builtins only).  `--block` sets
//! the default vectorised-execution block size (default 64); requests may
//! override it per-query, and it never changes results — block size is a
//! pure performance knob.  `--store-dir` makes the fitted-guide artifact
//! store persistent: artifacts created by `POST /v1/fit` are written there
//! (atomic write-then-rename), and the index is warm-started from the
//! directory at boot so a restarted server answers artifact queries with
//! zero refits.  Without it the store is in-memory only.
//! `--store-capacity` bounds the number of resident artifacts (default
//! 256); the least-recently-used artifact — and its file — is evicted
//! beyond that.
//!
//! # Overload and deadlines
//!
//! `--deadline-ms` is the default per-request deadline (30 000 ms; 0
//! disables it) applied when a request carries no `"deadline_ms"` field —
//! expiry answers `408 query.deadline_exceeded` at the next particle
//! block.  `--queue` bounds the transport admission queue (default 128
//! accepted-but-undispatched connections; overflow is shed with
//! `429 server.overloaded` + `Retry-After`).  `--query-cap` and
//! `--fit-cap` bound concurrently *running* queries (default 32) and fits
//! (default 4).  On SIGINT/SIGTERM the server drains: it stops accepting,
//! rejects new work with `503 server.draining`, cancels in-flight
//! inference via the drain token, and exits once active connections hit
//! zero or `--drain-ms` (default 5 000) passes.
//! See the README's "Limits, deadlines, and overload behaviour".
//!
//! # Observability
//!
//! The server logs structured JSON to **stderr** — one object per line
//! with `ts` (seconds since boot), `level`, `code`, and `msg` fields —
//! while the CI-grepped boot lines stay on stdout.  `--log-level`
//! (`error|warn|info|debug`, default `info`) sets the threshold.
//! `--trace off` disables the flight recorder (per-phase spans, the
//! `/v1/trace` ring, engine-quality gauges); it is on by default and
//! its steady-state cost is a few atomic adds per request.
//! See the README's "Observability".

use ppl_serve::obs::log::{self, Value};
use ppl_serve::{App, AppLimits, Registry, Server, ServerConfig};
use ppl_store::{Store, DEFAULT_STORE_CAPACITY};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler; polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: the one operation that is async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers via the libc `signal` already linked
/// into every std binary (std itself exposes no signal API).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SIGINT = 2, SIGTERM = 15 (POSIX).
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut workers = 4usize;
    let mut cache = 256usize;
    let mut user_models = ppl_serve::registry::DEFAULT_USER_MODEL_CAPACITY;
    let mut block = ppl_inference::DEFAULT_BLOCK;
    let mut store_dir: Option<String> = None;
    let mut store_capacity = DEFAULT_STORE_CAPACITY;
    let mut deadline_ms = 30_000u64;
    let mut queue = ppl_serve::http::DEFAULT_QUEUE_CAPACITY;
    let mut limits = AppLimits::default();
    let mut drain_ms = 5_000u64;
    let mut log_level = ppl_serve::obs::log::Level::Info;
    let mut trace_on = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr expects HOST:PORT"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => return usage("--workers expects a positive integer"),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cache = n,
                None => return usage("--cache expects a non-negative integer"),
            },
            "--user-models" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => user_models = n,
                None => return usage("--user-models expects a non-negative integer"),
            },
            "--block" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => block = n,
                _ => return usage("--block expects a positive integer"),
            },
            "--store-dir" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => return usage("--store-dir expects a directory path"),
            },
            "--store-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => store_capacity = n,
                _ => return usage("--store-capacity expects a positive integer"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => deadline_ms = n,
                None => return usage("--deadline-ms expects a non-negative integer (0 disables)"),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => queue = n,
                _ => return usage("--queue expects a positive integer"),
            },
            "--query-cap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => limits.query_concurrency = n,
                _ => return usage("--query-cap expects a positive integer"),
            },
            "--fit-cap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => limits.fit_concurrency = n,
                _ => return usage("--fit-cap expects a positive integer"),
            },
            "--drain-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => drain_ms = n,
                None => return usage("--drain-ms expects a non-negative integer"),
            },
            "--log-level" => match args
                .next()
                .as_deref()
                .and_then(ppl_serve::obs::log::Level::parse)
            {
                Some(level) => log_level = level,
                None => return usage("--log-level expects error|warn|info|debug"),
            },
            "--trace" => match args.next().as_deref() {
                Some("on") => trace_on = true,
                Some("off") => trace_on = false,
                _ => return usage("--trace expects on|off"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    limits.default_deadline_ms = (deadline_ms > 0).then_some(deadline_ms);
    log::set_level(log_level);

    let registry = Registry::from_benchmarks().with_user_capacity(user_models);
    println!("ppl-serve: {} models compiled", registry.len());
    let store = match &store_dir {
        Some(dir) => match Store::open(std::path::Path::new(dir), store_capacity) {
            Ok(store) => store,
            Err(e) => {
                log::error(
                    "store.open_failed",
                    "cannot open artifact store",
                    &[
                        ("dir", Value::s(dir.as_str())),
                        ("error", e.to_string().into()),
                    ],
                );
                return ExitCode::FAILURE;
            }
        },
        None => Store::in_memory(store_capacity),
    };
    if store_dir.is_some() {
        println!(
            "ppl-serve: {} artifacts loaded ({} skipped)",
            store.len(),
            store.skipped_at_boot()
        );
    }
    let app = App::with_limits(registry, cache, block, std::sync::Arc::new(store), limits);
    app.obs.set_enabled(trace_on);
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        shed_counter: Some(app.metrics.queue_sheds_handle()),
        recorder: Some(std::sync::Arc::clone(&app.obs)),
        ..ServerConfig::default()
    };
    let server = match Server::bind_with_config(addr.as_str(), config, app.handler()) {
        Ok(server) => server,
        Err(e) => {
            log::error(
                "server.bind_failed",
                "cannot bind listen address",
                &[("addr", Value::s(&addr)), ("error", e.to_string().into())],
            );
            return ExitCode::FAILURE;
        }
    };
    println!("ppl-serve listening on http://{}", server.local_addr());
    // The smoke step greps this line from a pipe; make sure it arrives.
    let _ = std::io::stdout().flush();
    log::info(
        "server.boot",
        "ppl-serve accepting requests",
        &[
            ("version", Value::s(env!("CARGO_PKG_VERSION"))),
            ("addr", server.local_addr().to_string().into()),
            ("workers", workers.into()),
            ("cache", cache.into()),
            ("block", block.into()),
            ("queue", queue.into()),
            ("deadline_ms", deadline_ms.into()),
            ("models", app.registry.len().into()),
            (
                "store",
                Value::s(if store_dir.is_some() {
                    "persistent"
                } else {
                    "memory"
                }),
            ),
            ("artifacts", app.store.len().into()),
            ("trace", trace_on.into()),
            ("log_level", Value::s(log_level.as_str())),
        ],
    );

    install_signal_handlers();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }

    // Graceful drain: reject new work (503 + Connection: close), cancel
    // in-flight inference at its next block poll, then wait out the
    // stragglers under the drain budget.
    println!(
        "ppl-serve: draining ({} active connections, {drain_ms}ms budget)",
        server.active_connections()
    );
    let _ = std::io::stdout().flush();
    log::info(
        "server.draining",
        "signal received, draining",
        &[
            ("active_connections", server.active_connections().into()),
            ("drain_ms", drain_ms.into()),
        ],
    );
    app.begin_drain();
    server.shutdown_with_deadline(Duration::from_millis(drain_ms), || {
        log::warn(
            "server.drain_deadline",
            "drain deadline passed with connections still active",
            &[("drain_ms", drain_ms.into())],
        );
    });
    println!("ppl-serve: drained, exiting");
    log::info("server.drained", "drain complete, exiting", &[]);
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    log::error(
        "cli.usage",
        problem,
        &[(
            "usage",
            Value::s(
                "ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N] \
                 [--block N] [--store-dir PATH] [--store-capacity N] [--deadline-ms N] \
                 [--queue N] [--query-cap N] [--fit-cap N] [--drain-ms N] \
                 [--log-level LEVEL] [--trace on|off]",
            ),
        )],
    );
    ExitCode::FAILURE
}
