//! The unified posterior interface shared by every inference engine.
//!
//! Importance sampling, Metropolis–Hastings, and variational inference
//! produce structurally different results (weighted particles, a chain of
//! states, a fitted parameter vector), but a caller asking "what is the
//! posterior mean / variance / quantile / histogram of this statistic?"
//! should not care which engine answered.  This module holds:
//!
//! * [`Draw`] — one weighted posterior draw, the common currency: a slice
//!   of latent sample values, a relative weight, and the model's scalar
//!   return value when one was recorded;
//! * [`Posterior`] — the engine-agnostic trait: results expose their draws
//!   plus run-level figures (ESS, log-evidence, diagnostics) and inherit
//!   every summary statistic from the trait's provided methods;
//! * [`PosteriorSummary`] — the one-stop description of a statistic
//!   (mean, variance, quantiles, histogram, ESS, log-evidence);
//! * [`ViPosterior`] — the VI engine's posterior: the fitted [`ViResult`]
//!   plus weighted draws from the fitted guide, making VI interchangeable
//!   with IS and MCMC behind the trait.
//!
//! All expectation-style methods follow the **skip-and-renormalise
//! contract** documented on
//! [`ImportanceResult::posterior_expectation`](crate::ImportanceResult::posterior_expectation):
//! draws where the statistic is undefined are skipped and the remaining
//! weights renormalised, i.e. the result is the expectation *conditioned
//! on the statistic being defined*; `None` means no estimate exists at
//! all.

use crate::importance::ImportanceResult;
use crate::mcmc::McmcResult;
use crate::vi::ViResult;
use ppl_dist::stats::Histogram;
use ppl_dist::Sample;

/// One weighted posterior draw.
#[derive(Debug, Clone, Copy)]
pub struct Draw<'a> {
    /// The latent sample values, in sampling order.
    pub samples: &'a [Sample],
    /// The draw's relative weight (consumers renormalise; MCMC states have
    /// unit weight, IS particles their self-normalised weight).
    pub weight: f64,
    /// The model's return value, when it was recorded as a scalar.
    pub value: Option<f64>,
}

/// The weighted expectation of partially defined values under the
/// skip-and-renormalise contract: pairs where the value is `None` are
/// skipped, and the mean is taken over the rest with weights renormalised.
/// `None` when the defined pairs carry no weight.
pub fn weighted_expectation(pairs: impl Iterator<Item = (Option<f64>, f64)>) -> Option<f64> {
    let mut acc = 0.0;
    let mut total = 0.0;
    for (value, weight) in pairs {
        if let Some(v) = value {
            acc += weight * v;
            total += weight;
        }
    }
    if total > 0.0 {
        Some(acc / total)
    } else {
        None
    }
}

/// Weighted quantiles of a statistic (step-function inverse CDF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// 5th percentile.
    pub q05: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// 95th percentile.
    pub q95: f64,
}

/// A complete posterior description of one scalar statistic.
#[derive(Debug, Clone)]
pub struct PosteriorSummary {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance (weighted population variance).
    pub variance: f64,
    /// Weighted quantiles.
    pub quantiles: Quantiles,
    /// A weighted histogram (density estimate) over the draw range.
    pub histogram: Histogram,
    /// Effective sample size of the producing run.
    pub ess: f64,
    /// Log model-evidence estimate, when the engine provides one.
    pub log_evidence: Option<f64>,
    /// Number of draws the statistic was defined on.
    pub num_draws: usize,
}

impl PosteriorSummary {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Number of histogram bins used by [`Posterior::summarize`].
const SUMMARY_BINS: usize = 32;

fn summarize_pairs(
    mut pairs: Vec<(f64, f64)>,
    ess: f64,
    log_evidence: Option<f64>,
) -> Option<PosteriorSummary> {
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    if pairs.is_empty() || total <= 0.0 {
        return None;
    }
    let mean = pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total;
    let variance = pairs
        .iter()
        .map(|(v, w)| w * (v - mean) * (v - mean))
        .sum::<f64>()
        / total;
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite statistics"));
    let quantile = |p: f64| -> f64 {
        let target = p * total;
        let mut cum = 0.0;
        for (v, w) in &pairs {
            cum += w;
            if cum >= target {
                return *v;
            }
        }
        pairs.last().expect("non-empty").0
    };
    let quantiles = Quantiles {
        q05: quantile(0.05),
        q25: quantile(0.25),
        median: quantile(0.50),
        q75: quantile(0.75),
        q95: quantile(0.95),
    };
    let (lo, hi) = (pairs[0].0, pairs[pairs.len() - 1].0);
    // Histogram bounds must be a non-empty half-open interval; widen
    // degenerate ranges and nudge the top so the maximum lands inside.
    let pad = (hi - lo).max(1e-9) * 1e-3 + f64::EPSILON;
    let mut histogram = Histogram::new(lo - pad, hi + pad, SUMMARY_BINS);
    for (v, w) in &pairs {
        histogram.add(*v, w / total);
    }
    Some(PosteriorSummary {
        mean,
        variance,
        quantiles,
        histogram,
        ess,
        log_evidence,
        num_draws: pairs.len(),
    })
}

/// The unified posterior interface implemented by every engine's result.
///
/// Implementors provide their draws and run-level figures; every summary
/// statistic (expectation, probability, mean/variance of a latent,
/// [`PosteriorSummary`]) comes from the provided methods, so IS, MCMC, and
/// VI results are interchangeable wherever a `&dyn Posterior` (or a
/// generic `P: Posterior`) is accepted.
pub trait Posterior {
    /// The producing algorithm's abbreviation (`"IS"`, `"MCMC"`, `"VI"`).
    fn method(&self) -> &'static str;

    /// Number of retained posterior draws.
    fn num_draws(&self) -> usize;

    /// Visits every retained draw in order.
    fn for_each_draw(&self, f: &mut dyn FnMut(Draw<'_>));

    /// Effective sample size of the run.
    fn ess(&self) -> f64;

    /// Log model-evidence estimate, when the engine provides one.
    fn log_evidence(&self) -> Option<f64>;

    /// Engine-specific run diagnostics as labelled numbers (acceptance
    /// rate, final ELBO, fitted parameters, …).
    fn diagnostics(&self) -> Vec<(String, f64)>;

    /// Typed run-quality figures, assembled from the labelled
    /// [`diagnostics`](Posterior::diagnostics) plus the run-level
    /// accessors.  Runtime-counter fields start as `None`; callers that
    /// measured `ppl_runtime::stats` deltas around the run fill them in.
    fn diag(&self) -> crate::diag::Diagnostics {
        let labelled = self.diagnostics();
        let find = |key: &str| {
            labelled
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| *value)
        };
        let mut elbo_tail: Vec<(usize, f64)> = labelled
            .iter()
            .filter_map(|(name, value)| {
                name.strip_prefix("elbo_tail.")
                    .and_then(|i| i.parse::<usize>().ok())
                    .map(|i| (i, *value))
            })
            .collect();
        elbo_tail.sort_by_key(|(i, _)| *i);
        crate::diag::Diagnostics {
            method: self.method(),
            num_draws: self.num_draws(),
            ess: self.ess(),
            log_evidence: self.log_evidence(),
            acceptance_rate: find("acceptance_rate"),
            final_elbo: find("final_elbo"),
            elbo_tail: elbo_tail.into_iter().map(|(_, v)| v).collect(),
            lane_splits: None,
            lane_reconverges: None,
            cancel_checks: None,
        }
    }

    /// Posterior expectation of a statistic of the draws
    /// (skip-and-renormalise over draws where it is `None`).
    fn expectation(&self, f: &dyn Fn(&Draw<'_>) -> Option<f64>) -> Option<f64> {
        let mut acc = 0.0;
        let mut total = 0.0;
        self.for_each_draw(&mut |draw| {
            if let Some(v) = f(&draw) {
                acc += draw.weight * v;
                total += draw.weight;
            }
        });
        if total > 0.0 {
            Some(acc / total)
        } else {
            None
        }
    }

    /// Posterior probability of a predicate over the draws.
    fn probability(&self, pred: &dyn Fn(&Draw<'_>) -> bool) -> Option<f64> {
        self.expectation(&|draw| Some(if pred(draw) { 1.0 } else { 0.0 }))
    }

    /// Posterior mean of the `index`-th latent sample.
    fn mean_of_sample(&self, index: usize) -> Option<f64> {
        self.expectation(&|draw| draw.samples.get(index).map(|s| s.as_f64()))
    }

    /// Full summary (mean, variance, quantiles, histogram) of a statistic.
    fn summarize(&self, f: &dyn Fn(&Draw<'_>) -> Option<f64>) -> Option<PosteriorSummary> {
        let mut pairs = Vec::with_capacity(self.num_draws());
        self.for_each_draw(&mut |draw| {
            if let Some(v) = f(&draw) {
                if v.is_finite() && draw.weight > 0.0 {
                    pairs.push((v, draw.weight));
                }
            }
        });
        summarize_pairs(pairs, self.ess(), self.log_evidence())
    }

    /// Full summary of the `index`-th latent sample.
    fn summarize_sample(&self, index: usize) -> Option<PosteriorSummary> {
        self.summarize(&|draw| draw.samples.get(index).map(|s| s.as_f64()))
    }
}

impl Posterior for ImportanceResult {
    fn method(&self) -> &'static str {
        "IS"
    }

    // Zero on all-zero-weight runs, agreeing with `for_each_draw` (which
    // then exposes no draws): `num_draws() > 0` ⇔ estimates exist.
    fn num_draws(&self) -> usize {
        if self.normalized_weights.is_some() {
            self.particles.len()
        } else {
            0
        }
    }

    fn for_each_draw(&self, f: &mut dyn FnMut(Draw<'_>)) {
        // All-zero-weight runs expose no draws (there is no posterior
        // estimate to take), matching `normalized_weights`'s contract.
        if let Some(weights) = &self.normalized_weights {
            for (p, &w) in self.particles.iter().zip(weights) {
                f(Draw {
                    samples: &p.samples,
                    weight: w,
                    value: p.model_value,
                });
            }
        }
    }

    fn ess(&self) -> f64 {
        self.ess
    }

    fn log_evidence(&self) -> Option<f64> {
        Some(self.log_evidence)
    }

    fn diagnostics(&self) -> Vec<(String, f64)> {
        vec![
            ("particles".into(), self.particles.len() as f64),
            ("ess".into(), self.ess),
            ("log_evidence".into(), self.log_evidence),
        ]
    }
}

impl Posterior for McmcResult {
    fn method(&self) -> &'static str {
        "MCMC"
    }

    fn num_draws(&self) -> usize {
        self.chain.len()
    }

    fn for_each_draw(&self, f: &mut dyn FnMut(Draw<'_>)) {
        for state in &self.chain {
            f(Draw {
                samples: &state.samples,
                weight: 1.0,
                value: None,
            });
        }
    }

    /// Kept chain length — a (generous) stand-in, since independence MH
    /// does not estimate autocorrelation.
    fn ess(&self) -> f64 {
        self.chain.len() as f64
    }

    fn log_evidence(&self) -> Option<f64> {
        None
    }

    fn diagnostics(&self) -> Vec<(String, f64)> {
        vec![
            ("kept_states".into(), self.chain.len() as f64),
            ("acceptance_rate".into(), self.acceptance_rate),
        ]
    }
}

/// The VI engine's posterior: the ELBO fit plus weighted draws from the
/// guide at the fitted parameters.
///
/// A [`ViResult`] alone is a *fit*, not a set of posterior draws; running
/// one importance-sampling pass with the fitted guide as the proposal
/// turns it into one (and yields an evidence estimate at the optimum).
/// The query layer constructs this automatically.
#[derive(Debug, Clone)]
pub struct ViPosterior {
    /// The optimisation result (fitted parameters, ELBO trajectory).
    pub fit: ViResult,
    /// Weighted posterior draws from the fitted guide.
    pub draws: ImportanceResult,
}

impl Posterior for ViPosterior {
    fn method(&self) -> &'static str {
        "VI"
    }

    fn num_draws(&self) -> usize {
        self.draws.num_draws()
    }

    fn for_each_draw(&self, f: &mut dyn FnMut(Draw<'_>)) {
        self.draws.for_each_draw(f);
    }

    fn ess(&self) -> f64 {
        self.draws.ess
    }

    fn log_evidence(&self) -> Option<f64> {
        Some(self.draws.log_evidence)
    }

    fn diagnostics(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("final_elbo".into(), self.fit.final_elbo()),
            ("iterations".into(), self.fit.elbo_trace.len() as f64),
            ("ess".into(), self.draws.ess),
        ];
        for (name, value) in self.fit.names.iter().zip(&self.fit.params) {
            out.push((format!("param.{name}"), *value));
        }
        // Trailing ELBO trajectory: at most 8 values, and never more than
        // the final tenth of the trace — exactly the window an amortized
        // artifact retains, so a warm replay reports byte-identical
        // diagnostics to the cold fit it was stored from.
        let n = self.fit.elbo_trace.len();
        if n > 0 {
            let tail = (n / 10).clamp(1, 8);
            for (i, value) in self.fit.elbo_trace[n - tail..].iter().enumerate() {
                out.push((format!("elbo_tail.{i}"), *value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::Particle;
    use crate::mcmc::ChainState;
    use ppl_semantics::trace::Trace;

    fn is_result(values_weights: &[(f64, f64)]) -> ImportanceResult {
        ImportanceResult {
            particles: values_weights
                .iter()
                .map(|&(v, _)| Particle {
                    latent: Trace::new(),
                    samples: vec![Sample::Real(v)],
                    log_weight: 0.0,
                    model_value: Some(v),
                })
                .collect(),
            normalized_weights: Some(values_weights.iter().map(|&(_, w)| w).collect()),
            ess: values_weights.len() as f64,
            log_evidence: -1.0,
        }
    }

    #[test]
    fn trait_expectation_matches_inherent_is_contract() {
        let r = is_result(&[(1.0, 0.5), (2.0, 0.3), (3.0, 0.2)]);
        let via_trait = Posterior::mean_of_sample(&r, 0).unwrap();
        let inherent = r.posterior_mean_of_sample(0).unwrap();
        assert!((via_trait - inherent).abs() < 1e-15);
        // Skip-and-renormalise: drop the middle draw.
        let cond = r
            .expectation(&|d| {
                let v = d.value.unwrap();
                (v != 2.0).then_some(v)
            })
            .unwrap();
        assert!((cond - (0.5 + 0.6) / 0.7).abs() < 1e-12);
        assert_eq!(r.method(), "IS");
        assert_eq!(r.num_draws(), 3);
        assert_eq!(r.log_evidence(), Some(-1.0));
        assert!(r.diagnostics().iter().any(|(k, _)| k == "particles"));
    }

    #[test]
    fn zero_weight_runs_expose_no_draws() {
        let r = ImportanceResult {
            particles: vec![],
            normalized_weights: None,
            ess: 0.0,
            log_evidence: f64::NEG_INFINITY,
        };
        let mut count = 0;
        r.for_each_draw(&mut |_| count += 1);
        assert_eq!(count, 0);
        assert!(r.expectation(&|d| d.value).is_none());
        assert!(r.summarize_sample(0).is_none());
        // `num_draws` agrees with `for_each_draw`, even when particles
        // were retained but carry no weight.
        let degenerate = ImportanceResult {
            particles: vec![Particle {
                latent: Trace::new(),
                samples: vec![Sample::Real(1.0)],
                log_weight: f64::NEG_INFINITY,
                model_value: Some(1.0),
            }],
            normalized_weights: None,
            ess: 0.0,
            log_evidence: f64::NEG_INFINITY,
        };
        assert_eq!(degenerate.num_draws(), 0);
    }

    #[test]
    fn summary_statistics_are_exact_on_a_known_distribution() {
        // Equal-weight draws 1..=100: mean 50.5, variance 833.25.
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 0.01)).collect();
        let r = is_result(&pairs);
        let s = r.summarize_sample(0).unwrap();
        assert!((s.mean - 50.5).abs() < 1e-9, "mean {}", s.mean);
        assert!(
            (s.variance - 833.25).abs() < 1e-6,
            "variance {}",
            s.variance
        );
        assert!((s.std_dev() - 833.25f64.sqrt()).abs() < 1e-6);
        // Step-function quantiles land on a draw value; float accumulation
        // may shift the landing by one draw.
        assert!(
            (s.quantiles.median - 50.0).abs() <= 1.0,
            "{:?}",
            s.quantiles
        );
        assert!((s.quantiles.q05 - 5.0).abs() <= 1.0, "{:?}", s.quantiles);
        assert!((s.quantiles.q95 - 95.0).abs() <= 1.0, "{:?}", s.quantiles);
        assert!((s.quantiles.q25 - 25.0).abs() <= 1.0, "{:?}", s.quantiles);
        assert!((s.quantiles.q75 - 75.0).abs() <= 1.0, "{:?}", s.quantiles);
        assert_eq!(s.num_draws, 100);
        assert_eq!(s.log_evidence, Some(-1.0));
        // The histogram covers every draw with total mass one.
        assert!((s.histogram.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_single_value_summary_does_not_panic() {
        let r = is_result(&[(2.5, 1.0)]);
        let s = r.summarize_sample(0).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.quantiles.median, 2.5);
        assert!((s.histogram.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mcmc_results_are_unit_weight_draws() {
        let chain: Vec<ChainState> = (0..4)
            .map(|i| ChainState {
                latent: Trace::new(),
                samples: vec![Sample::Real(i as f64)],
                log_model: -1.0,
            })
            .collect();
        let r = McmcResult {
            chain,
            acceptance_rate: 0.5,
        };
        assert_eq!(r.method(), "MCMC");
        assert_eq!(r.num_draws(), 4);
        assert_eq!(Posterior::ess(&r), 4.0);
        assert_eq!(r.log_evidence(), None);
        assert_eq!(Posterior::mean_of_sample(&r, 0), Some(1.5));
        assert_eq!(r.probability(&|d| d.samples[0].as_f64() >= 2.0), Some(0.5));
        assert!(r
            .diagnostics()
            .iter()
            .any(|(k, v)| k == "acceptance_rate" && *v == 0.5));
    }

    #[test]
    fn vi_posterior_delegates_draws_and_reports_fit() {
        let vi = ViPosterior {
            fit: ViResult {
                params: vec![7.0, 0.5],
                names: vec!["mu".into(), "sigma".into()],
                elbo_trace: vec![-10.0, -2.0],
            },
            draws: is_result(&[(6.9, 0.5), (7.1, 0.5)]),
        };
        assert_eq!(vi.method(), "VI");
        assert_eq!(vi.num_draws(), 2);
        assert!((Posterior::mean_of_sample(&vi, 0).unwrap() - 7.0).abs() < 1e-12);
        assert_eq!(vi.log_evidence(), Some(-1.0));
        let diag = vi.diagnostics();
        assert!(diag.iter().any(|(k, v)| k == "param.mu" && *v == 7.0));
        assert!(diag.iter().any(|(k, _)| k == "final_elbo"));
    }

    #[test]
    fn posterior_is_object_safe_and_interchangeable() {
        let is = is_result(&[(1.0, 1.0)]);
        let mh = McmcResult {
            chain: vec![ChainState {
                latent: Trace::new(),
                samples: vec![Sample::Real(1.0)],
                log_model: 0.0,
            }],
            acceptance_rate: 1.0,
        };
        let posteriors: Vec<&dyn Posterior> = vec![&is, &mh];
        for p in posteriors {
            assert_eq!(p.mean_of_sample(0), Some(1.0));
            assert!(p.num_draws() > 0);
        }
    }

    #[test]
    fn weighted_expectation_helper_contract() {
        let pairs = vec![(Some(1.0), 0.5), (None, 0.3), (Some(3.0), 0.2)];
        let e = weighted_expectation(pairs.into_iter()).unwrap();
        assert!((e - (0.5 + 0.6) / 0.7).abs() < 1e-12);
        assert!(weighted_expectation(std::iter::empty()).is_none());
        assert!(weighted_expectation([(None::<f64>, 1.0)].into_iter()).is_none());
    }
}
