//! The flight recorder end to end: per-phase spans, trace ids,
//! `/v1/trace`, and — the property everything else hangs on — that
//! diagnostics never perturb the deterministic response cache.
//!
//! The cache stores only the *clean* body; the `"trace"` block is
//! spliced in per-response after the cache write/read.  So whether a
//! cold run asked for diagnostics or not must be unobservable to every
//! later request: a warm hit returns the byte-identical clean body, and
//! a warm hit *with* diagnostics returns that same body plus a trace
//! block reporting `"cache": "hit"`.

use ppl_serve::http::{self, Request, Response, ServerConfig};
use ppl_serve::{App, Json, Registry, Server};

const QUERY: &str = r#"{"model":"ex-1","observations":[0.8],
    "method":{"algorithm":"importance","particles":2000},"seed":11}"#;

/// Builds a request the way the HTTP layer would parse it.
fn request(method: &str, path: &str, headers: &[(&str, &str)], body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query: None,
        headers: headers
            .iter()
            .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
            .collect(),
        body: body.as_bytes().to_vec(),
    }
}

fn header<'r>(response: &'r Response, name: &str) -> Option<&'r str> {
    response
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn body_json(response: &Response) -> Json {
    Json::parse(std::str::from_utf8(&response.body).expect("utf-8")).expect("valid JSON")
}

/// With-diagnostics body = clean body + spliced trailer: stripping the
/// `,"trace":…` block (and restoring the closing brace the splice
/// re-used) must recover the clean bytes exactly.
fn strip_trace(body: &str) -> String {
    let start = body.rfind(",\"trace\":").expect("a spliced trace block");
    format!("{}}}", &body[..start])
}

#[test]
fn diagnostics_on_the_cold_run_never_reach_the_cache() {
    // App A: the cold run *requests* diagnostics.
    let app_a = App::new(Registry::from_benchmarks(), 32);
    let handler_a = app_a.handler();
    let with_diag = QUERY.replacen('{', r#"{"diagnostics":true,"#, 1);

    let cold_a = handler_a(&request("POST", "/v1/query", &[], &with_diag));
    assert_eq!(
        cold_a.status,
        200,
        "{}",
        String::from_utf8_lossy(&cold_a.body)
    );
    assert_eq!(header(&cold_a, "X-Cache"), Some("miss"));
    let cold_a_text = String::from_utf8(cold_a.body.clone()).unwrap();
    let trace = body_json(&cold_a)
        .get("trace")
        .cloned()
        .expect("trace block");
    assert_eq!(
        trace.get("cache").and_then(Json::as_str),
        Some("miss"),
        "cold trace reports the cache miss"
    );
    assert!(
        trace
            .get("engine")
            .and_then(|e| e.get("ess"))
            .and_then(Json::as_f64)
            .is_some_and(f64::is_finite),
        "cold trace embeds engine diagnostics"
    );

    // Warm, *without* diagnostics: the clean cached bytes.
    let warm_a = handler_a(&request("POST", "/v1/query", &[], QUERY));
    assert_eq!(header(&warm_a, "X-Cache"), Some("hit"));
    let warm_a_text = String::from_utf8(warm_a.body).unwrap();
    assert!(
        !warm_a_text.contains("\"trace\""),
        "clean hit carries no trace"
    );

    // App B: a fresh process-equivalent whose cold run never asked for
    // diagnostics.  Its response must be byte-identical to A's warm hit.
    let app_b = App::new(Registry::from_benchmarks(), 32);
    let handler_b = app_b.handler();
    let cold_b = handler_b(&request("POST", "/v1/query", &[], QUERY));
    assert_eq!(header(&cold_b, "X-Cache"), Some("miss"));
    let cold_b_text = String::from_utf8(cold_b.body).unwrap();
    assert_eq!(
        warm_a_text, cold_b_text,
        "requesting diagnostics on the cold run must not change the cached bytes"
    );
    assert_eq!(
        strip_trace(&cold_a_text),
        cold_b_text,
        "the spliced response is the clean body plus a trailer"
    );

    // Warm *with* diagnostics (via the header this time): same clean
    // body underneath, and the trace block reports the hit.
    let warm_diag = handler_a(&request(
        "POST",
        "/v1/query",
        &[("X-Ppl-Trace", "1")],
        QUERY,
    ));
    assert_eq!(header(&warm_diag, "X-Cache"), Some("hit"));
    let warm_diag_text = String::from_utf8(warm_diag.body.clone()).unwrap();
    assert_eq!(strip_trace(&warm_diag_text), cold_b_text);
    let warm_trace = body_json(&warm_diag)
        .get("trace")
        .cloned()
        .expect("trace block");
    assert_eq!(warm_trace.get("cache").and_then(Json::as_str), Some("hit"));
    assert!(
        matches!(warm_trace.get("engine"), None | Some(Json::Null)),
        "a hit ran no engine, so there is nothing to report"
    );
    assert_eq!(app_a.cache.hits(), 2);
}

#[test]
fn trace_endpoint_serves_span_timings_and_engine_diagnostics() {
    let app = App::new(Registry::from_benchmarks(), 32);
    let handler = app.handler();

    let response = handler(&request("POST", "/v1/query", &[], QUERY));
    assert_eq!(response.status, 200);
    let id = header(&response, "X-Ppl-Trace-Id")
        .expect("every traced response carries its id")
        .to_string();

    let lookup = handler(&request("GET", &format!("/v1/trace/{id}"), &[], ""));
    assert_eq!(
        lookup.status,
        200,
        "{}",
        String::from_utf8_lossy(&lookup.body)
    );
    let doc = body_json(&lookup);
    assert_eq!(
        doc.get("trace_id").and_then(Json::as_str),
        Some(id.as_str())
    );
    assert_eq!(doc.get("route").and_then(Json::as_str), Some("/v1/query"));
    let spans = doc.get("spans_ms").expect("per-phase spans");
    let draw_ms = spans
        .get("infer.draw")
        .and_then(Json::as_f64)
        .expect("the query ran inference");
    assert!(draw_ms > 0.0, "a 2000-particle run takes measurable time");
    assert!(
        spans.get("json.decode").and_then(Json::as_f64).is_some(),
        "decode was timed"
    );
    let engine = doc.get("engine").expect("engine diagnostics");
    assert_eq!(engine.get("num_draws").and_then(Json::as_f64), Some(2000.0));
    assert!(engine
        .get("ess")
        .and_then(Json::as_f64)
        .is_some_and(|e| e.is_finite() && e > 0.0));

    // The listing shows it too, and unknown ids are clean 404s.
    let listing = body_json(&handler(&request("GET", "/v1/trace", &[], "")));
    let traces = match listing.get("traces") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("traces array, got {other:?}"),
    };
    assert!(traces
        .iter()
        .any(|t| t.get("trace_id").and_then(Json::as_str) == Some(id.as_str())));
    let missing = handler(&request("GET", "/v1/trace/t-does-not-exist", &[], ""));
    assert_eq!(missing.status, 404);
    assert!(String::from_utf8_lossy(&missing.body).contains("trace.unknown"));

    // /metrics grew the per-phase section off the same histograms.
    let metrics = body_json(&handler(&request("GET", "/metrics", &[], "")));
    let phases = metrics
        .get("phases_ms")
        .and_then(|p| p.get("/v1/query"))
        .expect("per-route phase stats");
    assert!(phases
        .get("infer.draw")
        .and_then(|p| p.get("count"))
        .and_then(Json::as_f64)
        .is_some_and(|c| c >= 1.0));
    assert!(metrics
        .get("engine_quality")
        .and_then(|q| q.get("min_ess"))
        .and_then(Json::as_f64)
        .is_some_and(f64::is_finite));
}

#[test]
fn concurrent_requests_get_distinct_trace_ids() {
    let app = App::new(Registry::from_benchmarks(), 0); // cache off: every request runs
    let config = ServerConfig {
        workers: 4,
        recorder: Some(std::sync::Arc::clone(&app.obs)),
        ..ServerConfig::default()
    };
    let server = Server::bind_with_config("127.0.0.1:0", config, app.handler()).expect("bind");
    let addr = server.local_addr();

    // Identical request bodies on purpose: the fingerprint halves of the
    // ids collide, so distinctness must come from the epoch counter.
    let ids: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let response = http::http_request(addr, "POST", "/v1/query", Some(QUERY))
                        .expect("request");
                    let (status, headers, _) = response;
                    assert_eq!(status, 200);
                    headers
                        .into_iter()
                        .find(|(k, _)| k == "x-ppl-trace-id")
                        .map(|(_, v)| v)
                        .expect("trace id header")
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(
        unique.len(),
        ids.len(),
        "trace ids must be distinct: {ids:?}"
    );

    // Served over real sockets, so the transport phases were timed too.
    // The back-fill runs on the worker *after* the client has already
    // read its response, so poll briefly rather than racing it.
    let write_index = ppl_serve::obs::Phase::HttpWrite.index();
    let mut backfilled = false;
    for _ in 0..200 {
        let ring = app.obs.recent();
        assert!(
            ring.len() >= 8,
            "all requests were retained: {}",
            ring.len()
        );
        backfilled = ring
            .iter()
            .any(|t| t.route == "/v1/query" && t.phase_nanos[write_index] > 0);
        if backfilled {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        backfilled,
        "http.write was back-filled after the response went out"
    );
    server.shutdown();
}

#[test]
fn disabling_the_recorder_removes_ids_and_traces() {
    let app = App::new(Registry::from_benchmarks(), 32);
    app.obs.set_enabled(false);
    let handler = app.handler();
    let response = handler(&request("POST", "/v1/query", &[], QUERY));
    assert_eq!(response.status, 200);
    assert!(header(&response, "X-Ppl-Trace-Id").is_none());
    assert_eq!(app.obs.recorded(), 0);
    // Diagnostics degrade gracefully: the block appears (the request
    // asked for it) but without span timings there is no trace_id field.
    let diag = handler(&request(
        "POST",
        "/v1/query",
        &[("X-Ppl-Trace", "1")],
        QUERY,
    ));
    assert_eq!(header(&diag, "X-Cache"), Some("hit"));
}
