//! Bayesian-inference engines for the guide-types PPL.
//!
//! All three engines consume the coroutine runtime's joint model–guide
//! executions and therefore rely on the absolute-continuity guarantee
//! certified by guide types (Theorem 5.2 of the paper):
//!
//! * [`engine`] — the deterministic (optionally parallel) particle driver
//!   shared by IS and VI, with per-particle RNG substreams so the thread
//!   count never changes results;
//! * [`importance`] — importance sampling (IS);
//! * [`mcmc`] — Metropolis–Hastings with independence or data-dependent
//!   guide proposals (MCMC);
//! * [`vi`] — variational inference with a score-function ELBO gradient
//!   estimator and Adam (VI);
//! * [`posterior`] — the unified [`Posterior`] trait and
//!   [`PosteriorSummary`] statistics shared by all three engines, so their
//!   results are interchangeable behind one interface;
//! * [`counters`] — process-wide counters of scheduled joint executions,
//!   so callers (e.g. the serving layer's cache tests) can prove an
//!   operation ran zero inference.
//!
//! # Example
//!
//! ```
//! use ppl_inference::{ImportanceSampler};
//! use ppl_runtime::{JointExecutor, JointSpec};
//! use ppl_dist::{Sample, rng::Pcg32};
//! use ppl_syntax::parse_program;
//!
//! let model = parse_program(r#"
//!     proc Model() : real consume latent provide obs {
//!       let x <- sample recv latent (Normal(0.0, 1.0));
//!       let _ <- sample send obs (Normal(x, 1.0));
//!       return x
//!     }
//! "#).unwrap();
//! let guide = parse_program(r#"
//!     proc Guide() provide latent {
//!       let x <- sample send latent (Normal(0.0, 1.5));
//!       return ()
//!     }
//! "#).unwrap();
//! let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
//! let mut rng = Pcg32::seed_from_u64(1);
//! let result = ImportanceSampler::new(2_000)
//!     .run(&exec, &JointSpec::new("Model", "Guide"), &mut rng)?;
//! let mean = result.posterior_mean_of_sample(0).unwrap();
//! assert!((mean - 0.5).abs() < 0.2);
//! # Ok::<(), ppl_runtime::RuntimeError>(())
//! ```

pub mod counters;
pub mod diag;
pub mod engine;
pub mod importance;
pub mod mcmc;
pub mod posterior;
pub mod vi;

pub use diag::Diagnostics;
pub use engine::Engine;
pub use importance::{ImportanceResult, ImportanceSampler, Particle, DEFAULT_BLOCK};
pub use mcmc::{ChainState, GuidedMh, IndependenceMh, McmcResult};
pub use posterior::{Draw, Posterior, PosteriorSummary, Quantiles, ViPosterior};
pub use vi::{ParamSpec, VariationalInference, ViConfig, ViResult};
