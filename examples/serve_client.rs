//! A loopback serving round trip: boot `ppl-serve` in-process on an
//! ephemeral port, list the models, run a query twice, and show the warm
//! hit coming back byte-identical from the cache.
//!
//! ```text
//! cargo run --release -p ppl-serve --example serve_client
//! ```

use ppl_serve::http::ClientConn;
use ppl_serve::{App, Json, Registry, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = App::new(Registry::from_benchmarks(), 64);
    let server = Server::bind("127.0.0.1:0", 2, app.handler())?;
    let addr = server.local_addr();
    println!("serving {} models on http://{addr}", app.registry.len());

    // One keep-alive connection drives the whole session.
    let mut conn = ClientConn::connect(addr)?;

    let (status, _, body) = conn.send("GET", "/v1/models", None)?;
    let models = Json::parse(std::str::from_utf8(&body)?)?;
    let listed = models.get("models").and_then(Json::as_arr).unwrap();
    println!("GET /v1/models -> {status}, {} models; e.g.:", listed.len());
    for entry in listed.iter().take(3) {
        println!(
            "  {:<12} obs protocol: {}",
            entry.get("name").and_then(Json::as_str).unwrap_or("?"),
            entry
                .get("observation_protocol")
                .and_then(Json::as_str)
                .unwrap_or("(none)"),
        );
    }

    let query = r#"{"model":"ex-1","observations":[0.8],
                    "method":{"algorithm":"importance","particles":5000},"seed":7}"#;
    let (status, headers, cold) = conn.send("POST", "/v1/query", Some(query))?;
    let cache_state = |headers: &[(String, String)]| {
        headers
            .iter()
            .find(|(k, _)| k == "x-cache")
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    println!(
        "POST /v1/query -> {status} (X-Cache: {})",
        cache_state(&headers)
    );
    let parsed = Json::parse(std::str::from_utf8(&cold)?)?;
    let summary = parsed.get("summary").unwrap();
    println!(
        "  posterior mean {:.4}, std dev {:.4}, ess {:.1}",
        summary.get("mean").and_then(Json::as_f64).unwrap(),
        summary.get("std_dev").and_then(Json::as_f64).unwrap(),
        parsed.get("ess").and_then(Json::as_f64).unwrap(),
    );

    // The same request again: a warm, byte-identical cache hit.
    let (_, headers, warm) = conn.send("POST", "/v1/query", Some(query))?;
    println!(
        "POST /v1/query -> 200 (X-Cache: {}), byte-identical: {}",
        cache_state(&headers),
        cold == warm
    );
    assert_eq!(cold, warm, "deterministic seeding makes cache hits exact");

    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}
