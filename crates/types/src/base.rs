//! Base-type checking for the deterministic fragment (a simply-typed
//! lambda calculus over refined scalar types, Fig. 12's `TE:*` rules).
//!
//! Scalar refinements form a small subtype lattice
//! (`ℝ(0,1) <: ℝ+ <: ℝ` and `ℕ_n <: ℕ`), which lets numeric literals and
//! distribution parameters be checked without annotations.

use crate::error::TypeError;
use ppl_syntax::ast::{BaseType, BinOp, DistExpr, Expr, Ident, UnOp};
use std::collections::HashMap;

/// A typing context `Γ` mapping program variables to base types.
#[derive(Debug, Clone, Default)]
pub struct TypingCtx {
    vars: HashMap<Ident, BaseType>,
}

impl TypingCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a context extended with a binding.
    pub fn extended(&self, x: Ident, ty: BaseType) -> Self {
        let mut next = self.clone();
        next.vars.insert(x, ty);
        next
    }

    /// Adds a binding in place.
    pub fn insert(&mut self, x: Ident, ty: BaseType) {
        self.vars.insert(x, ty);
    }

    /// Looks up a variable.
    pub fn lookup(&self, x: &Ident) -> Option<&BaseType> {
        self.vars.get(x)
    }

    /// Builds a context from typed parameters.
    pub fn from_params(params: &[(Ident, BaseType)]) -> Self {
        let mut ctx = Self::new();
        for (x, t) in params {
            ctx.insert(*x, t.clone());
        }
        ctx
    }
}

/// Subtype relation on base types (reflexive; scalar refinements only).
pub fn is_subtype(sub: &BaseType, sup: &BaseType) -> bool {
    if sub == sup {
        return true;
    }
    match (sub, sup) {
        (BaseType::UnitInterval, BaseType::PosReal | BaseType::Real) => true,
        (BaseType::PosReal, BaseType::Real) => true,
        (BaseType::FinNat(_), BaseType::Nat) => true,
        (BaseType::FinNat(n), BaseType::FinNat(m)) => n <= m,
        _ => false,
    }
}

/// Least upper bound of two base types in the scalar subtype lattice, if it
/// exists.
pub fn join(a: &BaseType, b: &BaseType) -> Option<BaseType> {
    if is_subtype(a, b) {
        return Some(b.clone());
    }
    if is_subtype(b, a) {
        return Some(a.clone());
    }
    match (a, b) {
        (x, y) if x.is_real_like() && y.is_real_like() => {
            // The chain ureal <: preal <: real makes one of the two cases
            // above fire unless the types are equal, so reaching here means
            // incomparable real refinements cannot happen; kept for clarity.
            Some(BaseType::Real)
        }
        (x, y) if x.is_nat_like() && y.is_nat_like() => Some(BaseType::Nat),
        _ => None,
    }
}

/// Infers the base type of an expression (`Γ ⊢ e : τ`).
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed (unbound variable,
/// operator applied at the wrong types, distribution parameter outside its
/// domain type, …).
pub fn infer_expr(ctx: &TypingCtx, e: &Expr) -> Result<BaseType, TypeError> {
    match e {
        Expr::Var(x) => ctx.lookup(x).cloned().ok_or_else(|| {
            TypeError::new(format!("unbound variable '{x}'"))
                .with_code(crate::error::code::UNBOUND_VAR)
        }),
        Expr::Triv => Ok(BaseType::Unit),
        Expr::Bool(_) => Ok(BaseType::Bool),
        Expr::Real(r) => Ok(literal_real_type(*r)),
        Expr::Nat(_) => Ok(BaseType::Nat),
        Expr::If(c, a, b) => {
            check_expr(ctx, c, &BaseType::Bool)?;
            let ta = infer_expr(ctx, a)?;
            let tb = infer_expr(ctx, b)?;
            join(&ta, &tb).ok_or_else(|| {
                TypeError::new(format!(
                    "branches of a conditional expression have incompatible types {ta} and {tb}"
                ))
            })
        }
        Expr::BinOp(op, a, b) => infer_binop(ctx, *op, a, b),
        Expr::UnOp(op, a) => infer_unop(ctx, *op, a),
        Expr::Lam(x, ty, body) => {
            let inner = ctx.extended(*x, ty.clone());
            let body_ty = infer_expr(&inner, body)?;
            Ok(BaseType::arrow(ty.clone(), body_ty))
        }
        Expr::App(f, a) => {
            let tf = infer_expr(ctx, f)?;
            match tf {
                BaseType::Arrow(from, to) => {
                    check_expr(ctx, a, &from)?;
                    Ok(*to)
                }
                other => Err(TypeError::new(format!(
                    "application of a non-function value of type {other}"
                ))),
            }
        }
        Expr::Let(x, e1, e2) => {
            let t1 = infer_expr(ctx, e1)?;
            let inner = ctx.extended(*x, t1);
            infer_expr(&inner, e2)
        }
        Expr::Dist(d) => infer_dist(ctx, d),
    }
}

/// Checks an expression against an expected type (subsumption).
///
/// # Errors
///
/// Returns a [`TypeError`] if the inferred type is not a subtype of the
/// expected type.
pub fn check_expr(ctx: &TypingCtx, e: &Expr, expected: &BaseType) -> Result<(), TypeError> {
    let actual = infer_expr(ctx, e)?;
    if is_subtype(&actual, expected) {
        Ok(())
    } else {
        Err(TypeError::new(format!(
            "expected type {expected}, found {actual}"
        )))
    }
}

/// The most precise literal type of a real constant (rule TE:UReal/PReal/Real).
pub fn literal_real_type(r: f64) -> BaseType {
    if r > 0.0 && r < 1.0 {
        BaseType::UnitInterval
    } else if r > 0.0 {
        BaseType::PosReal
    } else {
        BaseType::Real
    }
}

fn infer_binop(ctx: &TypingCtx, op: BinOp, a: &Expr, b: &Expr) -> Result<BaseType, TypeError> {
    let ta = infer_expr(ctx, a)?;
    let tb = infer_expr(ctx, b)?;
    if op.is_logical() {
        if ta == BaseType::Bool && tb == BaseType::Bool {
            return Ok(BaseType::Bool);
        }
        return Err(TypeError::new(format!(
            "logical operator '{}' applied to {ta} and {tb}",
            op.symbol()
        )));
    }
    if op.is_comparison() {
        let ok = (ta.is_real_like() && tb.is_real_like())
            || (ta.is_nat_like() && tb.is_nat_like())
            || (op == BinOp::Eq && ta == BaseType::Bool && tb == BaseType::Bool);
        if ok {
            return Ok(BaseType::Bool);
        }
        return Err(TypeError::new(format!(
            "comparison '{}' applied to incomparable types {ta} and {tb}",
            op.symbol()
        )));
    }
    // Arithmetic.
    if ta.is_real_like() && tb.is_real_like() {
        let ty = match op {
            BinOp::Add => {
                if is_subtype(&ta, &BaseType::PosReal) && is_subtype(&tb, &BaseType::PosReal) {
                    BaseType::PosReal
                } else {
                    BaseType::Real
                }
            }
            BinOp::Mul => {
                if ta == BaseType::UnitInterval && tb == BaseType::UnitInterval {
                    BaseType::UnitInterval
                } else if is_subtype(&ta, &BaseType::PosReal) && is_subtype(&tb, &BaseType::PosReal)
                {
                    BaseType::PosReal
                } else {
                    BaseType::Real
                }
            }
            BinOp::Div => {
                if is_subtype(&ta, &BaseType::PosReal) && is_subtype(&tb, &BaseType::PosReal) {
                    BaseType::PosReal
                } else {
                    BaseType::Real
                }
            }
            BinOp::Sub => BaseType::Real,
            _ => unreachable!("arithmetic op"),
        };
        return Ok(ty);
    }
    if ta.is_nat_like() && tb.is_nat_like() {
        return match op {
            BinOp::Add | BinOp::Mul => Ok(BaseType::Nat),
            BinOp::Sub | BinOp::Div => Err(TypeError::new(
                "subtraction/division on natural numbers is not supported; coerce with real(..)",
            )),
            _ => unreachable!("arithmetic op"),
        };
    }
    Err(TypeError::new(format!(
        "arithmetic operator '{}' applied to {ta} and {tb}",
        op.symbol()
    )))
}

fn infer_unop(ctx: &TypingCtx, op: UnOp, a: &Expr) -> Result<BaseType, TypeError> {
    let ta = infer_expr(ctx, a)?;
    match op {
        UnOp::Neg => {
            if ta.is_real_like() {
                Ok(BaseType::Real)
            } else {
                Err(TypeError::new(format!("negation applied to {ta}")))
            }
        }
        UnOp::Not => {
            if ta == BaseType::Bool {
                Ok(BaseType::Bool)
            } else {
                Err(TypeError::new(format!("'!' applied to {ta}")))
            }
        }
        UnOp::Exp => {
            if ta.is_real_like() {
                Ok(BaseType::PosReal)
            } else {
                Err(TypeError::new(format!("exp applied to {ta}")))
            }
        }
        UnOp::Ln => {
            if ta.is_real_like() {
                Ok(BaseType::Real)
            } else {
                Err(TypeError::new(format!(
                    "ln requires a real argument, found {ta}"
                )))
            }
        }
        UnOp::Sqrt => {
            if ta == BaseType::UnitInterval {
                Ok(BaseType::UnitInterval)
            } else if is_subtype(&ta, &BaseType::PosReal) {
                Ok(BaseType::PosReal)
            } else if ta.is_real_like() {
                Ok(BaseType::Real)
            } else {
                Err(TypeError::new(format!(
                    "sqrt requires a real argument, found {ta}"
                )))
            }
        }
        UnOp::ToReal => {
            if ta.is_nat_like() || ta.is_real_like() {
                Ok(BaseType::Real)
            } else {
                Err(TypeError::new(format!("real(..) applied to {ta}")))
            }
        }
    }
}

fn infer_dist(ctx: &TypingCtx, d: &DistExpr) -> Result<BaseType, TypeError> {
    let carrier = match d {
        DistExpr::Bernoulli(p) => {
            check_expr(ctx, p, &BaseType::UnitInterval).map_err(|e| e.context("Ber parameter"))?;
            BaseType::Bool
        }
        DistExpr::Uniform => BaseType::UnitInterval,
        DistExpr::Beta(a, b) => {
            check_expr(ctx, a, &BaseType::PosReal).map_err(|e| e.context("Beta parameter"))?;
            check_expr(ctx, b, &BaseType::PosReal).map_err(|e| e.context("Beta parameter"))?;
            BaseType::UnitInterval
        }
        DistExpr::Gamma(a, b) => {
            check_expr(ctx, a, &BaseType::PosReal).map_err(|e| e.context("Gamma parameter"))?;
            check_expr(ctx, b, &BaseType::PosReal).map_err(|e| e.context("Gamma parameter"))?;
            BaseType::PosReal
        }
        DistExpr::Normal(mu, sigma) => {
            check_expr(ctx, mu, &BaseType::Real).map_err(|e| e.context("Normal mean"))?;
            check_expr(ctx, sigma, &BaseType::PosReal).map_err(|e| e.context("Normal scale"))?;
            BaseType::Real
        }
        DistExpr::Categorical(ws) => {
            if ws.is_empty() {
                return Err(TypeError::new("Cat requires at least one weight"));
            }
            for w in ws {
                check_expr(ctx, w, &BaseType::PosReal).map_err(|e| e.context("Cat weight"))?;
            }
            BaseType::FinNat(ws.len())
        }
        DistExpr::Geometric(p) => {
            check_expr(ctx, p, &BaseType::UnitInterval).map_err(|e| e.context("Geo parameter"))?;
            BaseType::Nat
        }
        DistExpr::Poisson(l) => {
            check_expr(ctx, l, &BaseType::PosReal).map_err(|e| e.context("Pois parameter"))?;
            BaseType::Nat
        }
    };
    Ok(BaseType::dist(carrier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_syntax::parse_expr;

    fn infer(src: &str) -> Result<BaseType, TypeError> {
        infer_expr(&TypingCtx::new(), &parse_expr(src).unwrap())
    }

    fn infer_with(src: &str, bindings: &[(&str, BaseType)]) -> Result<BaseType, TypeError> {
        let mut ctx = TypingCtx::new();
        for (x, t) in bindings {
            ctx.insert((*x).into(), t.clone());
        }
        infer_expr(&ctx, &parse_expr(src).unwrap())
    }

    #[test]
    fn subtyping_lattice() {
        assert!(is_subtype(&BaseType::UnitInterval, &BaseType::Real));
        assert!(is_subtype(&BaseType::UnitInterval, &BaseType::PosReal));
        assert!(is_subtype(&BaseType::PosReal, &BaseType::Real));
        assert!(!is_subtype(&BaseType::Real, &BaseType::PosReal));
        assert!(is_subtype(&BaseType::FinNat(3), &BaseType::Nat));
        assert!(is_subtype(&BaseType::FinNat(3), &BaseType::FinNat(5)));
        assert!(!is_subtype(&BaseType::FinNat(5), &BaseType::FinNat(3)));
        assert!(!is_subtype(&BaseType::Nat, &BaseType::Real));
        assert!(is_subtype(&BaseType::Bool, &BaseType::Bool));
    }

    #[test]
    fn join_behaviour() {
        assert_eq!(
            join(&BaseType::UnitInterval, &BaseType::PosReal),
            Some(BaseType::PosReal)
        );
        assert_eq!(
            join(&BaseType::Real, &BaseType::UnitInterval),
            Some(BaseType::Real)
        );
        assert_eq!(
            join(&BaseType::FinNat(2), &BaseType::FinNat(4)),
            Some(BaseType::FinNat(4))
        );
        assert_eq!(join(&BaseType::Bool, &BaseType::Real), None);
    }

    #[test]
    fn literal_types() {
        assert_eq!(infer("0.5").unwrap(), BaseType::UnitInterval);
        assert_eq!(infer("2.5").unwrap(), BaseType::PosReal);
        assert_eq!(infer("-1.0").unwrap(), BaseType::Real);
        assert_eq!(infer("0.0").unwrap(), BaseType::Real);
        assert_eq!(infer("7").unwrap(), BaseType::Nat);
        assert_eq!(infer("true").unwrap(), BaseType::Bool);
        assert_eq!(infer("()").unwrap(), BaseType::Unit);
    }

    #[test]
    fn arithmetic_refinements() {
        assert_eq!(infer("0.5 * 0.5").unwrap(), BaseType::UnitInterval);
        assert_eq!(infer("0.5 + 0.5").unwrap(), BaseType::PosReal);
        assert_eq!(infer("2.0 * 3.0").unwrap(), BaseType::PosReal);
        assert_eq!(infer("2.0 - 3.0").unwrap(), BaseType::Real);
        assert_eq!(infer("2.0 / 4.0").unwrap(), BaseType::PosReal);
        assert_eq!(infer("1 + 2").unwrap(), BaseType::Nat);
        assert!(infer("1 - 2").is_err());
        assert!(infer("1 + 2.0").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(infer("1.0 < 2.0").unwrap(), BaseType::Bool);
        assert_eq!(infer("1 <= 2").unwrap(), BaseType::Bool);
        assert_eq!(infer("true && (1.0 < 2.0)").unwrap(), BaseType::Bool);
        assert!(infer("1.0 < true").is_err());
        assert!(infer("1 < 2.0").is_err());
        assert!(infer("1.0 && true").is_err());
    }

    #[test]
    fn unary_operators() {
        assert_eq!(infer("exp(-3.0)").unwrap(), BaseType::PosReal);
        assert_eq!(infer("ln(2.0)").unwrap(), BaseType::Real);
        assert_eq!(infer("sqrt(0.25)").unwrap(), BaseType::UnitInterval);
        assert_eq!(infer("sqrt(4.0)").unwrap(), BaseType::PosReal);
        assert_eq!(infer("real(3)").unwrap(), BaseType::Real);
        assert_eq!(infer("!true").unwrap(), BaseType::Bool);
        // ln/sqrt accept any real-valued argument (the result is an
        // unrefined real, so a negative argument is a runtime NaN, not a
        // support violation).
        assert_eq!(infer("ln(-1.0)").unwrap(), BaseType::Real);
        assert_eq!(infer("sqrt(-1.0)").unwrap(), BaseType::Real);
        assert!(infer("ln(true)").is_err());
        assert!(infer("!1.0").is_err());
    }

    #[test]
    fn conditional_expressions_join() {
        assert_eq!(
            infer("if true then 0.5 else 3.0").unwrap(),
            BaseType::PosReal
        );
        assert_eq!(infer("if true then 0.5 else -1.0").unwrap(), BaseType::Real);
        assert!(infer("if 1.0 then 0.5 else 0.2").is_err());
        assert!(infer("if true then 0.5 else false").is_err());
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(
            infer("fn (x : real) => x + 1.0").unwrap(),
            BaseType::arrow(BaseType::Real, BaseType::Real)
        );
        assert_eq!(
            infer("let f = fn (x : real) => x + 1.0 in f(0.5)").unwrap(),
            BaseType::Real
        );
        assert!(infer("let f = fn (x : bool) => x in f(1.0)").is_err());
        assert!(infer("let f = 1.0 in f(2.0)").is_err());
    }

    #[test]
    fn let_bindings_and_variables() {
        assert_eq!(
            infer("let x = 0.5 in x * x").unwrap(),
            BaseType::UnitInterval
        );
        assert!(infer("y + 1.0").is_err());
        assert_eq!(
            infer_with(
                "p * u",
                &[("p", BaseType::UnitInterval), ("u", BaseType::UnitInterval)]
            )
            .unwrap(),
            BaseType::UnitInterval
        );
    }

    #[test]
    fn distribution_types() {
        assert_eq!(
            infer("Unif").unwrap(),
            BaseType::dist(BaseType::UnitInterval)
        );
        assert_eq!(
            infer("Gamma(2.0, 1.0)").unwrap(),
            BaseType::dist(BaseType::PosReal)
        );
        assert_eq!(
            infer("Normal(-1.0, 1.0)").unwrap(),
            BaseType::dist(BaseType::Real)
        );
        assert_eq!(infer("Ber(0.3)").unwrap(), BaseType::dist(BaseType::Bool));
        assert_eq!(
            infer("Cat(1.0, 2.0, 3.0)").unwrap(),
            BaseType::dist(BaseType::FinNat(3))
        );
        assert_eq!(infer("Geo(0.5)").unwrap(), BaseType::dist(BaseType::Nat));
        assert_eq!(infer("Pois(4.0)").unwrap(), BaseType::dist(BaseType::Nat));
    }

    #[test]
    fn distribution_parameter_errors() {
        // Bernoulli requires a unit-interval parameter.
        assert!(infer("Ber(2.0)").is_err());
        // Normal scale must be positive-real; a general real is rejected.
        assert!(infer_with("Normal(0.0, s)", &[("s", BaseType::Real)]).is_err());
        assert!(infer_with("Normal(0.0, s)", &[("s", BaseType::PosReal)]).is_ok());
        // Gamma parameters must be positive.
        assert!(infer("Gamma(-2.0, 1.0)").is_err());
        // Poisson rate must be positive-real.
        assert!(infer_with("Pois(x)", &[("x", BaseType::Real)]).is_err());
    }

    #[test]
    fn paper_guide2_parameterised_distributions() {
        // Guide2(θ1..θ4) from Fig. 4 type-checks with preal parameters.
        let bindings = [
            ("t1", BaseType::PosReal),
            ("t2", BaseType::PosReal),
            ("t3", BaseType::PosReal),
            ("t4", BaseType::PosReal),
        ];
        assert_eq!(
            infer_with("Gamma(t1, t2)", &bindings).unwrap(),
            BaseType::dist(BaseType::PosReal)
        );
        assert_eq!(
            infer_with("Beta(t3, t4)", &bindings).unwrap(),
            BaseType::dist(BaseType::UnitInterval)
        );
        // Guide2'(θ1, θ2) with a Normal proposal for @x has carrier ℝ,
        // which will not match the model's ℝ+ protocol (checked at the
        // guide-type level, not here).
        assert_eq!(
            infer_with("Normal(t1, t2)", &bindings).unwrap(),
            BaseType::dist(BaseType::Real)
        );
    }
}
