//! Process-wide counters of scheduled inference work.
//!
//! The serving layer's deterministic result cache promises that a warm hit
//! is *exact* — the cached JSON is the byte-identical response a fresh run
//! would produce — so a cache hit must run **zero** joint executions.
//! These counters make that claim testable: every engine records how many
//! joint model–guide executions it schedules, and a test (or the `/metrics`
//! endpoint) can delta [`joint_executions`] around an operation to prove
//! nothing ran.
//!
//! The counters are *scheduling-level*: each engine adds its total once per
//! run (not once per particle), so the steady-state particle loop stays
//! allocation- and atomic-free and the PR 4 hot-path guarantees are
//! untouched.  Counts are monotone, relaxed, and process-wide; they are
//! diagnostics, not synchronisation.

use std::sync::atomic::{AtomicU64, Ordering};

static JOINT_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

static VI_FIT_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Records that an engine scheduled `n` joint model–guide executions
/// (particles, MH proposals, or VI mini-batch samples).
pub fn record_joint_executions(n: usize) {
    JOINT_EXECUTIONS.fetch_add(n as u64, Ordering::Relaxed);
}

/// Total joint executions scheduled by inference engines since process
/// start.  Delta this around an operation to prove it ran (or did not run)
/// inference.
pub fn joint_executions() -> u64 {
    JOINT_EXECUTIONS.load(Ordering::Relaxed)
}

/// Records that a VI optimiser scheduled `n` joint executions as part of a
/// *fit* (mini-batch sampling; the post-fit draw pass is not counted).
///
/// The artifact store promises that a warm-start query skips the fit
/// entirely; deltaing [`vi_fit_executions`] around a warm query proves it.
pub fn record_vi_fit_executions(n: usize) {
    VI_FIT_EXECUTIONS.fetch_add(n as u64, Ordering::Relaxed);
}

/// Total VI fit executions scheduled since process start.
pub fn vi_fit_executions() -> u64 {
    VI_FIT_EXECUTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = joint_executions();
        record_joint_executions(3);
        record_joint_executions(0);
        assert_eq!(joint_executions() - before, 3);
    }

    #[test]
    fn fit_counter_is_independent_of_the_joint_counter() {
        let joint_before = joint_executions();
        let fit_before = vi_fit_executions();
        record_vi_fit_executions(5);
        assert_eq!(vi_fit_executions() - fit_before, 5);
        assert_eq!(joint_executions() - joint_before, 0);
    }
}
