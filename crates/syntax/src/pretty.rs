//! Pretty-printer: renders AST back into surface syntax.
//!
//! The printer produces text that re-parses to the same AST (round-trip
//! property, checked in the test suite), and is used to report model LOC in
//! the Table 1 harness.

use crate::ast::{BaseType, Cmd, Dir, DistExpr, Expr, Proc, Program};
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, proc) in p.procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_proc(proc));
    }
    out
}

/// Renders a single procedure.
pub fn print_proc(p: &Proc) -> String {
    let mut out = String::new();
    let params = p
        .params
        .iter()
        .map(|(x, t)| format!("{x} : {t}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "proc {}({})", p.name, params);
    if p.ret_ty != BaseType::Unit {
        let _ = write!(out, " : {}", p.ret_ty);
    }
    if let Some(c) = &p.consumes {
        let _ = write!(out, " consume {c}");
    }
    if let Some(c) = &p.provides {
        let _ = write!(out, " provide {c}");
    }
    out.push_str(" {\n");
    print_cmd(&p.body, 1, &mut out);
    out.push_str("\n}\n");
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Renders a command at the given indentation level.
pub fn print_cmd(cmd: &Cmd, level: usize, out: &mut String) {
    match cmd {
        Cmd::Ret(e) => {
            indent(level, out);
            if *e == Expr::Triv {
                out.push_str("return ()");
            } else {
                let _ = write!(out, "return {}", print_expr(e));
            }
        }
        Cmd::Bind { var, first, rest } => {
            indent(level, out);
            if var.as_str() == "_" {
                let _ = writeln!(out, "{};", print_cmd_inline(first, level));
            } else {
                let _ = writeln!(out, "let {var} <- {};", print_cmd_inline(first, level));
            }
            print_cmd(rest, level, out);
        }
        Cmd::Call { proc, args } => {
            indent(level, out);
            let args = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            let _ = write!(out, "call {proc}({args})");
        }
        Cmd::Sample { dir, chan, dist } => {
            indent(level, out);
            let _ = write!(out, "sample {dir} {chan} ({})", print_expr(dist));
        }
        Cmd::Branch {
            dir,
            chan,
            pred,
            then_cmd,
            else_cmd,
        } => {
            indent(level, out);
            match (dir, pred) {
                (Dir::Send, Some(p)) => {
                    let _ = writeln!(out, "if send {chan} ({}) {{", print_expr(p));
                }
                _ => {
                    let _ = writeln!(out, "if recv {chan} {{");
                }
            }
            print_cmd(then_cmd, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push_str("} else {\n");
            print_cmd(else_cmd, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push('}');
        }
    }
}

fn print_cmd_inline(cmd: &Cmd, level: usize) -> String {
    let mut s = String::new();
    print_cmd(cmd, 0, &mut s);
    // Nested multi-line commands (branches / blocks) keep their indentation
    // relative to the binder line.
    if s.contains('\n') {
        let pad = "  ".repeat(level);
        s = s.replace('\n', &format!("\n{pad}"));
    }
    s.trim_start().to_string()
}

/// Renders an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Var(x) => x.to_string(),
        Expr::Triv => "()".to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Real(r) => {
            if r.fract() == 0.0 && r.abs() < 1e15 {
                format!("{r:.1}")
            } else {
                format!("{r}")
            }
        }
        Expr::Nat(n) => n.to_string(),
        Expr::If(c, a, b) => format!(
            "if {} then {} else {}",
            print_expr(c),
            print_expr(a),
            print_expr(b)
        ),
        Expr::BinOp(op, a, b) => format!("({} {} {})", print_expr(a), op.symbol(), print_expr(b)),
        Expr::UnOp(op, a) => match op {
            crate::ast::UnOp::Neg => format!("(-{})", print_expr(a)),
            crate::ast::UnOp::Not => format!("(!{})", print_expr(a)),
            other => format!("{}({})", other.name(), print_expr(a)),
        },
        Expr::Lam(x, t, body) => format!("fn ({x} : {t}) => {}", print_expr(body)),
        Expr::App(f, a) => format!("{}({})", print_expr(f), print_expr(a)),
        Expr::Let(x, e1, e2) => format!("let {x} = {} in {}", print_expr(e1), print_expr(e2)),
        Expr::Dist(d) => print_dist(d),
    }
}

fn print_dist(d: &DistExpr) -> String {
    match d {
        DistExpr::Uniform => "Unif".to_string(),
        DistExpr::Bernoulli(e) => format!("Ber({})", print_expr(e)),
        DistExpr::Geometric(e) => format!("Geo({})", print_expr(e)),
        DistExpr::Poisson(e) => format!("Pois({})", print_expr(e)),
        DistExpr::Beta(a, b) => format!("Beta({}, {})", print_expr(a), print_expr(b)),
        DistExpr::Gamma(a, b) => format!("Gamma({}, {})", print_expr(a), print_expr(b)),
        DistExpr::Normal(a, b) => format!("Normal({}, {})", print_expr(a), print_expr(b)),
        DistExpr::Categorical(es) => {
            let args = es.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("Cat({args})")
        }
    }
}

/// Counts the number of non-blank lines of the pretty-printed program; the
/// "LOC" metric used by Table 1.
pub fn loc(p: &Program) -> usize {
    print_program(p)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const FIG5: &str = r#"
        proc Model() : real consume latent provide obs {
          let v <- sample recv latent (Gamma(2.0, 1.0));
          if send latent (v < 2.0) {
            let _ <- sample send obs (Normal(-1.0, 1.0));
            return v
          } else {
            let m <- sample recv latent (Beta(3.0, 1.0));
            let _ <- sample send obs (Normal(m, 1.0));
            return v
          }
        }
        proc Guide1() provide latent {
          let v <- sample send latent (Gamma(1.0, 1.0));
          if recv latent {
            return ()
          } else {
            let _ <- sample send latent (Unif);
            return ()
          }
        }
    "#;

    #[test]
    fn round_trip_fig5() {
        let prog = parse_program(FIG5).unwrap();
        let printed = print_program(&prog);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn round_trip_recursive_program() {
        let src = r#"
            proc PcfgGen(k : ureal) : real consume latent {
              let u <- sample recv latent (Unif);
              if send latent (u < k) {
                let v <- sample recv latent (Normal(0.0, 1.0));
                return v
              } else {
                let lhs <- call PcfgGen(k);
                let rhs <- call PcfgGen(k);
                return lhs + rhs
              }
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn expr_printing() {
        assert_eq!(print_expr(&Expr::Triv), "()");
        assert_eq!(print_expr(&Expr::Real(2.0)), "2.0");
        assert_eq!(print_expr(&Expr::Real(0.25)), "0.25");
        assert_eq!(print_expr(&Expr::Nat(3)), "3");
        let e = crate::parser::parse_expr("exp(-(x))").unwrap();
        assert!(print_expr(&e).starts_with("exp("));
    }

    #[test]
    fn loc_counts_nonblank_lines() {
        let prog = parse_program(FIG5).unwrap();
        let n = loc(&prog);
        assert!((15..=30).contains(&n), "loc {n}");
    }

    #[test]
    fn categorical_and_unary_round_trip() {
        let src = r#"
            proc P(lam : preal) : real consume latent {
              let k <- sample recv latent (Cat(1.0, 2.0, 3.0));
              let x <- sample recv latent (Pois(exp(-(lam))));
              return real(k) + real(x)
            }
        "#;
        let prog = parse_program(src).unwrap();
        let printed = print_program(&prog);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(prog, reparsed);
    }
}
