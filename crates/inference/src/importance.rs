//! Importance sampling (§5.2, "IS").
//!
//! Each particle is produced by one joint model–guide execution: the guide
//! proposes the latent trace `σ_ℓ` with density `w_g`, the model scores it
//! (together with the conditioned observations) with density `w_m`, and the
//! particle's importance weight is `w_m / w_g`.  Theorem 5.2 (absolute
//! continuity, certified by the guide types) guarantees that the proposal
//! covers the whole posterior support, so the weighted empirical
//! distribution converges to the posterior.

use crate::engine::Engine;
use ppl_dist::rng::Pcg32;
use ppl_dist::special::log_sum_exp;
use ppl_dist::stats::{effective_sample_size, normalize_log_weights, Histogram};
use ppl_dist::Sample;
use ppl_runtime::{JointExecutor, JointResult, JointScratch, JointSpec, RuntimeError};
use ppl_semantics::trace::Trace;

/// Default lockstep block size for the particle loop: large enough to
/// amortise op dispatch and fill the batched density kernels, small enough
/// that the structure-of-arrays columns stay cache-resident.
pub const DEFAULT_BLOCK: usize = 64;

/// One weighted particle.
#[derive(Debug, Clone)]
pub struct Particle {
    /// The latent guidance trace proposed by the guide.
    pub latent: Trace,
    /// The latent sample values in order (convenience view).
    pub samples: Vec<Sample>,
    /// `log (w_m / w_g)`.
    pub log_weight: f64,
    /// The model's return value, as a real number when scalar.
    pub model_value: Option<f64>,
}

/// The result of an importance-sampling run.
#[derive(Debug, Clone)]
pub struct ImportanceResult {
    /// All particles, in generation order.
    pub particles: Vec<Particle>,
    /// Self-normalised weights (sum to one); `None` if every particle had
    /// zero weight.
    pub normalized_weights: Option<Vec<f64>>,
    /// Effective sample size of the normalised weights.
    pub ess: f64,
    /// The log of the average unnormalised weight — an estimate of the log
    /// model evidence `log p(σ_o)`.
    pub log_evidence: f64,
}

impl ImportanceResult {
    /// Weighted posterior expectation of a function of the latent samples.
    ///
    /// # Skip-and-renormalise contract
    ///
    /// Particles for which `f` returns `None` (e.g. asking for a sample
    /// index that is absent on that control-flow path) are *skipped*, and
    /// the result is the weighted mean over the remaining particles with
    /// their weights renormalised to sum to one — i.e. the posterior
    /// expectation of `f` **conditioned on the event that `f` is defined**.
    /// Concretely: `Σ wᵢ·f(pᵢ) / Σ wᵢ`, both sums over the particles where
    /// `f(pᵢ)` is `Some`.
    ///
    /// Returns `None` when no estimate exists at all:
    /// * every particle had zero weight (`normalized_weights` is `None`), or
    /// * `f` returned `None` for every particle, or only for particles
    ///   carrying all of the weight (the conditioning event has zero
    ///   posterior mass).
    pub fn posterior_expectation<F>(&self, f: F) -> Option<f64>
    where
        F: Fn(&Particle) -> Option<f64>,
    {
        let weights = self.normalized_weights.as_ref()?;
        crate::posterior::weighted_expectation(
            self.particles.iter().zip(weights).map(|(p, &w)| (f(p), w)),
        )
    }

    /// Posterior mean of the `index`-th latent sample.
    pub fn posterior_mean_of_sample(&self, index: usize) -> Option<f64> {
        self.posterior_expectation(|p| p.samples.get(index).map(|s| s.as_f64()))
    }

    /// Posterior probability of a predicate over particles.
    pub fn posterior_probability<F>(&self, pred: F) -> Option<f64>
    where
        F: Fn(&Particle) -> bool,
    {
        self.posterior_expectation(|p| Some(if pred(p) { 1.0 } else { 0.0 }))
    }

    /// A weighted histogram (density estimate) of a statistic of the
    /// particles over `[lo, hi)` — the series plotted in Fig. 2.
    pub fn weighted_histogram<F>(&self, lo: f64, hi: f64, bins: usize, f: F) -> Histogram
    where
        F: Fn(&Particle) -> Option<f64>,
    {
        let mut hist = Histogram::new(lo, hi, bins);
        if let Some(weights) = &self.normalized_weights {
            for (p, &w) in self.particles.iter().zip(weights) {
                if let Some(v) = f(p) {
                    hist.add(v, w);
                }
            }
        }
        hist
    }
}

/// The importance-sampling engine.
#[derive(Debug, Clone)]
pub struct ImportanceSampler {
    /// Number of particles to draw.
    pub num_particles: usize,
    /// Number of worker threads for the particle loop (1 = sequential).
    /// Thanks to per-particle RNG substreams the results are bit-identical
    /// for every thread count.
    pub num_threads: usize,
    /// Lockstep block size for the vectorised particle loop (1 = scalar
    /// stepping).  Results are bit-identical at every block size; the block
    /// only controls how many particles advance per instruction.
    pub block: usize,
}

impl ImportanceSampler {
    /// Creates a sequential sampler with the given particle count.
    pub fn new(num_particles: usize) -> Self {
        ImportanceSampler {
            num_particles,
            num_threads: 1,
            block: DEFAULT_BLOCK,
        }
    }

    /// Sets the worker-thread count for the particle loop.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// Sets the lockstep block size (clamped to at least one).
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// Runs importance sampling.
    ///
    /// Particles are drawn by the shared [`Engine`] driver: each particle
    /// `i` runs one joint execution on RNG substream `i`, sequentially or
    /// across `num_threads` scoped threads, with identical results either
    /// way.  Joint executions that end in a protocol violation abort the run
    /// (they indicate an incompatible model–guide pair that the type system
    /// would have rejected); zero-weight particles are kept.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]s from the joint executor.
    pub fn run(
        &self,
        executor: &JointExecutor,
        spec: &JointSpec,
        rng: &mut Pcg32,
    ) -> Result<ImportanceResult, RuntimeError> {
        crate::counters::record_joint_executions(self.num_particles);
        let engine = Engine::new(self.num_threads);
        let particles = engine.run_particle_blocks_with(
            self.num_particles,
            self.block.max(1),
            rng,
            || (JointScratch::new(), Vec::new()),
            |(scratch, joints): &mut (JointScratch, Vec<JointResult>),
             master,
             first,
             len,
             out|
             -> Result<(), RuntimeError> {
                joints.clear();
                // `run_block_with_scratch` polls the executor's cancel
                // token once per block (and per op inside the plan), so an
                // expired deadline aborts the sweep within one block-step;
                // the engine's lowest-index early-abort then stops the
                // remaining workers.
                executor.run_block_with_scratch(spec, master, first, len, scratch, joints)?;
                for joint in joints.drain(..) {
                    out.push(Particle {
                        samples: joint.latent_samples(),
                        log_weight: joint.log_importance_weight(),
                        model_value: joint.model_value.as_f64(),
                        latent: joint.latent,
                    });
                }
                Ok(())
            },
        )?;
        let log_weights: Vec<f64> = particles.iter().map(|p| p.log_weight).collect();
        let normalized_weights = normalize_log_weights(&log_weights);
        let ess = normalized_weights
            .as_ref()
            .map(|w| effective_sample_size(w))
            .unwrap_or(0.0);
        let log_evidence = log_sum_exp(&log_weights) - (self.num_particles as f64).ln();
        Ok(ImportanceResult {
            particles,
            normalized_weights,
            ess,
            log_evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl_dist::Distribution;
    use ppl_syntax::parse_program;

    /// Conjugate normal-normal model: x ~ N(0,1), obs ~ N(x, 1), observe 1.0.
    /// Posterior: N(0.5, 1/2).
    fn normal_normal() -> (ppl_syntax::Program, ppl_syntax::Program) {
        let model = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let x <- sample recv latent (Normal(0.0, 1.0));
              let _ <- sample send obs (Normal(x, 1.0));
              return x
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc Guide() provide latent {
              let x <- sample send latent (Normal(0.0, 1.5));
              return ()
            }
        "#,
        )
        .unwrap();
        (model, guide)
    }

    #[test]
    fn normal_normal_posterior_mean_and_evidence() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(42);
        let result = ImportanceSampler::new(40_000)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        let mean = result.posterior_mean_of_sample(0).unwrap();
        assert!((mean - 0.5).abs() < 0.03, "posterior mean {mean}");
        // Evidence p(y=1.0) = N(1.0; 0, sqrt(2)).
        let expected_log_evidence = Distribution::normal(0.0, 2.0f64.sqrt())
            .unwrap()
            .log_density_f64(1.0);
        assert!(
            (result.log_evidence - expected_log_evidence).abs() < 0.05,
            "log evidence {} vs {}",
            result.log_evidence,
            expected_log_evidence
        );
        assert!(result.ess > 10_000.0, "ess {}", result.ess);
    }

    #[test]
    fn fig1_posterior_shifts_towards_observation() {
        // The Fig. 1/Fig. 3 pair: conditioning on @z = 0.8 makes large @x
        // (else branch, mean m ∈ (0,1)) more likely than under the prior.
        let model = parse_program(
            r#"
            proc Model() : real consume latent provide obs {
              let v <- sample recv latent (Gamma(2.0, 1.0));
              if send latent (v < 2.0) {
                let _ <- sample send obs (Normal(-1.0, 1.0));
                return v
              } else {
                let m <- sample recv latent (Beta(3.0, 1.0));
                let _ <- sample send obs (Normal(m, 1.0));
                return v
              }
            }
        "#,
        )
        .unwrap();
        let guide = parse_program(
            r#"
            proc Guide1() provide latent {
              let v <- sample send latent (Gamma(1.0, 1.0));
              if recv latent {
                return ()
              } else {
                let _ <- sample send latent (Unif);
                return ()
              }
            }
        "#,
        )
        .unwrap();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(0.8)]);
        let spec = JointSpec::new("Model", "Guide1");
        let mut rng = Pcg32::seed_from_u64(7);
        let result = ImportanceSampler::new(30_000)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        let p_else_posterior = result
            .posterior_probability(|p| p.samples[0].as_f64() >= 2.0)
            .unwrap();
        // Prior probability of the else branch under Gamma(2,1): ~0.406.
        // Observing z = 0.8 (closer to m ∈ (0,1) than to -1) should raise it.
        assert!(
            p_else_posterior > 0.55,
            "posterior else-branch probability {p_else_posterior}"
        );
        let hist = result.weighted_histogram(0.0, 8.0, 32, |p| Some(p.samples[0].as_f64()));
        assert!(hist.total_weight() > 0.99);
    }

    #[test]
    fn posterior_expectation_skip_and_renormalise_contract() {
        // Hand-built result with known weights: w = [0.5, 0.3, 0.2].
        let particle = |v: f64| Particle {
            latent: Trace::new(),
            samples: vec![Sample::Real(v)],
            log_weight: 0.0,
            model_value: Some(v),
        };
        let result = ImportanceResult {
            particles: vec![particle(1.0), particle(2.0), particle(3.0)],
            normalized_weights: Some(vec![0.5, 0.3, 0.2]),
            ess: 3.0,
            log_evidence: 0.0,
        };
        // All defined: the plain weighted mean.
        let all = result.posterior_expectation(|p| p.model_value).unwrap();
        assert!((all - (0.5 + 0.6 + 0.6)).abs() < 1e-12);
        // Mixed: the middle particle is skipped, and the remaining weights
        // are renormalised — E[f | f defined] = (0.5·1 + 0.2·3) / 0.7.
        let mixed = result
            .posterior_expectation(|p| {
                let v = p.model_value.unwrap();
                (v != 2.0).then_some(v)
            })
            .unwrap();
        assert!((mixed - (0.5 + 0.6) / 0.7).abs() < 1e-12);
        // All `None`: no conditioning event to renormalise over.
        assert!(result.posterior_expectation(|_| None::<f64>).is_none());
        // `None` exactly on the particles carrying all the weight: same.
        let degenerate = ImportanceResult {
            particles: vec![particle(1.0), particle(2.0)],
            normalized_weights: Some(vec![1.0, 0.0]),
            ess: 1.0,
            log_evidence: 0.0,
        };
        assert!(degenerate
            .posterior_expectation(|p| {
                let v = p.model_value.unwrap();
                (v != 1.0).then_some(v)
            })
            .is_none());
        // All-zero-weight runs expose no normalised weights at all.
        let zero = ImportanceResult {
            particles: vec![particle(1.0)],
            normalized_weights: None,
            ess: 0.0,
            log_evidence: f64::NEG_INFINITY,
        };
        assert!(zero.posterior_expectation(|p| p.model_value).is_none());
    }

    #[test]
    fn parallel_importance_sampling_is_bit_identical() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let mut rng = Pcg32::seed_from_u64(2026);
            let r = ImportanceSampler::new(2_000)
                .with_threads(threads)
                .run(&exec, &spec, &mut rng)
                .unwrap();
            results.push(r);
        }
        let (seq, par) = (&results[0], &results[1]);
        assert_eq!(seq.log_evidence.to_bits(), par.log_evidence.to_bits());
        assert_eq!(seq.ess.to_bits(), par.ess.to_bits());
        for (a, b) in seq.particles.iter().zip(&par.particles) {
            assert_eq!(a.log_weight.to_bits(), b.log_weight.to_bits());
            assert_eq!(a.latent, b.latent);
        }
    }

    #[test]
    fn block_sizes_are_bit_identical() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(99);
        let reference = ImportanceSampler::new(1_000)
            .with_block(1)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        for block in [7usize, 64, 256, 4096] {
            for threads in [1usize, 4] {
                let mut rng = Pcg32::seed_from_u64(99);
                let r = ImportanceSampler::new(1_000)
                    .with_block(block)
                    .with_threads(threads)
                    .run(&exec, &spec, &mut rng)
                    .unwrap();
                assert_eq!(
                    reference.log_evidence.to_bits(),
                    r.log_evidence.to_bits(),
                    "block {block} threads {threads}"
                );
                for (a, b) in reference.particles.iter().zip(&r.particles) {
                    assert_eq!(a.log_weight.to_bits(), b.log_weight.to_bits());
                    assert_eq!(a.latent, b.latent);
                    assert_eq!(a.samples, b.samples);
                }
            }
        }
    }

    #[test]
    fn posterior_helpers_handle_missing_values() {
        let (model, guide) = normal_normal();
        let exec = JointExecutor::new(&model, &guide, vec![Sample::Real(1.0)]);
        let spec = JointSpec::new("Model", "Guide");
        let mut rng = Pcg32::seed_from_u64(1);
        let result = ImportanceSampler::new(100)
            .run(&exec, &spec, &mut rng)
            .unwrap();
        // Sample index 5 never exists.
        assert!(result.posterior_mean_of_sample(5).is_none());
        assert_eq!(result.particles.len(), 100);
        assert!(result.posterior_probability(|_| true).unwrap() > 0.999);
    }
}
