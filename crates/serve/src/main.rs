//! The `ppl-serve` binary: boot the registry, bind, and serve until
//! killed.
//!
//! ```text
//! ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N]
//!           [--block N] [--store-dir PATH] [--store-capacity N]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:8080`; use port 0 to bind an ephemeral
//! port (the bound address is printed, which is how the CI smoke step
//! finds it).  `--workers` sets the connection-handling thread count
//! (default 4) and `--cache` the response-cache capacity (default 256
//! responses; 0 disables caching).  `--user-models` caps the table of
//! models admitted through `POST /v1/models` (default 32; 0 disables
//! submissions — the server then serves builtins only).  `--block` sets
//! the default vectorised-execution block size (default 64); requests may
//! override it per-query, and it never changes results — block size is a
//! pure performance knob.  `--store-dir` makes the fitted-guide artifact
//! store persistent: artifacts created by `POST /v1/fit` are written there
//! (atomic write-then-rename), and the index is warm-started from the
//! directory at boot so a restarted server answers artifact queries with
//! zero refits.  Without it the store is in-memory only.
//! `--store-capacity` bounds the number of resident artifacts (default
//! 256); the least-recently-used artifact — and its file — is evicted
//! beyond that.

use ppl_serve::{App, Registry, Server};
use ppl_store::{Store, DEFAULT_STORE_CAPACITY};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut workers = 4usize;
    let mut cache = 256usize;
    let mut user_models = ppl_serve::registry::DEFAULT_USER_MODEL_CAPACITY;
    let mut block = ppl_inference::DEFAULT_BLOCK;
    let mut store_dir: Option<String> = None;
    let mut store_capacity = DEFAULT_STORE_CAPACITY;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr expects HOST:PORT"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => return usage("--workers expects a positive integer"),
            },
            "--cache" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cache = n,
                None => return usage("--cache expects a non-negative integer"),
            },
            "--user-models" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => user_models = n,
                None => return usage("--user-models expects a non-negative integer"),
            },
            "--block" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => block = n,
                _ => return usage("--block expects a positive integer"),
            },
            "--store-dir" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => return usage("--store-dir expects a directory path"),
            },
            "--store-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => store_capacity = n,
                _ => return usage("--store-capacity expects a positive integer"),
            },
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let registry = Registry::from_benchmarks().with_user_capacity(user_models);
    println!("ppl-serve: {} models compiled", registry.len());
    let store = match &store_dir {
        Some(dir) => match Store::open(std::path::Path::new(dir), store_capacity) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("error: cannot open artifact store at '{dir}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Store::in_memory(store_capacity),
    };
    if store_dir.is_some() {
        println!(
            "ppl-serve: {} artifacts loaded ({} skipped)",
            store.len(),
            store.skipped_at_boot()
        );
    }
    let app = App::with_store(registry, cache, block, std::sync::Arc::new(store));
    let server = match Server::bind(addr.as_str(), workers, app.handler()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ppl-serve listening on http://{}", server.local_addr());
    // The smoke step greps this line from a pipe; make sure it arrives.
    let _ = std::io::stdout().flush();

    // Serve until the process is killed; the server owns the threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3_600));
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: ppl-serve [--addr HOST:PORT] [--workers N] [--cache N] [--user-models N] \
                [--block N] [--store-dir PATH] [--store-capacity N]"
    );
    ExitCode::FAILURE
}
