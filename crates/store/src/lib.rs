//! `ppl-store`: a std-only, crash-safe, versioned artifact store for
//! fitted guide parameters.
//!
//! Guide types make amortized inference sound by construction: a guide
//! that type-checks against its model is absolutely continuous with the
//! posterior (the paper's compatibility theorem), so a *fitted* guide can
//! be checkpointed once and reused for every later query against the same
//! model — the expensive VI fit happens once, the cheap draw pass happens
//! per request.  This crate is the checkpoint layer of that story:
//!
//! * [`artifact`] — the content-addressed record (`a-<16 hex>`) holding a
//!   fitted parameter vector plus the provenance needed to validate and
//!   bit-exactly replay it (model id, observations, schema, fit config,
//!   seed, ELBO tail, post-fit RNG words);
//! * [`store`] — the [`Store`]: an in-memory index over atomic
//!   write-then-rename JSON files with a bounded LRU GC and a
//!   corruption-tolerant boot scan;
//! * [`sha`] — the dependency-free SHA-256 behind every content-hash id;
//! * [`json`] — the strict RFC 8259 codec shared with the serving layer
//!   (re-exported there), whose deterministic output is what makes
//!   artifact files byte-reproducible.
//!
//! The crate depends on nothing but `std`, so the persistence format can
//! be read and written by any layer of the stack without dependency
//! cycles.

pub mod artifact;
pub mod json;
pub mod sha;
pub mod store;

pub use artifact::{
    compute_id, Artifact, ArtifactError, FitConfig, FitParam, ObsLit, ARTIFACT_FORMAT_VERSION,
};
pub use json::{Json, JsonError};
pub use store::{Store, StoreError, DEFAULT_STORE_CAPACITY};
