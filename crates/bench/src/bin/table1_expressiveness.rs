//! Regenerates **Table 1** of the paper: per benchmark, whether it
//! type-checks in the coroutine-based PPL (`T?`), the model's lines of code
//! (`LOC`), and whether the trace-types baseline can express it (`TP?`).
//!
//! Run with `cargo run -p ppl-bench --bin table1_expressiveness --release`.

use ppl_bench::table1_rows;

fn main() {
    let rows = table1_rows();
    println!("Table 1: selected benchmark descriptions and expressiveness");
    println!(
        "{:<11} {:<38} {:>3} {:>5} {:>4}  type-inference time",
        "Program", "Description", "T?", "LOC", "TP?"
    );
    println!("{}", "-".repeat(90));
    for row in &rows {
        let mark = |b: bool| if b { "Y" } else { "N" };
        let loc = if row.ours {
            row.loc.to_string()
        } else {
            "N/A".to_string()
        };
        let time = row
            .inference_time
            .map(|t| format!("{:.2} ms", t.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<11} {:<38} {:>3} {:>5} {:>4}  {}",
            row.name,
            row.description,
            mark(row.ours),
            loc,
            mark(row.trace_types),
            time
        );
    }
    let ours = rows.iter().filter(|r| r.ours).count();
    let prior = rows.iter().filter(|r| r.trace_types).count();
    println!("{}", "-".repeat(90));
    println!(
        "expressible: {ours}/{} in this PPL, {prior}/{} under trace types",
        rows.len(),
        rows.len()
    );
}
