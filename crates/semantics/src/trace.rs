//! Guidance traces and messages.
//!
//! A guidance trace `σ` is a finite sequence of messages exchanged on a
//! channel: sample values (`valP`/`valC`), branch selections
//! (`dirP`/`dirC`), and the procedure-call marker `fold`.

use ppl_dist::Sample;
use std::fmt;

/// A single guidance message.
///
/// Messages are small scalar payloads, so the type is `Copy`: replay
/// cursors hand them out by value without touching the owning trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// `valP(v)` — a sample value sent by the channel's provider.
    ValP(Sample),
    /// `valC(v)` — a sample value sent by the channel's consumer.
    ValC(Sample),
    /// `dirP(v)` — a branch selection sent by the provider.
    DirP(bool),
    /// `dirC(v)` — a branch selection sent by the consumer.
    DirC(bool),
    /// `fold` — the procedure-call marker.
    Fold,
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::ValP(v) => write!(f, "valP({v})"),
            Message::ValC(v) => write!(f, "valC({v})"),
            Message::DirP(b) => write!(f, "dirP({b})"),
            Message::DirC(b) => write!(f, "dirC({b})"),
            Message::Fold => write!(f, "fold"),
        }
    }
}

/// A guidance trace: a finite sequence of [`Message`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    messages: Vec<Message>,
}

impl Trace {
    /// The empty trace `[]`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from messages.
    pub fn from_messages(messages: Vec<Message>) -> Self {
        Trace { messages }
    }

    /// Appends a message.
    pub fn push(&mut self, m: Message) {
        self.messages.push(m);
    }

    /// Removes every message, retaining the allocated buffer so the trace
    /// can be refilled without reallocating (the clear-and-refill half of
    /// the reuse API; see [`Trace::recycle`] for handing buffers back).
    pub fn clear(&mut self) {
        self.messages.clear();
    }

    /// The message capacity currently allocated (used by the reuse tests).
    pub fn capacity(&self) -> usize {
        self.messages.capacity()
    }

    /// Takes `donor`'s buffer for later reuse: after scoring a trace whose
    /// contents are no longer needed, hand it back here so the next
    /// recording fills the retained allocation instead of growing a fresh
    /// one.  `self`'s messages are discarded; the larger of the two buffers
    /// is kept.
    pub fn recycle(&mut self, donor: Trace) {
        let mut buf = donor.messages;
        buf.clear();
        if buf.capacity() > self.messages.capacity() {
            self.messages = buf;
        } else {
            self.messages.clear();
        }
    }

    /// Concatenation `σ₁ ++ σ₂`.
    pub fn concat(mut self, other: Trace) -> Trace {
        self.messages.extend(other.messages);
        self
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The messages as a slice.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Iterates over the sample values sent by the provider (`valP`), in
    /// order — the "latent variables" view of a latent-channel trace.
    pub fn provider_samples(&self) -> Vec<Sample> {
        self.provider_sample_iter().collect()
    }

    /// A borrowing iterator over the provider samples (`valP`), in order.
    pub fn provider_sample_iter(&self) -> impl Iterator<Item = Sample> + '_ {
        self.messages.iter().filter_map(|m| match m {
            Message::ValP(v) => Some(*v),
            _ => None,
        })
    }

    /// A borrowing iterator over *every* sample value (`valP` and `valC`),
    /// in message order.
    ///
    /// This is the value stream a replay must feed back: each sample
    /// rendezvous recorded exactly one `valP` or `valC` (depending on which
    /// side sent it), and re-execution visits the rendezvous in the same
    /// order.  Replay paths use this instead of collecting
    /// [`Trace::provider_samples`] so that re-scoring a trace allocates
    /// nothing.
    pub fn sample_value_iter(&self) -> impl Iterator<Item = Sample> + '_ {
        self.messages.iter().filter_map(|m| match m {
            Message::ValP(v) | Message::ValC(v) => Some(*v),
            _ => None,
        })
    }

    /// Returns a copy of the trace with the `index`-th provider sample
    /// replaced by `value` (used by single-site MCMC proposals).
    ///
    /// Returns `None` if there are fewer than `index + 1` provider samples.
    pub fn with_provider_sample(&self, index: usize, value: Sample) -> Option<Trace> {
        let mut seen = 0usize;
        let pos = self.messages.iter().position(|m| {
            if matches!(m, Message::ValP(_)) {
                let hit = seen == index;
                seen += 1;
                hit
            } else {
                false
            }
        })?;
        let mut out = self.clone();
        out.messages[pos] = Message::ValP(value);
        Some(out)
    }

    /// A cursor reading the trace front-to-back (a borrow, not a copy).
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            messages: &self.messages,
            pos: 0,
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, m) in self.messages.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Message> for Trace {
    fn from_iter<T: IntoIterator<Item = Message>>(iter: T) -> Self {
        Trace {
            messages: iter.into_iter().collect(),
        }
    }
}

impl Extend<Message> for Trace {
    fn extend<T: IntoIterator<Item = Message>>(&mut self, iter: T) {
        self.messages.extend(iter);
    }
}

/// A cursor over a borrowed trace, used by the evaluator to pop messages in
/// order.
///
/// The cursor is a `&[Message]` slice plus a position — creating one per
/// replay copies nothing, which matters for MCMC where every proposal
/// re-scores a full trace.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    messages: &'a [Message],
    pos: usize,
}

impl TraceCursor<'_> {
    /// An empty cursor (for absent channels).
    pub fn empty() -> Self {
        TraceCursor {
            messages: &[],
            pos: 0,
        }
    }

    /// Pops the next message, if any.
    pub fn pop(&mut self) -> Option<Message> {
        let m = self.messages.get(self.pos).copied();
        if m.is_some() {
            self.pos += 1;
        }
        m
    }

    /// Peeks at the next message.
    pub fn peek(&self) -> Option<&Message> {
        self.messages.get(self.pos)
    }

    /// Number of remaining messages.
    pub fn remaining(&self) -> usize {
        self.messages.len() - self.pos
    }

    /// True if all messages have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_concat() {
        let mut a = Trace::new();
        assert!(a.is_empty());
        a.push(Message::ValP(Sample::Real(1.0)));
        let b = Trace::from_messages(vec![Message::DirC(true), Message::Fold]);
        let c = a.clone().concat(b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.messages()[2], Message::Fold);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn provider_samples_view() {
        let t = Trace::from_messages(vec![
            Message::ValP(Sample::Real(1.0)),
            Message::DirC(false),
            Message::ValP(Sample::Real(0.5)),
            Message::ValC(Sample::Real(9.0)),
        ]);
        assert_eq!(
            t.provider_samples(),
            vec![Sample::Real(1.0), Sample::Real(0.5)]
        );
    }

    #[test]
    fn replace_provider_sample() {
        let t = Trace::from_messages(vec![
            Message::ValP(Sample::Real(1.0)),
            Message::DirC(false),
            Message::ValP(Sample::Real(0.5)),
        ]);
        let t2 = t.with_provider_sample(1, Sample::Real(0.9)).unwrap();
        assert_eq!(
            t2.provider_samples(),
            vec![Sample::Real(1.0), Sample::Real(0.9)]
        );
        assert!(t.with_provider_sample(2, Sample::Real(0.0)).is_none());
    }

    #[test]
    fn cursor_consumes_in_order() {
        let t = Trace::from_messages(vec![Message::Fold, Message::DirP(true)]);
        let mut c = t.cursor();
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.peek(), Some(&Message::Fold));
        assert_eq!(c.pop(), Some(Message::Fold));
        assert_eq!(c.pop(), Some(Message::DirP(true)));
        assert!(c.is_exhausted());
        assert_eq!(c.pop(), None);
        assert!(TraceCursor::empty().is_exhausted());
    }

    #[test]
    fn display_format() {
        let t = Trace::from_messages(vec![Message::ValP(Sample::Real(1.0)), Message::Fold]);
        assert_eq!(t.to_string(), "[valP(1); fold]");
        assert_eq!(Trace::new().to_string(), "[]");
    }

    #[test]
    fn from_iterator_and_extend() {
        let t: Trace = vec![Message::DirP(true)].into_iter().collect();
        assert_eq!(t.len(), 1);
        let mut t = t;
        t.extend(vec![Message::DirC(false)]);
        assert_eq!(t.len(), 2);
    }
}
